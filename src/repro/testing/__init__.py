"""Testing utilities: deterministic fault injection for resilience tests."""

from .faults import (
    CRASH_EXIT_CODE,
    FaultInjector,
    InjectedCrash,
    InjectedWorkerError,
    corrupt_file,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FaultInjector",
    "InjectedCrash",
    "InjectedWorkerError",
    "corrupt_file",
]
