"""Deterministic fault injection for the supervised experiment layer.

The resilience guarantees of :mod:`repro.experiments.resilient` -- retry
after a worker crash, timeout of a hung worker, re-run of a corrupted
checkpoint -- are only trustworthy if every recovery path is actually
exercised.  This module provides the harness that does so, determin-
istically:

* :class:`FaultInjector` is a picklable plan of *which chunk attempts
  fail and how* (hard crash, hang, Python exception).  The supervisor
  threads it through to every worker, which consults it at chunk entry.
  Faults are keyed by ``(phase, chunk_index)`` and armed for the first
  ``n`` attempts, so a campaign with ``max_retries >= n`` always recovers
  and the recovered result can be compared bit-for-bit against a
  fault-free run.
* :func:`corrupt_file` damages an on-disk checkpoint or result file in a
  controlled way (truncation, byte garbling, or a stale checksum) to
  exercise the validated-read paths.

Nothing here is specific to tests -- the resilience benchmark
(``bench_ext_resilience.py``) and the CI smoke job drive the same
injector against full campaigns.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Mapping

__all__ = [
    "CRASH_EXIT_CODE",
    "FaultInjector",
    "InjectedCrash",
    "InjectedWorkerError",
    "SERVICE_SOLVE_PHASE",
    "corrupt_file",
    "syndrome_signature",
]

#: Exit code of an injected hard worker crash (recognisable in logs).
CRASH_EXIT_CODE = 87

#: Supervised-phase name of the decode service's window-solve batches
#: (alongside the campaign runner's ``"sample"`` and ``"decode"``).
SERVICE_SOLVE_PHASE = "service-solve"


def syndrome_signature(active: list[int]) -> str:
    """Content signature of one window's active defect set.

    Poison-syndrome plans key on this signature rather than on batch or
    chunk indices, so a poisoned syndrome fires no matter which stream
    it arrives on or how the service happened to cross-batch it.
    """
    return ",".join(str(int(i)) for i in active)


class InjectedCrash(RuntimeError):
    """Stand-in for a hard worker crash when killing the process is unsafe.

    Raised instead of ``os._exit`` when an armed crash fault fires in the
    supervisor's own process (the in-process serial path), where taking
    the whole interpreter down would defeat the supervision under test.
    """


class InjectedWorkerError(RuntimeError):
    """An injected in-worker Python exception (the soft-failure fault)."""


#: A fault plan maps (phase, chunk_index) -> number of attempts to fault.
FaultPlan = Mapping[tuple[str, int], int]


class FaultInjector:
    """Deterministic per-attempt fault plan for supervised workers.

    Each plan maps ``(phase, chunk_index)`` -- phase is ``"sample"`` or
    ``"decode"`` -- to the number of initial attempts that fault; attempt
    ``n`` (0-based) faults while ``n < count``, so a chunk armed with
    ``count=2`` crashes twice and succeeds on its third attempt.

    Args:
        crashes: Plan of hard crashes (``os._exit`` in a worker process,
            :class:`InjectedCrash` in-process).
        hangs: Plan of hangs (the worker sleeps ``hang_seconds``; the
            supervisor's chunk timeout must reclaim it).  In-process, a
            hang degenerates to :class:`InjectedCrash` -- blocking the
            supervisor itself would deadlock the run under test.
        errors: Plan of soft failures (:class:`InjectedWorkerError`).
        poison: Syndrome signatures (see :func:`syndrome_signature`)
            that hard-crash any worker whose batch carries them -- on
            *every* attempt, modelling a reproducibly decoder-killing
            input.  Inert in the supervisor's own process, so the serial
            fallback isolates the poison instead of taking the service
            down with it.
        hang_seconds: Sleep duration of an injected hang; pick it well
            above the supervisor's chunk timeout.
    """

    def __init__(
        self,
        *,
        crashes: FaultPlan | None = None,
        hangs: FaultPlan | None = None,
        errors: FaultPlan | None = None,
        poison: "set[str] | frozenset[str] | list[str] | None" = None,
        hang_seconds: float = 30.0,
    ) -> None:
        self.crashes = dict(crashes or {})
        self.hangs = dict(hangs or {})
        self.errors = dict(errors or {})
        self.poison = frozenset(poison or ())
        self.hang_seconds = hang_seconds

    def maybe_fault(
        self, phase: str, chunk: int, attempt: int, *, in_worker: bool
    ) -> None:
        """Fire the armed fault for this chunk attempt, if any.

        Args:
            phase: Supervised phase name (``"sample"`` or ``"decode"``).
            chunk: Chunk index within the phase.
            attempt: 0-based attempt number for this chunk.
            in_worker: True inside a disposable worker process (hard
                crashes really ``os._exit``); False in the supervisor's
                own process (hard faults raise instead).
        """
        key = (phase, chunk)
        if attempt < self.crashes.get(key, 0):
            if in_worker:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedCrash(
                f"injected crash: {phase} chunk {chunk} attempt {attempt}"
            )
        if attempt < self.hangs.get(key, 0):
            if in_worker:
                time.sleep(self.hang_seconds)
                # A real hang never returns; exiting non-zero afterwards
                # keeps the fault visible even without a chunk timeout.
                os._exit(CRASH_EXIT_CODE)
            raise InjectedCrash(
                f"injected hang (in-process): {phase} chunk {chunk} "
                f"attempt {attempt}"
            )
        if attempt < self.errors.get(key, 0):
            raise InjectedWorkerError(
                f"injected error: {phase} chunk {chunk} attempt {attempt}"
            )

    def maybe_poison(
        self, actives: "list[list[int]]", *, in_worker: bool
    ) -> None:
        """Hard-crash the worker when a poisoned syndrome is in the batch.

        Unlike :meth:`maybe_fault`, poison is attempt-independent: a
        retried or replayed batch carrying the same syndrome crashes the
        respawned worker again, which is what forces the supervisor's
        serial fallback to isolate it.  In-process (``in_worker=False``)
        the check is a no-op -- the serial path *is* the isolation.
        """
        if not self.poison or not in_worker:
            return
        for active in actives:
            if syndrome_signature(active) in self.poison:
                os._exit(CRASH_EXIT_CODE)


def corrupt_file(
    path: str | Path, mode: str = "truncate", *, seed: int = 0
) -> None:
    """Damage a file on disk to exercise validated-read recovery paths.

    Args:
        path: File to damage in place (deliberately *not* atomic).
        mode: ``"truncate"`` keeps only the first half of the bytes;
            ``"garble"`` XOR-flips a deterministic selection of bytes;
            ``"stale-checksum"`` rewrites a checked JSON record's payload
            without updating its checksum (valid JSON, wrong content).
        seed: Determinises which bytes ``"garble"`` flips.

    Raises:
        ValueError: On an unknown mode or a ``"stale-checksum"`` target
            that is not a checked JSON record.
    """
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
        return
    if mode == "garble":
        mutated = bytearray(data)
        if not mutated:
            raise ValueError(f"cannot garble empty file {path}")
        step = max(1, len(mutated) // 8)
        for offset in range((seed % step), len(mutated), step):
            mutated[offset] ^= 0xA5
        path.write_bytes(bytes(mutated))
        return
    if mode == "stale-checksum":
        record = json.loads(data.decode("utf-8"))
        if not isinstance(record, dict) or "payload" not in record:
            raise ValueError(f"{path} is not a checked JSON record")
        record["payload"] = {"tampered": True, "seed": seed}
        path.write_text(json.dumps(record), encoding="utf-8")
        return
    raise ValueError(
        f"unknown corruption mode {mode!r}; "
        "pick from 'truncate', 'garble', 'stale-checksum'"
    )
