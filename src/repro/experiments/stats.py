"""Statistical helpers for Monte-Carlo logical-error-rate estimation."""

from __future__ import annotations

import math

__all__ = ["wilson_interval", "poisson_pmf"]


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Preferred over the normal approximation because logical error rates are
    tiny: the Wilson interval stays inside [0, 1] and behaves sensibly at
    zero observed events.

    Args:
        successes: Number of observed events (e.g. logical errors).
        trials: Number of Monte-Carlo trials.
        z: Normal quantile (1.96 for a 95% interval).

    Returns:
        ``(low, high)`` bounds of the interval.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be in [0, trials]")
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    spread = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
        / denom
    )
    return max(0.0, center - spread), min(1.0, center + spread)


def poisson_pmf(k: int, lam: float) -> float:
    """Poisson probability mass function ``P(K = k)`` for rate ``lam``.

    Used by the Appendix-A stratified estimator, where the number of fault
    mechanisms firing per shot is approximately Poisson with mean equal to
    the sum of mechanism probabilities.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if lam < 0:
        raise ValueError("lam must be non-negative")
    if lam == 0:
        return 1.0 if k == 0 else 0.0
    return math.exp(k * math.log(lam) - lam - math.lgamma(k + 1))
