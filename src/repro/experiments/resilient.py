"""Fault-tolerant supervised execution of Monte-Carlo campaigns.

The paper's accuracy claims rest on very long Monte-Carlo campaigns --
up to 10^8+ shots per (d, p) point -- and PRs 1-3 made multi-hour sweeps
the norm.  :func:`repro.experiments.parallel.run_memory_experiment_parallel`
distributes such a campaign over worker processes but dies with it: one
crashed worker, one OOM kill, or one corrupted result file throws away
everything.  This module wraps the same two-phase pipeline (sampling
census, deduplicated decode) in a supervision layer that survives partial
failure:

* **Addressable chunks.**  Work units are contiguous ranges of the
  block-seeded sampling blocks (``seed + k`` for block ``k``, the PR-2
  RNG contract), so a retried or resumed chunk reproduces a bit-identical
  census no matter when, where, or how often it runs.
* **Checkpoint/resume.**  Completed sampling chunks persist to a
  checkpoint directory via atomic write-rename with content checksums and
  a campaign manifest; ``resume=True`` verifies and skips completed
  chunks, and a corrupted or stale checkpoint is discarded (and counted)
  rather than trusted.
* **Supervised workers.**  Each chunk attempt runs in a disposable
  process under a supervisor that detects crashes (exit code without a
  result), reclaims hangs (per-chunk timeout), and retries with bounded
  exponential backoff.  A chunk that exhausts its retries -- or a
  campaign whose parallel failures keep repeating -- degrades to
  in-process serial execution instead of aborting.
* **Verified results.**  Every recovery path is exercised by the
  deterministic fault-injection harness (:mod:`repro.testing.faults`):
  under injected crashes, hangs and checkpoint corruption a campaign
  completes with results bit-identical to a fault-free run.

Decode-side failures are supervised the same way; in-decoder anomalies
additionally degrade to the dense reference path inside
:class:`~repro.decoders.mwpm.MWPMDecoder` (see
:class:`~repro.decoders.base.DecoderFallbackWarning`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..circuits.memory import MemoryExperiment
from ..decoders.base import DecodeResult, Decoder
from ..pipeline.fingerprint import experiment_fingerprint
from ..pipeline.handle import DecoderHandle
from ..service.supervisor import (
    SERIAL_DEGRADATION_THRESHOLD,
    RecoveryStats,
    RetryPolicy,
    supervised_map,
)
from .io import CorruptResultError, read_json_record, write_json_record
from .memory import MemoryRunResult, tally_decode_results
from .parallel import (
    DEFAULT_BLOCK_SHOTS,
    SyndromeCensus,
    _decode_chunk,
    _partition,
    _sample_census_chunk,
    merge_censuses,
)

__all__ = [
    "CheckpointStore",
    "RecoveryStats",
    "ResilientRunResult",
    "RetryPolicy",
    "SERIAL_DEGRADATION_THRESHOLD",
    "experiment_fingerprint",
    "make_resilient_runner",
    "run_memory_experiment_resilient",
]

#: Record-type tags of the checkpoint files.
MANIFEST_KIND = "campaign-manifest"
CHUNK_KIND = "census-chunk"


# The fingerprint moved to the pipeline layer (it now also addresses the
# content-addressed artifact store), and the supervision loop plus
# RecoveryStats/RetryPolicy moved to :mod:`repro.service.supervisor`
# (the streaming decode service shares them); all are re-exported here
# for compatibility.


@dataclass
class ResilientRunResult:
    """Outcome of a supervised campaign.

    Attributes:
        result: The merged memory-experiment result; bit-identical to the
            unsupervised runner's for the same ``(shots, seed,
            block_shots)`` whenever no chunk was dropped.
        recovery: What the supervisor did to get there.
    """

    result: MemoryRunResult
    recovery: RecoveryStats


# ----------------------------------------------------------------------
# Census (de)serialisation
# ----------------------------------------------------------------------


def _census_to_payload(census: SyndromeCensus, num_detectors: int) -> dict:
    """Encode a census as a JSON-ready payload (bit-packed hex rows)."""
    if len(census.counts):
        packed = np.packbits(
            census.syndromes.astype(np.uint8, copy=False), axis=1
        )
        rows = [bytes(row).hex() for row in packed]
    else:
        rows = []
    return {
        "num_detectors": int(num_detectors),
        "rows": rows,
        "counts": [int(c) for c in census.counts],
        "flips": [int(f) for f in census.flips],
    }


def _census_from_payload(payload: dict, path: Path) -> SyndromeCensus:
    """Decode a checkpointed census payload, validating its shape."""
    try:
        num_detectors = int(payload["num_detectors"])
        rows = payload["rows"]
        counts = np.asarray(payload["counts"], dtype=np.int64)
        flips = np.asarray(payload["flips"], dtype=np.int64)
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptResultError(
            f"{path}: census payload is missing or malformed ({exc})"
        ) from exc
    if not isinstance(rows, list) or any(
        not isinstance(row, str) for row in rows
    ):
        raise CorruptResultError(
            f"{path}: census rows must be a list of hex strings"
        )
    if counts.ndim != 1 or flips.ndim != 1:
        raise CorruptResultError(
            f"{path}: census counts/flips must be flat arrays "
            f"(got ndim {counts.ndim} and {flips.ndim})"
        )
    if len(rows) != len(counts) or len(rows) != len(flips):
        raise CorruptResultError(
            f"{path}: census arrays disagree in length "
            f"({len(rows)} rows, {len(counts)} counts, {len(flips)} flips)"
        )
    row_bytes = (num_detectors + 7) // 8
    if len(rows) == 0:
        syndromes = np.zeros((0, num_detectors), dtype=bool)
    else:
        try:
            raw = bytearray()
            for row in rows:
                decoded = bytes.fromhex(row)
                if len(decoded) != row_bytes:
                    raise ValueError(
                        f"packed row holds {len(decoded)} bytes, "
                        f"expected {row_bytes}"
                    )
                raw += decoded
        except ValueError as exc:
            raise CorruptResultError(
                f"{path}: packed census row is garbled ({exc})"
            ) from exc
        packed = np.frombuffer(bytes(raw), dtype=np.uint8).reshape(
            len(rows), row_bytes
        )
        syndromes = np.unpackbits(packed, axis=1)[:, :num_detectors].astype(
            bool
        )
    if (counts < 0).any() or (flips < 0).any() or (flips > counts).any():
        raise CorruptResultError(
            f"{path}: census counts are inconsistent (negative or "
            "flips > counts)"
        )
    return SyndromeCensus(syndromes=syndromes, counts=counts, flips=flips)


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------


class CheckpointStore:
    """On-disk campaign checkpoints: one manifest plus one file per chunk.

    All writes are atomic (temp file + rename) and checksummed via
    :func:`repro.experiments.io.write_json_record`, so a crash mid-write
    never leaves a half-written checkpoint that a resume could trust.

    Args:
        directory: Checkpoint directory (created on demand).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    @property
    def manifest_path(self) -> Path:
        """Path of the campaign manifest."""
        return self.directory / "manifest.json"

    def chunk_path(self, index: int) -> Path:
        """Path of chunk ``index``'s checkpoint file."""
        return self.directory / f"chunk-{index:05d}.json"

    def prepare(self, params: dict, *, resume: bool) -> None:
        """Create or validate the campaign manifest.

        Args:
            params: Campaign identity -- everything the census depends on
                (shots, seed, block shots, chunk count, detector count).
            resume: Whether an existing manifest may be continued.

        Raises:
            ValueError: When resuming against a manifest whose parameters
                do not match (the checkpoints belong to a different
                campaign).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if resume and self.manifest_path.exists():
            try:
                existing = read_json_record(
                    self.manifest_path, kind=MANIFEST_KIND
                )
            except CorruptResultError:
                # A garbled manifest invalidates every checkpoint.
                for path in self.directory.glob("chunk-*.json"):
                    path.unlink()
                write_json_record(
                    self.manifest_path, params, kind=MANIFEST_KIND
                )
                return
            if existing != params:
                mismatched = sorted(
                    key
                    for key in set(existing) | set(params)
                    if existing.get(key) != params.get(key)
                )
                raise ValueError(
                    "checkpoint directory belongs to a different campaign: "
                    f"{self.directory} disagrees on {mismatched}; pass a "
                    "fresh --checkpoint-dir or rerun with the original "
                    "parameters"
                )
            return
        write_json_record(self.manifest_path, params, kind=MANIFEST_KIND)

    def load_chunk(
        self,
        index: int,
        expected_blocks: list[tuple[int, int]],
        *,
        fingerprint: str | None = None,
    ) -> SyndromeCensus:
        """Load and verify chunk ``index``'s checkpointed census.

        Args:
            index: Chunk index.
            expected_blocks: The (seed, shots) sampling blocks the chunk
                must cover under the current campaign parameters.
            fingerprint: When given, the :func:`experiment_fingerprint`
                the checkpoint must have been sampled under.

        Returns:
            The verified census.

        Raises:
            FileNotFoundError: When the chunk was never checkpointed.
            CorruptResultError: When the file fails checksum or shape
                validation, records different sampling blocks, or was
                sampled under a different experiment fingerprint.
        """
        path = self.chunk_path(index)
        payload = read_json_record(path, kind=CHUNK_KIND)
        if not isinstance(payload, dict):
            raise CorruptResultError(f"{path}: chunk payload is not a dict")
        recorded = [tuple(block) for block in payload.get("blocks", [])]
        if recorded != [tuple(block) for block in expected_blocks]:
            raise CorruptResultError(
                f"{path}: checkpoint covers different sampling blocks than "
                "the current campaign"
            )
        if fingerprint is not None and payload.get("experiment") != fingerprint:
            raise CorruptResultError(
                f"{path}: checkpoint was sampled under a different "
                "experiment (circuit/noise fingerprint mismatch)"
            )
        census = _census_from_payload(payload.get("census", {}), path)
        expected_shots = sum(shots for _seed, shots in expected_blocks)
        if census.shots != expected_shots:
            raise CorruptResultError(
                f"{path}: checkpoint summarises {census.shots} shots, "
                f"expected {expected_shots}"
            )
        return census

    def save_chunk(
        self,
        index: int,
        blocks: list[tuple[int, int]],
        census: SyndromeCensus,
        num_detectors: int,
        *,
        fingerprint: str | None = None,
    ) -> None:
        """Atomically checkpoint a completed chunk census."""
        payload = {
            "chunk": int(index),
            "blocks": [[int(s), int(n)] for s, n in blocks],
            "census": _census_to_payload(census, num_detectors),
        }
        if fingerprint is not None:
            payload["experiment"] = fingerprint
        write_json_record(self.chunk_path(index), payload, kind=CHUNK_KIND)


def _decode_chunk_tracked(payload) -> tuple[list[DecodeResult], int]:
    """Worker entry for the decode phase: results plus fallback delta.

    Decoder-internal degradations accumulate on ``fallback_events`` of
    the worker's pickled decoder copy, which dies with the process; each
    chunk therefore reports its own before/after delta so the supervisor
    can aggregate degradations across workers (and across chunks of the
    shared in-process decoder when ``workers=1``).
    """
    decoder, syndromes = payload
    if isinstance(decoder, DecoderHandle):
        # Materialise once (memoised per process) so the fallback counter
        # read below observes the same object that decodes.
        decoder = decoder.resolve()
        payload = (decoder, syndromes)
    before = int(getattr(decoder, "fallback_events", 0) or 0)
    results = _decode_chunk(payload)
    after = int(getattr(decoder, "fallback_events", 0) or 0)
    return results, after - before


# ----------------------------------------------------------------------
# Worker supervision (extracted to repro.service.supervisor)
# ----------------------------------------------------------------------


def _supervised_map(
    worker_fn,
    payloads,
    *,
    phase,
    workers,
    chunk_timeout,
    max_retries,
    retry_backoff,
    injector,
    stats,
    allow_drop,
    on_success=None,
):
    """Compatibility shim over :func:`repro.service.supervisor.supervised_map`.

    The campaign runner's historical knobs (``max_retries``,
    ``chunk_timeout``, ``retry_backoff``) map one-to-one onto a
    :class:`~repro.service.supervisor.RetryPolicy`; behavior is pinned by
    the existing resilience tests.
    """
    policy = RetryPolicy(
        max_retries=max_retries,
        backoff=retry_backoff,
        timeout=chunk_timeout,
    )
    return supervised_map(
        worker_fn,
        payloads,
        phase=phase,
        workers=workers,
        policy=policy,
        injector=injector,
        stats=stats,
        allow_drop=allow_drop,
        on_success=on_success,
    )


# ----------------------------------------------------------------------
# The supervised campaign runner
# ----------------------------------------------------------------------


def run_memory_experiment_resilient(
    experiment: MemoryExperiment,
    decoder: Decoder | DecoderHandle,
    shots: int,
    *,
    seed: int = 0,
    workers: int = 2,
    chunks_per_worker: int = 1,
    block_shots: int = DEFAULT_BLOCK_SHOTS,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    max_retries: int = 3,
    chunk_timeout: float | None = None,
    retry_backoff: float = 0.05,
    policy: RetryPolicy | None = None,
    fault_injector=None,
    allow_partial: bool = False,
) -> ResilientRunResult:
    """Run a memory experiment under supervision with checkpoint/resume.

    The sampling and decoding pipeline is the parallel runner's -- the
    same block-seeded blocks, chunk partition, census merge and
    deduplicated decode -- so for a given ``(shots, seed, block_shots)``
    the result is bit-identical to
    :func:`~repro.experiments.parallel.run_memory_experiment_parallel`
    (and independent of the worker/chunk split), no matter how many
    crashes, hangs, retries, resumes or corrupted checkpoints happened on
    the way.

    Args:
        experiment: The memory-experiment bundle (pickled to workers).
        decoder: The decoder under test (pickled to workers), or a
            :class:`~repro.pipeline.handle.DecoderHandle` recipe that each
            worker materialises itself -- warm-starting from the handle's
            artifact store, with bit-identical results (retried chunks
            included).
        shots: Total Monte-Carlo trials across all blocks.
        seed: Base seed; sampling block ``k`` runs with ``seed + k``.
        workers: Worker processes (1 supervises in-process: retries still
            apply, crash/hang isolation does not).
        chunks_per_worker: Chunks per worker (more chunks mean finer
            checkpoints and cheaper retries).
        block_shots: Shots per sampling block (fixes the sample multiset
            independently of the worker/chunk split).
        checkpoint_dir: Directory for the campaign manifest and per-chunk
            checkpoints; None disables checkpointing.
        resume: Skip chunks already checkpointed by a previous run with
            identical campaign parameters (requires ``checkpoint_dir``).
        max_retries: Supervised retries per chunk before degrading to the
            in-process serial fallback.
        chunk_timeout: Seconds before a running chunk attempt is declared
            hung and its worker reclaimed (None disables).
        retry_backoff: Base of the exponential backoff between retries of
            the same chunk, in seconds.
        policy: A :class:`~repro.service.supervisor.RetryPolicy` bundling
            the three knobs above (the same object the streaming decode
            service is configured with); when given it takes precedence
            over ``max_retries``/``chunk_timeout``/``retry_backoff``.
        fault_injector: Optional deterministic
            :class:`~repro.testing.faults.FaultInjector` (used by tests,
            the resilience bench and the CI smoke job).
        allow_partial: Tolerate chunks that fail even the serial fallback
            by dropping them (surfaced via ``dropped_chunks``) instead of
            raising.

    Returns:
        The :class:`ResilientRunResult` bundling the merged
        :class:`~repro.experiments.memory.MemoryRunResult` with the
        supervisor's :class:`RecoveryStats`.

    Raises:
        ValueError: On invalid arguments, or on resuming against a
            checkpoint directory of a different campaign.
        RuntimeError: When a chunk fails terminally and ``allow_partial``
            is False.
    """
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if block_shots < 1:
        raise ValueError("block_shots must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    if policy is None:
        policy = RetryPolicy(
            max_retries=max_retries,
            backoff=retry_backoff,
            timeout=chunk_timeout,
        )
    max_retries = policy.max_retries
    retry_backoff = policy.backoff
    chunk_timeout = policy.timeout
    stats = RecoveryStats()
    if shots == 0:
        return ResilientRunResult(
            result=MemoryRunResult(decoder_name=decoder.name, shots=0, errors=0),
            recovery=stats,
        )

    blocks = []
    remaining = shots
    k = 0
    while remaining > 0:
        size = min(block_shots, remaining)
        blocks.append((seed + k, size))
        remaining -= size
        k += 1
    num_chunks = max(1, workers * chunks_per_worker)
    chunk_blocks = [
        blocks[start:stop]
        for start, stop in _partition(len(blocks), num_chunks)
        if stop > start
    ]
    stats.chunks_total = len(chunk_blocks)
    num_detectors = experiment.num_detectors

    store: CheckpointStore | None = None
    censuses: list[SyndromeCensus | None] = [None] * len(chunk_blocks)
    fingerprint = experiment_fingerprint(experiment)
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        noise = experiment.noise
        params = {
            # Sampling-schedule identity.
            "shots": int(shots),
            "seed": int(seed),
            "block_shots": int(block_shots),
            "num_chunks": len(chunk_blocks),
            "num_detectors": int(num_detectors),
            # Experiment identity: the census also depends on what was
            # sampled, not just how the shots were scheduled.  A resume at
            # a different p/basis/rounds/noise model must be rejected, not
            # silently reuse censuses sampled under the wrong circuit.
            "distance": int(experiment.code.distance),
            "basis": experiment.basis,
            "rounds": int(experiment.rounds),
            "noise": {
                "data_depolarization": noise.data_depolarization,
                "gate2_depolarization": noise.gate2_depolarization,
                "gate1_depolarization": noise.gate1_depolarization,
                "measurement_flip": noise.measurement_flip,
                "reset_flip": noise.reset_flip,
            },
            "experiment": fingerprint,
        }
        store.prepare(params, resume=resume)
        if resume:
            for index, chunk in enumerate(chunk_blocks):
                try:
                    censuses[index] = store.load_chunk(
                        index, chunk, fingerprint=fingerprint
                    )
                except FileNotFoundError:
                    continue
                except CorruptResultError:
                    stats.corrupted_checkpoints += 1
                    store.chunk_path(index).unlink(missing_ok=True)
                    continue
            stats.chunks_resumed = sum(
                1 for census in censuses if census is not None
            )

    def checkpoint(index: int, census: SyndromeCensus) -> None:
        if store is not None:
            store.save_chunk(
                index,
                chunk_blocks[index],
                census,
                num_detectors,
                fingerprint=fingerprint,
            )

    sample_payloads = [
        (index, (experiment, chunk))
        for index, chunk in enumerate(chunk_blocks)
        if censuses[index] is None
    ]
    if sample_payloads:
        sampled = _supervised_map(
            _sample_census_chunk,
            sample_payloads,
            phase="sample",
            workers=workers,
            chunk_timeout=chunk_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            injector=fault_injector,
            stats=stats,
            allow_drop=allow_partial,
            on_success=checkpoint,
        )
        for index, census in sampled.items():
            censuses[index] = census
    census = merge_censuses(censuses)

    unique = census.syndromes
    decode_payloads = [
        (index, (decoder, unique[start:stop]))
        for index, (start, stop) in enumerate(_partition(len(unique), num_chunks))
        if stop > start
    ]
    decoded = _supervised_map(
        _decode_chunk_tracked,
        decode_payloads,
        phase="decode",
        workers=workers,
        chunk_timeout=chunk_timeout,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        injector=fault_injector,
        stats=stats,
        allow_drop=False,
    )
    results: list[DecodeResult] = [
        r
        for index in sorted(decoded)
        for r in decoded[index][0]
    ]

    effective_shots = census.shots
    tally = tally_decode_results(unique, census.counts, census.flips, results)
    stats.dropped_chunks = max(stats.dropped_chunks, census.dropped)
    stats.decoder_fallbacks = sum(
        delta for _chunk_results, delta in decoded.values()
    )
    result = MemoryRunResult(
        decoder_name=decoder.name,
        shots=effective_shots,
        errors=tally.errors,
        declined=tally.declined,
        timed_out=tally.timed_out,
        mean_latency_ns=(
            tally.latency_sum / effective_shots if effective_shots else 0.0
        ),
        max_latency_ns=tally.latency_max,
        mean_latency_nontrivial_ns=(
            tally.nontrivial_latency_sum / tally.nontrivial_shots
            if tally.nontrivial_shots
            else 0.0
        ),
        nontrivial_shots=tally.nontrivial_shots,
        unique_syndromes=len(unique),
        dropped_chunks=census.dropped,
    )
    return ResilientRunResult(result=result, recovery=stats)


def make_resilient_runner(
    checkpoint_root: str | Path | None = None,
    *,
    workers: int = 2,
    chunks_per_worker: int = 1,
    block_shots: int = DEFAULT_BLOCK_SHOTS,
    resume: bool = False,
    max_retries: int = 3,
    chunk_timeout: float | None = None,
    retry_backoff: float = 0.05,
    fault_injector=None,
    allow_partial: bool = False,
    recovery_log: list[RecoveryStats] | None = None,
) -> Callable[..., MemoryRunResult]:
    """Adapt the supervised runner to the sweep drivers' ``runner`` seam.

    The returned callable has :func:`run_memory_experiment`'s calling
    convention (``runner(experiment, decoder, shots, seed=...)``), so it
    drops into :func:`~repro.experiments.sweep.ler_vs_physical_error` and
    :func:`~repro.experiments.sweep.ler_vs_distance` unchanged.  Each
    sweep point checkpoints into its own subdirectory of
    ``checkpoint_root`` keyed by the point's full identity -- distance,
    basis and a prefix of the :func:`experiment_fingerprint` (which pins
    the physical error rate, rounds and noise model) plus the seed -- so
    two sweeps sharing a root and base seed (e.g. the same distance over
    two different ``p`` lists) land in distinct directories, and a killed
    multi-point campaign resumes per point.

    Args:
        checkpoint_root: Root directory for per-point checkpoint
            subdirectories (None disables checkpointing).
        workers: Worker processes per point.
        chunks_per_worker: Chunks per worker.
        block_shots: Shots per sampling block.
        resume: Skip chunks already checkpointed for a point.
        max_retries: Supervised retries per chunk.
        chunk_timeout: Per-chunk hang timeout in seconds (None disables).
        retry_backoff: Base retry backoff in seconds.
        fault_injector: Optional deterministic fault injector.
        allow_partial: Drop terminally failed chunks instead of raising.
        recovery_log: When given, each point's :class:`RecoveryStats` is
            appended here (the sweep API only carries the result).

    Returns:
        The runner callable yielding plain
        :class:`~repro.experiments.memory.MemoryRunResult` values.
    """

    def run(
        experiment: MemoryExperiment,
        decoder: Decoder,
        shots: int,
        *,
        seed: int = 0,
        **_ignored,
    ) -> MemoryRunResult:
        if checkpoint_root is not None:
            point_key = (
                f"d{experiment.code.distance}-{experiment.basis}-"
                f"{experiment_fingerprint(experiment)[:12]}-"
                f"seed-{seed:08d}"
            )
            checkpoint_dir = Path(checkpoint_root) / point_key
        else:
            checkpoint_dir = None
        outcome = run_memory_experiment_resilient(
            experiment,
            decoder,
            shots,
            seed=seed,
            workers=workers,
            chunks_per_worker=chunks_per_worker,
            block_shots=block_shots,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            max_retries=max_retries,
            chunk_timeout=chunk_timeout,
            retry_backoff=retry_backoff,
            fault_injector=fault_injector,
            allow_partial=allow_partial,
        )
        if recovery_log is not None:
            recovery_log.append(outcome.recovery)
        return outcome.result

    return run
