"""Paired decoder comparison on shared samples.

Comparing two decoders by their independent LER estimates wastes
statistical power: most shots are decoded identically, and the independent
Monte-Carlo noise of two runs swamps a small accuracy gap.  The right tool
is a *paired* comparison on one shared sample -- count the shots where
decoder A errs and B does not, and vice versa (the discordant pairs of
McNemar's test).  The decoders' LER difference is exactly the difference
of those two counts over the trials, and its significance follows from the
discordant counts alone.

This is how the repository's claims of the form "Astrea-G is within x of
MWPM" should be sharpened when the gap is small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.memory import MemoryExperiment
from ..decoders.base import Decoder
from ..sim.packing import unique_rows
from ..sim.pauli_frame import PauliFrameSimulator

__all__ = ["PairedComparison", "compare_decoders"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired accuracy comparison.

    Attributes:
        name_a: First decoder's name.
        name_b: Second decoder's name.
        shots: Shared Monte-Carlo trials.
        errors_a: Logical errors of decoder A.
        errors_b: Logical errors of decoder B.
        only_a: Shots where only A erred (discordant pairs favouring B).
        only_b: Shots where only B erred (discordant pairs favouring A).
        both: Shots where both erred.
    """

    name_a: str
    name_b: str
    shots: int
    errors_a: int
    errors_b: int
    only_a: int
    only_b: int
    both: int

    @property
    def ler_difference(self) -> float:
        """``LER(A) - LER(B)`` (positive when A is worse)."""
        return (self.errors_a - self.errors_b) / self.shots

    @property
    def discordant(self) -> int:
        """Total discordant pairs (the informative shots)."""
        return self.only_a + self.only_b

    def mcnemar_statistic(self) -> float:
        """McNemar's chi-squared statistic (without continuity correction).

        Under the null hypothesis (equal accuracy), the discordant pairs
        split 50/50; values above ~3.84 reject equality at the 5% level.
        """
        if self.discordant == 0:
            return 0.0
        return (self.only_a - self.only_b) ** 2 / self.discordant

    def significant(self, threshold: float = 3.841) -> bool:
        """Whether the accuracy difference is significant at ~5%."""
        return self.mcnemar_statistic() > threshold

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        verdict = (
            f"{self.name_a} worse"
            if self.errors_a > self.errors_b
            else f"{self.name_b} worse"
            if self.errors_b > self.errors_a
            else "tied"
        )
        sig = "significant" if self.significant() else "not significant"
        return (
            f"{self.name_a} {self.errors_a} vs {self.name_b} {self.errors_b} "
            f"errors over {self.shots} shared shots "
            f"(discordant {self.only_a}/{self.only_b}; {verdict}, {sig}, "
            f"chi2={self.mcnemar_statistic():.2f})"
        )


def compare_decoders(
    experiment: MemoryExperiment,
    decoder_a: Decoder | str,
    decoder_b: Decoder | str,
    shots: int,
    *,
    seed: int | None = None,
    setup=None,
) -> PairedComparison:
    """Run a paired accuracy comparison on one shared sample.

    Args:
        experiment: Memory experiment supplying the workload.
        decoder_a: First decoder, or a registry decoder name.
        decoder_b: Second decoder, or a registry decoder name.
        shots: Monte-Carlo trials (each decoded by both decoders).
        seed: Sampler seed.
        setup: The :class:`~repro.experiments.setup.DecodingSetup` to
            build named decoders against.  Required when a decoder is
            given by name; must match ``experiment``.

    Returns:
        The :class:`PairedComparison`.
    """
    if isinstance(decoder_a, str) or isinstance(decoder_b, str):
        if setup is None:
            raise ValueError(
                "compare_decoders needs setup= to resolve decoder names"
            )
        from ..decoders.registry import make_decoder

        if isinstance(decoder_a, str):
            decoder_a = make_decoder(decoder_a, setup)
        if isinstance(decoder_b, str):
            decoder_b = make_decoder(decoder_b, setup)
    sample = PauliFrameSimulator(experiment.circuit, seed=seed).sample(shots)
    observed = sample.observables[:, 0]
    unique, inverse, _ = unique_rows(sample.detectors)
    pred_a = np.array([r.prediction for r in decoder_a.decode_batch(unique)])
    pred_b = np.array([r.prediction for r in decoder_b.decode_batch(unique)])
    err_a = pred_a[inverse] != observed
    err_b = pred_b[inverse] != observed
    return PairedComparison(
        name_a=decoder_a.name,
        name_b=decoder_b.name,
        shots=shots,
        errors_a=int(err_a.sum()),
        errors_b=int(err_b.sum()),
        only_a=int((err_a & ~err_b).sum()),
        only_b=int((err_b & ~err_a).sum()),
        both=int((err_a & err_b).sum()),
    )
