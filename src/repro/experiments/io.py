"""Validated, atomic persistence of experiment results.

The paper's artifact appends one line per experiment configuration to a
text output file that its plotting script then consumes.  At the campaign
scales PRs 1-3 unlocked (multi-hour sweeps, 10^8+ shots per point), a
half-written or bit-rotted result file silently poisons every downstream
plot, so this module hardens the output convention:

* every file is written via temp-file + :func:`os.replace` (readers never
  observe a partial write, even across a crash mid-``save``);
* sweep files embed a schema version and a SHA-256 content checksum, and
  :func:`load_sweep` raises a descriptive :class:`CorruptResultError` on
  truncated or garbled input instead of a bare parse error;
* the checkpoint layer (:mod:`repro.experiments.resilient`) and the
  pipeline artifact store (:mod:`repro.pipeline.artifacts`) share the
  same primitives, which live in :mod:`repro.ioutil` and are re-exported
  here for backwards compatibility.

Legacy (pre-checksum) sweep CSVs still load.
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path
from typing import Sequence

from ..ioutil import (
    JSON_RECORD_SCHEMA_VERSION,
    CorruptResultError,
    atomic_write_bytes,
    atomic_write_text,
    read_json_record,
    sha256_text as _sha256,
    write_json_record,
)
from .memory import MemoryRunResult
from .sweep import SweepPoint

__all__ = [
    "CorruptResultError",
    "save_sweep",
    "load_sweep",
    "atomic_write_bytes",
    "atomic_write_text",
    "write_json_record",
    "read_json_record",
    "SWEEP_FIELDS",
    "SWEEP_SCHEMA_VERSION",
]

#: Column order of the CSV schema.
SWEEP_FIELDS = (
    "distance",
    "physical_error_rate",
    "decoder",
    "shots",
    "errors",
    "logical_error_rate",
    "declined",
    "timed_out",
    "mean_latency_ns",
    "max_latency_ns",
)

#: Version of the checksummed sweep-file format.
SWEEP_SCHEMA_VERSION = 2

_SWEEP_MAGIC = "#repro-sweep"

# CorruptResultError, atomic_write_text/bytes and write/read_json_record
# moved to repro.ioutil (shared with the pipeline artifact store); the
# re-exports above keep this module's public surface unchanged.


def _render_sweep_body(points: Sequence[SweepPoint]) -> str:
    """Render the CSV body (header + rows) of a sweep file."""
    buffer = _io.StringIO()
    # "\n" line endings keep the checksum stable across text-mode reads
    # (universal-newline translation would otherwise alter the body).
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(SWEEP_FIELDS)
    for point in points:
        r = point.result
        writer.writerow(
            [
                point.distance,
                f"{point.physical_error_rate:.9e}",
                r.decoder_name,
                r.shots,
                r.errors,
                f"{r.logical_error_rate:.9e}",
                r.declined,
                r.timed_out,
                f"{r.mean_latency_ns:.6f}",
                f"{r.max_latency_ns:.6f}",
            ]
        )
    return buffer.getvalue()


def save_sweep(points: Sequence[SweepPoint], path: str | Path) -> None:
    """Write sweep points to a checksummed CSV file (atomic overwrite).

    The first line is a framing comment carrying the schema version and
    the SHA-256 of the CSV body, so :func:`load_sweep` can detect
    truncation and corruption; the write itself goes through
    :func:`atomic_write_text` so a crash mid-save never leaves a partial
    file behind.

    Args:
        points: The sweep points to persist.
        path: Destination file path.
    """
    body = _render_sweep_body(points)
    header = (
        f"{_SWEEP_MAGIC} schema={SWEEP_SCHEMA_VERSION} "
        f"checksum=sha256:{_sha256(body)}\n"
    )
    atomic_write_text(path, header + body)


def load_sweep(path: str | Path) -> list[SweepPoint]:
    """Read sweep points previously written by :func:`save_sweep`.

    Both the checksummed v2 format and legacy header-only CSVs load; a v2
    file is verified against its embedded checksum first.

    Args:
        path: CSV file path.

    Returns:
        The reconstructed sweep points (latency histograms and confidence
        data are re-derivable from the stored counts).

    Raises:
        FileNotFoundError: When ``path`` does not exist.
        CorruptResultError: When the header does not match the schema, the
            checksum fails, or any row is truncated or garbled.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as handle:
        text = handle.read()
    body = text
    first, _, rest = text.partition("\n")
    if first.startswith(_SWEEP_MAGIC):
        fields = dict(
            part.split("=", 1) for part in first.split()[1:] if "=" in part
        )
        schema = fields.get("schema")
        if schema != str(SWEEP_SCHEMA_VERSION):
            raise CorruptResultError(
                f"{path}: unsupported sweep schema {schema!r} "
                f"(this build reads version {SWEEP_SCHEMA_VERSION})"
            )
        declared = fields.get("checksum", "")
        if declared != f"sha256:{_sha256(rest)}":
            raise CorruptResultError(
                f"{path}: checksum mismatch -- the file is truncated or was "
                "modified after it was written"
            )
        body = rest
    points: list[SweepPoint] = []
    reader = csv.reader(_io.StringIO(body))
    header = next(reader, None)
    if header != list(SWEEP_FIELDS):
        raise CorruptResultError(f"{path}: unexpected sweep CSV header: {header}")
    for number, row in enumerate(reader, start=2):
        if not row:
            continue
        try:
            (
                distance,
                p,
                decoder,
                shots,
                errors,
                _ler,
                declined,
                timed_out,
                mean_latency,
                max_latency,
            ) = row
            result = MemoryRunResult(
                decoder_name=decoder,
                shots=int(shots),
                errors=int(errors),
                declined=int(declined),
                timed_out=int(timed_out),
                mean_latency_ns=float(mean_latency),
                max_latency_ns=float(max_latency),
            )
            points.append(
                SweepPoint(
                    distance=int(distance),
                    physical_error_rate=float(p),
                    result=result,
                )
            )
        except (ValueError, TypeError) as exc:
            raise CorruptResultError(
                f"{path}: row {number} is truncated or garbled ({exc})"
            ) from exc
    return points
