"""Persisting sweep results (the artifact's output-file convention).

The paper's artifact appends one line per experiment configuration to a
text output file that its plotting script then consumes.  This module
provides the same durability for sweeps as CSV: :func:`save_sweep` writes
:class:`~repro.experiments.sweep.SweepPoint` lists with enough fields to
re-plot any LER figure, and :func:`load_sweep` reads them back.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from .memory import MemoryRunResult
from .sweep import SweepPoint

__all__ = ["save_sweep", "load_sweep", "SWEEP_FIELDS"]

#: Column order of the CSV schema.
SWEEP_FIELDS = (
    "distance",
    "physical_error_rate",
    "decoder",
    "shots",
    "errors",
    "logical_error_rate",
    "declined",
    "timed_out",
    "mean_latency_ns",
    "max_latency_ns",
)


def save_sweep(points: Sequence[SweepPoint], path: str | Path) -> None:
    """Write sweep points to a CSV file (overwrites).

    Args:
        points: The sweep points to persist.
        path: Destination file path.
    """
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(SWEEP_FIELDS)
        for point in points:
            r = point.result
            writer.writerow(
                [
                    point.distance,
                    f"{point.physical_error_rate:.9e}",
                    r.decoder_name,
                    r.shots,
                    r.errors,
                    f"{r.logical_error_rate:.9e}",
                    r.declined,
                    r.timed_out,
                    f"{r.mean_latency_ns:.6f}",
                    f"{r.max_latency_ns:.6f}",
                ]
            )


def load_sweep(path: str | Path) -> list[SweepPoint]:
    """Read sweep points previously written by :func:`save_sweep`.

    Args:
        path: CSV file path.

    Returns:
        The reconstructed sweep points (latency histograms and confidence
        data are re-derivable from the stored counts).

    Raises:
        ValueError: When the header does not match the schema.
    """
    path = Path(path)
    points: list[SweepPoint] = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != list(SWEEP_FIELDS):
            raise ValueError(f"unexpected sweep CSV header: {header}")
        for row in reader:
            (
                distance,
                p,
                decoder,
                shots,
                errors,
                _ler,
                declined,
                timed_out,
                mean_latency,
                max_latency,
            ) = row
            result = MemoryRunResult(
                decoder_name=decoder,
                shots=int(shots),
                errors=int(errors),
                declined=int(declined),
                timed_out=int(timed_out),
                mean_latency_ns=float(mean_latency),
                max_latency_ns=float(max_latency),
            )
            points.append(
                SweepPoint(
                    distance=int(distance),
                    physical_error_rate=float(p),
                    result=result,
                )
            )
    return points
