"""Experiment harnesses: Monte-Carlo runs, sweeps, estimators, reports."""

from .accuracy import PairedComparison, compare_decoders
from .hamming import HammingCensus, hamming_weight_census
from .importance import StratifiedEstimate, estimate_ler_stratified
from .io import CorruptResultError, load_sweep, save_sweep
from .memory import MemoryRunResult, run_memory_experiment
from .parallel import merge_censuses, merge_results, run_memory_experiment_parallel
from .report import HeadlineReport, run_headline_report
from .resilient import (
    CheckpointStore,
    RecoveryStats,
    ResilientRunResult,
    make_resilient_runner,
    run_memory_experiment_resilient,
)
from .setup import DecodingSetup
from .stats import poisson_pmf, wilson_interval
from .sweep import SweepPoint, ler_vs_distance, ler_vs_physical_error

__all__ = [
    "CheckpointStore",
    "CorruptResultError",
    "DecodingSetup",
    "HammingCensus",
    "HeadlineReport",
    "MemoryRunResult",
    "PairedComparison",
    "RecoveryStats",
    "ResilientRunResult",
    "StratifiedEstimate",
    "SweepPoint",
    "compare_decoders",
    "estimate_ler_stratified",
    "hamming_weight_census",
    "ler_vs_distance",
    "ler_vs_physical_error",
    "load_sweep",
    "make_resilient_runner",
    "merge_censuses",
    "merge_results",
    "poisson_pmf",
    "run_headline_report",
    "run_memory_experiment",
    "run_memory_experiment_parallel",
    "run_memory_experiment_resilient",
    "save_sweep",
    "wilson_interval",
]
