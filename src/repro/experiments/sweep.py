"""Structured parameter sweeps over the memory-experiment harness.

The paper's evaluation is built from two sweep shapes: logical error rate
versus physical error rate at fixed distance (Figures 12 and 14) and
versus distance at fixed physical error rate (Figure 4).  This module
provides both as first-class, resumable iterables so benchmarks, examples
and the CLI share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..decoders.base import Decoder
from .memory import MemoryRunResult, run_memory_experiment
from .setup import DecodingSetup

__all__ = ["SweepPoint", "ler_vs_physical_error", "ler_vs_distance"]

#: The decoder under test, as either a factory over the point's setup
#: (``lambda setup: make_decoder("astrea", setup)``) or a registry name
#: (``"astrea"``, resolved via :func:`repro.decoders.registry.make_decoder`).
DecoderFactory = Callable[[DecodingSetup], Decoder] | str


def _resolve_factory(decoder_factory: DecoderFactory) -> Callable[[DecodingSetup], Decoder]:
    """Normalise a registry name into a factory callable."""
    if isinstance(decoder_factory, str):
        from ..decoders.registry import make_decoder

        name = decoder_factory
        return lambda setup: make_decoder(name, setup)
    return decoder_factory

#: A Monte-Carlo runner with the :func:`run_memory_experiment` calling
#: convention: ``runner(experiment, decoder, shots, seed=...)``.  Sweeps
#: accept one so long campaigns can swap in the supervised runner (see
#: :func:`repro.experiments.resilient.make_resilient_runner`) without the
#: sweep drivers knowing about checkpoints or retries.
SweepRunner = Callable[..., MemoryRunResult]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep.

    Attributes:
        distance: Code distance of this point.
        physical_error_rate: Physical error rate of this point.
        result: The Monte-Carlo run result.
    """

    distance: int
    physical_error_rate: float
    result: MemoryRunResult

    @property
    def logical_error_rate(self) -> float:
        """Shortcut to the run's logical error rate."""
        return self.result.logical_error_rate


def ler_vs_physical_error(
    distance: int,
    physical_error_rates: Sequence[float],
    decoder_factory: DecoderFactory,
    shots: int,
    *,
    seed: int = 0,
    basis: str = "z",
    runner: SweepRunner | None = None,
) -> list[SweepPoint]:
    """Sweep the physical error rate at fixed distance (Figures 12/14).

    Args:
        distance: Code distance.
        physical_error_rates: The ``p`` values to evaluate.
        decoder_factory: Builds the decoder under test for each setup;
            a registry decoder name is accepted in place of a callable.
        shots: Monte-Carlo trials per point.
        seed: Base seed; each point offsets it deterministically.
        basis: Memory basis.
        runner: Monte-Carlo runner to use per point (defaults to
            :func:`run_memory_experiment`; pass a supervised runner for
            checkpointed/resumable campaigns).

    Returns:
        One :class:`SweepPoint` per rate, in input order.
    """
    run = runner if runner is not None else run_memory_experiment
    factory = _resolve_factory(decoder_factory)
    points = []
    for index, p in enumerate(physical_error_rates):
        setup = DecodingSetup.build(distance, p, basis=basis)
        decoder = factory(setup)
        result = run(setup.experiment, decoder, shots, seed=seed + index)
        points.append(
            SweepPoint(distance=distance, physical_error_rate=p, result=result)
        )
    return points


def ler_vs_distance(
    distances: Iterable[int],
    physical_error_rate: float,
    decoder_factory: DecoderFactory,
    shots: int,
    *,
    seed: int = 0,
    basis: str = "z",
    runner: SweepRunner | None = None,
) -> list[SweepPoint]:
    """Sweep the code distance at fixed physical error rate (Figure 4).

    Args:
        distances: Odd code distances to evaluate.
        physical_error_rate: The shared ``p``.
        decoder_factory: Builds the decoder under test for each setup;
            a registry decoder name is accepted in place of a callable.
        shots: Monte-Carlo trials per point.
        seed: Base seed; each point offsets it deterministically.
        basis: Memory basis.
        runner: Monte-Carlo runner to use per point (defaults to
            :func:`run_memory_experiment`; pass a supervised runner for
            checkpointed/resumable campaigns).

    Returns:
        One :class:`SweepPoint` per distance, in input order.
    """
    run = runner if runner is not None else run_memory_experiment
    factory = _resolve_factory(decoder_factory)
    points = []
    for index, distance in enumerate(distances):
        setup = DecodingSetup.build(distance, physical_error_rate, basis=basis)
        decoder = factory(setup)
        result = run(setup.experiment, decoder, shots, seed=seed + index)
        points.append(
            SweepPoint(
                distance=distance,
                physical_error_rate=physical_error_rate,
                result=result,
            )
        )
    return points
