"""Hamming-weight census of syndrome vectors (paper section 4.2).

Astrea's feasibility rests on the empirical distribution of syndrome
Hamming weights: Table 2 shows that at ``p = 1e-4`` syndromes heavier than
10 are rarer than the logical error rate up to distance 7, and Table 5
shows this breaks down at ``p = 1e-3``.  This module samples that
distribution and buckets it the way the paper's tables do.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


from ..circuits.memory import MemoryExperiment
from ..sim.pauli_frame import PauliFrameSimulator

__all__ = ["HammingCensus", "hamming_weight_census", "TABLE2_BUCKETS"]

#: The Hamming-weight buckets of paper Tables 2 and 5.
TABLE2_BUCKETS: tuple[tuple[int, int], ...] = (
    (0, 0),
    (1, 2),
    (3, 4),
    (5, 6),
    (7, 10),
    (11, 10**9),
)


@dataclass
class HammingCensus:
    """Sampled distribution of syndrome-vector Hamming weights.

    Attributes:
        shots: Number of sampled syndromes.
        counts: Map from Hamming weight to occurrence count.
    """

    shots: int
    counts: Counter = field(default_factory=Counter)

    def probability(self, weight: int) -> float:
        """Empirical probability of one exact Hamming weight."""
        return self.counts.get(weight, 0) / self.shots

    def bucket_probability(self, low: int, high: int) -> float:
        """Empirical probability of weights in ``[low, high]`` inclusive."""
        total = sum(c for w, c in self.counts.items() if low <= w <= high)
        return total / self.shots

    def tail_probability(self, above: int) -> float:
        """Empirical probability of weights strictly above ``above``."""
        total = sum(c for w, c in self.counts.items() if w > above)
        return total / self.shots

    @property
    def max_weight(self) -> int:
        """Largest Hamming weight observed."""
        return max(self.counts) if self.counts else 0

    @property
    def mean_weight(self) -> float:
        """Mean Hamming weight."""
        if not self.shots:
            return 0.0
        return sum(w * c for w, c in self.counts.items()) / self.shots

    def table_rows(self) -> list[tuple[str, float]]:
        """The census bucketed as in paper Table 2 / Table 5."""
        rows = []
        for low, high in TABLE2_BUCKETS:
            if low == high:
                label = str(low)
            elif high >= 10**9:
                label = f"> {low - 1}"
            else:
                label = f"{low}-{high}"
            rows.append((label, self.bucket_probability(low, high)))
        return rows


def hamming_weight_census(
    experiment: MemoryExperiment,
    shots: int,
    *,
    seed: int | None = None,
) -> HammingCensus:
    """Sample the Hamming-weight distribution of an experiment's syndromes.

    Args:
        experiment: The memory-experiment circuit bundle.
        shots: Number of syndromes to sample.
        seed: Sampler seed.

    Returns:
        The sampled :class:`HammingCensus`.
    """
    sampler = PauliFrameSimulator(experiment.circuit, seed=seed)
    sample = sampler.sample(shots)
    weights = sample.detectors.sum(axis=1)
    counts = Counter(int(w) for w in weights)
    return HammingCensus(shots=shots, counts=counts)
