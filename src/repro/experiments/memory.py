"""Monte-Carlo memory experiments: the paper's evaluation workhorse.

Each trial of a memory experiment (paper section 3.4) prepares a logical
state, runs ``d`` noisy syndrome-extraction rounds, decodes the resulting
syndrome vector and compares the decoder's predicted logical flip with the
actual one; a mismatch is a logical error.  This module batches that
pipeline: syndromes are sampled in bulk with the Pauli-frame simulator and
decoded once per *unique* syndrome (decoders are deterministic), which
matters at low physical error rates where the same few low-weight
syndromes recur constantly.  The unique syndromes go through
:meth:`~repro.decoders.base.Decoder.decode_batch`, so decoders with a
vectorized batch path (Astrea, Astrea-G, MWPM) decode whole
Hamming-weight buckets per NumPy kernel call.

Deduplication sorts *packed syndrome keys* (``uint64`` words via
:func:`repro.sim.packing.unique_rows`) rather than wide boolean rows, and
both the cached and uncached paths share one vectorised tally
(:func:`tally_decode_results`) -- also used by the parallel runner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.memory import MemoryExperiment
from ..decoders.base import DecodeResult, Decoder
from ..sim.packing import unique_rows
from ..sim.pauli_frame import PauliFrameSimulator
from .stats import wilson_interval

__all__ = [
    "MemoryRunResult",
    "DecodeTally",
    "run_memory_experiment",
    "tally_decode_results",
]


@dataclass
class MemoryRunResult:
    """Aggregate outcome of a Monte-Carlo memory experiment.

    Attributes:
        decoder_name: Name of the decoder under test.
        shots: Number of Monte-Carlo trials.
        errors: Logical errors observed.
        declined: Shots the decoder refused to decode (counted with a
            "no flip" prediction, like Astrea beyond Hamming weight 10).
        timed_out: Shots on which a real-time decoder hit its deadline.
        mean_latency_ns: Shot-weighted mean decode latency.
        max_latency_ns: Worst-case decode latency observed.
        mean_latency_nontrivial_ns: Mean latency over shots with Hamming
            weight > 2 (the "Mean (HW > 2 Only)" series of Figure 9).
        nontrivial_shots: Shots with Hamming weight > 2 (the weight of
            ``mean_latency_nontrivial_ns``, needed to merge chunked runs
            exactly).
        unique_syndromes: Distinct syndromes decoded (cache effectiveness).
        dropped_chunks: Failed chunks excluded from a merged result (0 for
            a single uninterrupted run); a non-zero value means ``shots``
            covers less of the campaign than was requested and the caller
            should surface the degradation.
    """

    decoder_name: str
    shots: int
    errors: int
    declined: int = 0
    timed_out: int = 0
    mean_latency_ns: float = 0.0
    max_latency_ns: float = 0.0
    mean_latency_nontrivial_ns: float = 0.0
    nontrivial_shots: int = 0
    unique_syndromes: int = 0
    dropped_chunks: int = 0

    @property
    def logical_error_rate(self) -> float:
        """Fraction of shots ending in a logical error."""
        return self.errors / self.shots if self.shots else 0.0

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """95% Wilson interval of the logical error rate."""
        return wilson_interval(self.errors, max(self.shots, 1))


@dataclass
class DecodeTally:
    """Vectorised shot-weighted tally of a batch of decode results.

    Produced by :func:`tally_decode_results` from one
    :class:`~repro.decoders.base.DecodeResult` per distinct syndrome plus
    that syndrome's shot multiplicity and observed-flip count; consumed by
    both the serial and the parallel memory-experiment runners.
    """

    errors: int
    declined: int
    timed_out: int
    latency_sum: float
    latency_max: float
    nontrivial_latency_sum: float
    nontrivial_shots: int


def tally_decode_results(
    syndromes: np.ndarray,
    counts: np.ndarray,
    flips: np.ndarray,
    results: list[DecodeResult],
) -> DecodeTally:
    """Aggregate per-syndrome decode results into shot-weighted totals.

    Args:
        syndromes: ``(U, num_detectors)`` distinct (or per-shot) syndromes.
        counts: ``(U,)`` shots that produced each syndrome.
        flips: ``(U,)`` of those shots, how many had the logical
            observable actually flipped.
        results: One decode result per syndrome row.

    Returns:
        The :class:`DecodeTally`; ``errors`` counts a "flip" prediction
        against the non-flipped shots and vice versa, exactly as a
        per-shot loop would.
    """
    counts = np.asarray(counts, dtype=np.int64)
    flips = np.asarray(flips, dtype=np.int64)
    if not len(results):
        return DecodeTally(0, 0, 0, 0.0, 0.0, 0.0, 0)
    predictions = np.array([r.prediction for r in results], dtype=bool)
    decoded_mask = np.array([r.decoded for r in results], dtype=bool)
    timeout_mask = np.array([r.timed_out for r in results], dtype=bool)
    latencies = np.array([r.latency_ns for r in results], dtype=np.float64)
    hamming = syndromes.sum(axis=1)
    nontrivial_mask = hamming > 2
    weighted = latencies * counts
    nontrivial = int(counts[nontrivial_mask].sum())
    return DecodeTally(
        errors=int(np.where(predictions, counts - flips, flips).sum()),
        declined=int(counts[~decoded_mask].sum()),
        timed_out=int(counts[timeout_mask].sum()),
        latency_sum=float(weighted.sum()),
        latency_max=float(latencies.max()),
        nontrivial_latency_sum=float(weighted[nontrivial_mask].sum()),
        nontrivial_shots=nontrivial,
    )


def run_memory_experiment(
    experiment: MemoryExperiment,
    decoder: Decoder,
    shots: int,
    *,
    seed: int | None = None,
    cache_decodes: bool = True,
) -> MemoryRunResult:
    """Estimate a decoder's logical error rate by Monte-Carlo sampling.

    Args:
        experiment: The memory-experiment circuit bundle.
        decoder: The decoder under test.
        shots: Number of Monte-Carlo trials.
        seed: Sampler seed for reproducibility.
        cache_decodes: Decode each distinct syndrome once and replay the
            result (exact, since decoders are deterministic functions of
            the syndrome).

    Returns:
        The aggregated :class:`MemoryRunResult`.
    """
    sampler = PauliFrameSimulator(experiment.circuit, seed=seed)
    sample = sampler.sample(shots)
    detectors = sample.detectors
    observed = sample.observables[:, 0] if sample.observables.size else np.zeros(
        shots, dtype=bool
    )
    if cache_decodes:
        # Decode once per distinct syndrome; dedup sorts packed uint64
        # keys, not (shots, num_detectors) boolean rows.
        unique, inverse, counts = unique_rows(detectors)
        flips = np.bincount(
            inverse, weights=observed.astype(np.float64), minlength=len(unique)
        ).astype(np.int64)
        results = decoder.decode_batch(unique)
        tally = tally_decode_results(unique, counts, flips, results)
        unique_count = len(unique)
    else:
        # Uncached reference path: every shot decoded, still through the
        # vectorised decode_batch and the shared tally (counts of one).
        results = decoder.decode_batch(detectors)
        tally = tally_decode_results(
            detectors,
            np.ones(shots, dtype=np.int64),
            observed.astype(np.int64),
            results,
        )
        unique_count = shots
    return MemoryRunResult(
        decoder_name=decoder.name,
        shots=shots,
        errors=tally.errors,
        declined=tally.declined,
        timed_out=tally.timed_out,
        mean_latency_ns=tally.latency_sum / shots if shots else 0.0,
        max_latency_ns=tally.latency_max,
        mean_latency_nontrivial_ns=(
            tally.nontrivial_latency_sum / tally.nontrivial_shots
            if tally.nontrivial_shots
            else 0.0
        ),
        nontrivial_shots=tally.nontrivial_shots,
        unique_syndromes=unique_count,
    )
