"""Monte-Carlo memory experiments: the paper's evaluation workhorse.

Each trial of a memory experiment (paper section 3.4) prepares a logical
state, runs ``d`` noisy syndrome-extraction rounds, decodes the resulting
syndrome vector and compares the decoder's predicted logical flip with the
actual one; a mismatch is a logical error.  This module batches that
pipeline: syndromes are sampled in bulk with the Pauli-frame simulator and
decoded once per *unique* syndrome (decoders are deterministic), which
matters at low physical error rates where the same few low-weight
syndromes recur constantly.  The unique syndromes go through
:meth:`~repro.decoders.base.Decoder.decode_batch`, so decoders with a
vectorized batch path (Astrea, Astrea-G, MWPM) decode whole
Hamming-weight buckets per NumPy kernel call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.memory import MemoryExperiment
from ..decoders.base import Decoder
from ..sim.pauli_frame import PauliFrameSimulator
from .stats import wilson_interval

__all__ = ["MemoryRunResult", "run_memory_experiment"]


@dataclass
class MemoryRunResult:
    """Aggregate outcome of a Monte-Carlo memory experiment.

    Attributes:
        decoder_name: Name of the decoder under test.
        shots: Number of Monte-Carlo trials.
        errors: Logical errors observed.
        declined: Shots the decoder refused to decode (counted with a
            "no flip" prediction, like Astrea beyond Hamming weight 10).
        timed_out: Shots on which a real-time decoder hit its deadline.
        mean_latency_ns: Shot-weighted mean decode latency.
        max_latency_ns: Worst-case decode latency observed.
        mean_latency_nontrivial_ns: Mean latency over shots with Hamming
            weight > 2 (the "Mean (HW > 2 Only)" series of Figure 9).
        nontrivial_shots: Shots with Hamming weight > 2 (the weight of
            ``mean_latency_nontrivial_ns``, needed to merge chunked runs
            exactly).
        unique_syndromes: Distinct syndromes decoded (cache effectiveness).
    """

    decoder_name: str
    shots: int
    errors: int
    declined: int = 0
    timed_out: int = 0
    mean_latency_ns: float = 0.0
    max_latency_ns: float = 0.0
    mean_latency_nontrivial_ns: float = 0.0
    nontrivial_shots: int = 0
    unique_syndromes: int = 0

    @property
    def logical_error_rate(self) -> float:
        """Fraction of shots ending in a logical error."""
        return self.errors / self.shots if self.shots else 0.0

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """95% Wilson interval of the logical error rate."""
        return wilson_interval(self.errors, max(self.shots, 1))


def run_memory_experiment(
    experiment: MemoryExperiment,
    decoder: Decoder,
    shots: int,
    *,
    seed: int | None = None,
    cache_decodes: bool = True,
) -> MemoryRunResult:
    """Estimate a decoder's logical error rate by Monte-Carlo sampling.

    Args:
        experiment: The memory-experiment circuit bundle.
        decoder: The decoder under test.
        shots: Number of Monte-Carlo trials.
        seed: Sampler seed for reproducibility.
        cache_decodes: Decode each distinct syndrome once and replay the
            result (exact, since decoders are deterministic functions of
            the syndrome).

    Returns:
        The aggregated :class:`MemoryRunResult`.
    """
    sampler = PauliFrameSimulator(experiment.circuit, seed=seed)
    sample = sampler.sample(shots)
    detectors = sample.detectors
    observed = sample.observables[:, 0] if sample.observables.size else np.zeros(
        shots, dtype=bool
    )
    errors = 0
    declined = 0
    timed_out = 0
    latency_sum = 0.0
    latency_max = 0.0
    nontrivial_latency_sum = 0.0
    nontrivial = 0
    if cache_decodes:
        unique, inverse = np.unique(detectors, axis=0, return_inverse=True)
        results = decoder.decode_batch(unique)
        counts = np.bincount(inverse, minlength=len(unique))
        predictions = np.array([r.prediction for r in results], dtype=bool)
        errors = int(np.sum(predictions[inverse] != observed))
        for row, count, result in zip(unique, counts, results):
            count = int(count)
            hw = int(row.sum())
            if not result.decoded:
                declined += count
            if result.timed_out:
                timed_out += count
            latency_sum += result.latency_ns * count
            latency_max = max(latency_max, result.latency_ns)
            if hw > 2:
                nontrivial_latency_sum += result.latency_ns * count
                nontrivial += count
        unique_count = len(unique)
    else:
        for row, obs in zip(detectors, observed):
            result = decoder.decode(row)
            errors += int(result.prediction != obs)
            declined += int(not result.decoded)
            timed_out += int(result.timed_out)
            latency_sum += result.latency_ns
            latency_max = max(latency_max, result.latency_ns)
            if int(row.sum()) > 2:
                nontrivial_latency_sum += result.latency_ns
                nontrivial += 1
        unique_count = shots
    return MemoryRunResult(
        decoder_name=decoder.name,
        shots=shots,
        errors=errors,
        declined=declined,
        timed_out=timed_out,
        mean_latency_ns=latency_sum / shots if shots else 0.0,
        max_latency_ns=latency_max,
        mean_latency_nontrivial_ns=(
            nontrivial_latency_sum / nontrivial if nontrivial else 0.0
        ),
        nontrivial_shots=nontrivial,
        unique_syndromes=unique_count,
    )
