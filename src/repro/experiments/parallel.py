"""Multi-process Monte-Carlo memory experiments.

The paper's artifact distributes its 1B-100B-trial experiments over MPI
ranks ("mpirun -np <X> ./astrea ...", 1024 cores).  This module provides
the single-machine analogue: shots are partitioned into chunks, each chunk
runs :func:`~repro.experiments.memory.run_memory_experiment` in a worker
process with its own derived seed, and the per-chunk results are merged.

The merged statistics are exact for counts (errors, declines, timeouts)
and shot-weighted for latencies; ``unique_syndromes`` becomes the *sum* of
per-chunk unique counts (an upper bound, since chunks deduplicate
independently).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from ..circuits.memory import MemoryExperiment
from ..decoders.base import Decoder
from .memory import MemoryRunResult, run_memory_experiment

__all__ = ["run_memory_experiment_parallel", "merge_results"]


def merge_results(parts: list[MemoryRunResult]) -> MemoryRunResult:
    """Merge per-chunk results into one aggregate result.

    Args:
        parts: Non-empty list of chunk results for the same decoder.

    Returns:
        The merged :class:`MemoryRunResult`.
    """
    if not parts:
        raise ValueError("nothing to merge")
    total_shots = sum(p.shots for p in parts)
    if total_shots == 0:
        return MemoryRunResult(decoder_name=parts[0].decoder_name, shots=0, errors=0)
    nontrivial_weighted = 0.0
    nontrivial_reference = 0.0
    for p in parts:
        # Reconstruct each chunk's non-trivial latency mass from its mean;
        # chunks without non-trivial shots contribute nothing.
        if p.mean_latency_nontrivial_ns > 0:
            nontrivial_weighted += p.mean_latency_nontrivial_ns * p.shots
            nontrivial_reference += p.shots
    return MemoryRunResult(
        decoder_name=parts[0].decoder_name,
        shots=total_shots,
        errors=sum(p.errors for p in parts),
        declined=sum(p.declined for p in parts),
        timed_out=sum(p.timed_out for p in parts),
        mean_latency_ns=sum(p.mean_latency_ns * p.shots for p in parts)
        / total_shots,
        max_latency_ns=max(p.max_latency_ns for p in parts),
        mean_latency_nontrivial_ns=(
            nontrivial_weighted / nontrivial_reference
            if nontrivial_reference
            else 0.0
        ),
        unique_syndromes=sum(p.unique_syndromes for p in parts),
    )


def _run_chunk(payload) -> MemoryRunResult:
    """Worker entry point (module-level so it pickles)."""
    experiment, decoder, shots, seed = payload
    return run_memory_experiment(experiment, decoder, shots, seed=seed)


def run_memory_experiment_parallel(
    experiment: MemoryExperiment,
    decoder: Decoder,
    shots: int,
    *,
    seed: int = 0,
    workers: int = 2,
    chunks_per_worker: int = 1,
) -> MemoryRunResult:
    """Run a memory experiment across worker processes.

    Args:
        experiment: The memory-experiment bundle (pickled to workers).
        decoder: The decoder under test (pickled to workers).
        shots: Total Monte-Carlo trials across all chunks.
        seed: Base seed; chunk ``k`` runs with ``seed + k``.
        workers: Worker processes.
        chunks_per_worker: Chunks per worker (more chunks smooth load).

    Returns:
        The merged :class:`MemoryRunResult` over exactly ``shots`` trials.
    """
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    num_chunks = max(1, workers * chunks_per_worker)
    base = shots // num_chunks
    remainder = shots % num_chunks
    sizes = [base + (1 if k < remainder else 0) for k in range(num_chunks)]
    payloads = [
        (experiment, decoder, size, seed + k)
        for k, size in enumerate(sizes)
        if size > 0
    ]
    if not payloads:
        return MemoryRunResult(decoder_name=decoder.name, shots=0, errors=0)
    if workers == 1:
        parts = [_run_chunk(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(_run_chunk, payloads))
    return merge_results(parts)
