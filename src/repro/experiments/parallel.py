"""Multi-process Monte-Carlo memory experiments with an exact syndrome cache.

The paper's artifact distributes its 1B-100B-trial experiments over MPI
ranks ("mpirun -np <X> ./astrea ...", 1024 cores).  This module provides
the single-machine analogue in two phases:

1. **Sampling census** -- shots are partitioned into fixed-size *sampling
   blocks* (seeded ``seed + k`` for block ``k``, independent of how many
   workers run), and worker processes reduce their blocks to a
   :class:`SyndromeCensus`: each unique syndrome with its shot count and
   observable-flip count.  Because the block decomposition depends only on
   ``(shots, seed, block_shots)``, the merged census -- and therefore every
   count in the final result -- is identical for any worker/chunk split.
2. **Deduplicated decode** -- the per-chunk censuses are merged into one
   global census, and each *globally unique* syndrome is decoded exactly
   once via :meth:`~repro.decoders.base.Decoder.decode_batch` (sliced
   across workers when the unique set is large).  A syndrome that recurs
   in many chunks is never decoded twice, and ``unique_syndromes`` is the
   exact deduplicated count rather than a per-chunk sum.

:func:`merge_results` remains available for merging independently produced
:class:`MemoryRunResult` chunks (its ``unique_syndromes`` sum is an upper
bound in that usage, since separate results cannot be deduplicated after
the fact).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..circuits.memory import MemoryExperiment
from ..decoders.base import DecodeResult, Decoder
from ..pipeline.handle import DecoderHandle
from ..sim.frame_program import compile_frame_program
from ..sim.packing import unique_rows
from ..sim.pauli_frame import PauliFrameSimulator
from .memory import MemoryRunResult, tally_decode_results

__all__ = [
    "run_memory_experiment_parallel",
    "merge_results",
    "merge_censuses",
    "SyndromeCensus",
    "DEFAULT_BLOCK_SHOTS",
]

#: Default shots per sampling block.  The block decomposition (not the
#: worker count) determines which syndromes are sampled, so results are
#: reproducible across any worker/chunk configuration.
DEFAULT_BLOCK_SHOTS = 4096


@dataclass
class SyndromeCensus:
    """Unique syndromes of a sampled batch, with shot and flip counts.

    Attributes:
        syndromes: ``(U, num_detectors)`` bool array of distinct syndromes
            in packed-key lexicographic order (the deterministic order
            :func:`repro.sim.packing.unique_rows` yields), making the
            census canonical for a given sample multiset.
        counts: ``(U,)`` shots that produced each syndrome.
        flips: ``(U,)`` of those shots, how many had their logical
            observable actually flipped.
        dropped: Failed (``None``) parts excluded when this census was
            merged; 0 for a directly sampled census.
    """

    syndromes: np.ndarray
    counts: np.ndarray
    flips: np.ndarray
    dropped: int = 0

    @property
    def shots(self) -> int:
        """Total shots summarised by this census."""
        return int(self.counts.sum())


def _census_from_sample(
    detectors: np.ndarray, observed: np.ndarray
) -> SyndromeCensus:
    """Reduce a sampled (detectors, observable) batch to its census."""
    unique, inverse, counts = unique_rows(detectors)
    flips = np.bincount(
        inverse, weights=observed.astype(np.float64), minlength=len(unique)
    ).astype(np.int64)
    return SyndromeCensus(syndromes=unique, counts=counts, flips=flips)


def merge_censuses(parts: list[SyndromeCensus | None]) -> SyndromeCensus:
    """Merge censuses exactly: re-deduplicate syndromes, sum the counts.

    Failed parts (``None`` entries, e.g. chunks a supervised run had to
    drop) are tolerated: they are excluded from the merge and counted in
    the returned census's ``dropped`` field rather than raising mid-merge.

    Args:
        parts: List of censuses over the same detector layout; ``None``
            entries mark failed parts.

    Returns:
        The deduplicated union census over the surviving parts, with
        ``dropped`` the number of excluded parts (plus any ``dropped``
        already carried by the inputs).

    Raises:
        ValueError: When no valid part remains.
    """
    valid = [p for p in parts if p is not None]
    dropped = len(parts) - len(valid) + sum(p.dropped for p in valid)
    if not valid:
        raise ValueError(
            f"nothing to merge: all {len(parts)} census parts failed"
            if parts
            else "nothing to merge"
        )
    if len(valid) == 1:
        single = valid[0]
        if dropped == single.dropped:
            return single
        return SyndromeCensus(
            syndromes=single.syndromes,
            counts=single.counts,
            flips=single.flips,
            dropped=dropped,
        )
    stacked = np.concatenate([p.syndromes for p in valid], axis=0)
    counts = np.concatenate([p.counts for p in valid])
    flips = np.concatenate([p.flips for p in valid])
    unique, inverse, _ = unique_rows(stacked)
    merged_counts = np.zeros(len(unique), dtype=np.int64)
    merged_flips = np.zeros(len(unique), dtype=np.int64)
    np.add.at(merged_counts, inverse, counts)
    np.add.at(merged_flips, inverse, flips)
    return SyndromeCensus(
        syndromes=unique,
        counts=merged_counts,
        flips=merged_flips,
        dropped=dropped,
    )


def _sample_census_chunk(payload) -> SyndromeCensus:
    """Worker entry point for phase 1 (module-level so it pickles)."""
    experiment, blocks = payload
    # One compile per chunk: every block replays the same circuit, so the
    # simulators share a single frame program instead of re-lowering it.
    program = compile_frame_program(experiment.circuit)
    parts = []
    for block_seed, block_shots in blocks:
        sampler = PauliFrameSimulator(
            experiment.circuit, seed=block_seed, program=program
        )
        sample = sampler.sample(block_shots)
        if sample.observables.size:
            observed = sample.observables[:, 0]
        else:
            observed = np.zeros(block_shots, dtype=bool)
        parts.append(_census_from_sample(sample.detectors, observed))
    return merge_censuses(parts)


def _decode_chunk(payload) -> list[DecodeResult]:
    """Worker entry point for phase 2 (module-level so it pickles).

    A :class:`~repro.pipeline.handle.DecoderHandle` payload is
    materialised here, in the worker -- warm-starting from the artifact
    store when the handle carries a store root, and memoised so a worker
    decoding many chunks builds its decoder exactly once.
    """
    decoder, syndromes = payload
    if isinstance(decoder, DecoderHandle):
        decoder = decoder.resolve()
    return decoder.decode_batch(syndromes)


def merge_results(parts: list[MemoryRunResult | None]) -> MemoryRunResult:
    """Merge per-chunk results into one aggregate result.

    Counts (errors, declines, timeouts) sum exactly; latencies are
    weighted by each chunk's shot count, and the non-trivial mean by each
    chunk's ``nontrivial_shots``.  ``unique_syndromes`` sums, which is an
    *upper bound* when the chunks may share syndromes -- use
    :func:`run_memory_experiment_parallel` for an exact deduplicated count.

    Failed chunks (``None`` entries) are tolerated: they are excluded from
    every aggregate and counted in the merged result's ``dropped_chunks``
    field rather than raising mid-merge, so a mostly-successful campaign
    still yields its surviving statistics.

    Args:
        parts: List of chunk results for the same decoder; ``None``
            entries mark failed chunks.

    Returns:
        The merged :class:`MemoryRunResult` with ``dropped_chunks`` the
        number of excluded chunks (plus any carried by the inputs).

    Raises:
        ValueError: When no valid chunk remains.
    """
    valid = [p for p in parts if p is not None]
    dropped = len(parts) - len(valid) + sum(p.dropped_chunks for p in valid)
    if not valid:
        raise ValueError(
            f"nothing to merge: all {len(parts)} chunk results failed"
            if parts
            else "nothing to merge"
        )
    total_shots = sum(p.shots for p in valid)
    if total_shots == 0:
        return MemoryRunResult(
            decoder_name=valid[0].decoder_name,
            shots=0,
            errors=0,
            dropped_chunks=dropped,
        )
    total_nontrivial = sum(p.nontrivial_shots for p in valid)
    nontrivial_weighted = sum(
        p.mean_latency_nontrivial_ns * p.nontrivial_shots for p in valid
    )
    return MemoryRunResult(
        decoder_name=valid[0].decoder_name,
        shots=total_shots,
        errors=sum(p.errors for p in valid),
        declined=sum(p.declined for p in valid),
        timed_out=sum(p.timed_out for p in valid),
        mean_latency_ns=sum(p.mean_latency_ns * p.shots for p in valid)
        / total_shots,
        max_latency_ns=max(p.max_latency_ns for p in valid),
        mean_latency_nontrivial_ns=(
            nontrivial_weighted / total_nontrivial if total_nontrivial else 0.0
        ),
        nontrivial_shots=total_nontrivial,
        unique_syndromes=sum(p.unique_syndromes for p in valid),
        dropped_chunks=dropped,
    )


def _partition(items: int, groups: int) -> list[tuple[int, int]]:
    """Split ``items`` into up to ``groups`` contiguous (start, stop) slices."""
    groups = max(1, min(groups, items))
    base = items // groups
    remainder = items % groups
    slices = []
    start = 0
    for k in range(groups):
        size = base + (1 if k < remainder else 0)
        slices.append((start, start + size))
        start += size
    return slices


def run_memory_experiment_parallel(
    experiment: MemoryExperiment,
    decoder: Decoder | DecoderHandle,
    shots: int,
    *,
    seed: int = 0,
    workers: int = 2,
    chunks_per_worker: int = 1,
    block_shots: int = DEFAULT_BLOCK_SHOTS,
) -> MemoryRunResult:
    """Run a memory experiment across worker processes.

    Shots are sampled in blocks of ``block_shots`` (block ``k`` seeded
    ``seed + k``) and reduced to per-chunk syndrome censuses; the merged
    census is then decoded once per globally unique syndrome.  Every count
    in the result therefore depends only on ``(shots, seed, block_shots)``
    and the decoder -- not on ``workers`` or ``chunks_per_worker``, which
    merely distribute the sampling and decoding work.

    Args:
        experiment: The memory-experiment bundle (pickled to workers).
        decoder: The decoder under test (pickled to workers), or a
            :class:`~repro.pipeline.handle.DecoderHandle` recipe: workers
            then build the decoder themselves, warm-starting from the
            handle's artifact store, and each payload ships a few hundred
            bytes instead of the full weight tables.  Results are
            bit-identical either way.
        shots: Total Monte-Carlo trials across all blocks.
        seed: Base seed; sampling block ``k`` runs with ``seed + k``.
        workers: Worker processes.
        chunks_per_worker: Chunks per worker (more chunks smooth load).
        block_shots: Shots per sampling block (fixes the sample multiset
            independently of the worker/chunk split).

    Returns:
        The merged :class:`MemoryRunResult` over exactly ``shots`` trials,
        with ``unique_syndromes`` the exact deduplicated count.
    """
    if shots < 0:
        raise ValueError("shots must be non-negative")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if block_shots < 1:
        raise ValueError("block_shots must be >= 1")
    if shots == 0:
        return MemoryRunResult(decoder_name=decoder.name, shots=0, errors=0)
    blocks = []
    remaining = shots
    k = 0
    while remaining > 0:
        size = min(block_shots, remaining)
        blocks.append((seed + k, size))
        remaining -= size
        k += 1
    num_chunks = max(1, workers * chunks_per_worker)
    sample_payloads = [
        (experiment, blocks[start:stop])
        for start, stop in _partition(len(blocks), num_chunks)
        if stop > start
    ]
    if workers == 1 or len(sample_payloads) == 1:
        censuses = [_sample_census_chunk(p) for p in sample_payloads]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            censuses = list(pool.map(_sample_census_chunk, sample_payloads))
    census = merge_censuses(censuses)

    unique = census.syndromes
    decode_payloads = [
        (decoder, unique[start:stop])
        for start, stop in _partition(len(unique), num_chunks)
        if stop > start
    ]
    if workers == 1 or len(decode_payloads) == 1:
        decoded = [_decode_chunk(p) for p in decode_payloads]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            decoded = list(pool.map(_decode_chunk, decode_payloads))
    results: list[DecodeResult] = [r for part in decoded for r in part]

    tally = tally_decode_results(unique, census.counts, census.flips, results)
    return MemoryRunResult(
        decoder_name=decoder.name,
        shots=shots,
        errors=tally.errors,
        declined=tally.declined,
        timed_out=tally.timed_out,
        mean_latency_ns=tally.latency_sum / shots,
        max_latency_ns=tally.latency_max,
        mean_latency_nontrivial_ns=(
            tally.nontrivial_latency_sum / tally.nontrivial_shots
            if tally.nontrivial_shots
            else 0.0
        ),
        nontrivial_shots=tally.nontrivial_shots,
        unique_syndromes=len(unique),
    )
