"""Stratified logical-error-rate estimation (paper Appendix A, Eq. 3).

Direct Monte-Carlo sampling cannot resolve logical error rates far below
``1 / trials``; the paper itself hits this wall at d = 11 (LER below 1e-12)
and falls back to a stratified estimator:

    LER = sum_k  P_occurrence(k) * P_failure(k)

where ``P_occurrence(k)`` is the probability that exactly ``k`` fault
mechanisms fire in one shot, and ``P_failure(k)`` is the probability that a
shot with exactly ``k`` faults is decoded incorrectly, estimated by
injecting exactly ``k`` random faults per trial.

The number of firing mechanisms is a sum of thousands of tiny independent
Bernoullis, so ``P_occurrence`` is Poisson with mean ``sum_i p_i`` to
excellent accuracy; faults are drawn (without replacement) proportionally
to their probabilities.  This estimator lets laptop-scale runs reach the
deep sub-1e-9 LER regime of paper Table 9 and the low-p ends of Figures
12/14.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..decoders.base import Decoder
from ..sim.dem import DetectorErrorModel
from .stats import poisson_pmf

__all__ = ["StratifiedEstimate", "estimate_ler_stratified"]


@dataclass
class StratifiedEstimate:
    """Result of the Appendix-A stratified LER estimator.

    Attributes:
        logical_error_rate: The Eq. 3 estimate.
        occurrence: ``P_occurrence(k)`` for each stratum ``k``.
        failure: Estimated ``P_failure(k)`` for each stratum ``k``.
        trials_per_stratum: Monte-Carlo trials used per stratum.
        mean_faults: Poisson mean (sum of mechanism probabilities).
    """

    logical_error_rate: float
    occurrence: dict[int, float] = field(default_factory=dict)
    failure: dict[int, float] = field(default_factory=dict)
    trials_per_stratum: int = 0
    mean_faults: float = 0.0


def estimate_ler_stratified(
    dem: DetectorErrorModel,
    decoder: Decoder,
    *,
    max_faults: int = 12,
    trials_per_stratum: int = 2000,
    seed: int | None = None,
) -> StratifiedEstimate:
    """Estimate the logical error rate via Eq. 3 of the paper's appendix.

    Args:
        dem: Detector error model of the circuit.
        decoder: Decoder under test.
        max_faults: Largest stratum ``k`` evaluated (the paper uses up to
            20; strata beyond the Poisson bulk contribute negligibly).
        trials_per_stratum: Monte-Carlo trials per stratum.
        seed: PRNG seed.

    Returns:
        The :class:`StratifiedEstimate`.
    """
    rng = np.random.default_rng(seed)
    mechanisms = dem.mechanisms
    if not mechanisms:
        return StratifiedEstimate(0.0, trials_per_stratum=trials_per_stratum)
    probs = np.array([m.probability for m in mechanisms], dtype=np.float64)
    lam = float(probs.sum())
    weights = probs / probs.sum()
    detector_sets = [np.array(m.detectors, dtype=np.intp) for m in mechanisms]
    obs_flips = np.array(
        [0 in m.observables for m in mechanisms], dtype=bool
    )
    num_detectors = dem.num_detectors

    occurrence: dict[int, float] = {}
    failure: dict[int, float] = {}
    total = 0.0
    for k in range(1, max_faults + 1):
        p_occ = poisson_pmf(k, lam)
        occurrence[k] = p_occ
        if p_occ <= 0.0:
            failure[k] = 0.0
            continue
        failures = 0
        syndrome = np.zeros(num_detectors, dtype=bool)
        for _trial in range(trials_per_stratum):
            chosen = rng.choice(len(mechanisms), size=k, replace=False, p=weights)
            syndrome[:] = False
            obs = False
            for index in chosen:
                syndrome[detector_sets[index]] ^= True
                obs ^= bool(obs_flips[index])
            result = decoder.decode(syndrome)
            failures += int(result.prediction != obs)
        failure[k] = failures / trials_per_stratum
        total += p_occ * failure[k]
    return StratifiedEstimate(
        logical_error_rate=total,
        occurrence=occurrence,
        failure=failure,
        trials_per_stratum=trials_per_stratum,
        mean_faults=lam,
    )
