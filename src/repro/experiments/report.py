"""One-shot headline-results report.

``python -m repro report`` runs a condensed version of the paper's
headline experiments in one process and prints a summary a reviewer can
eyeball in a minute:

* Table 4 core: Astrea's error count is identical to software MWPM;
* Figure 9 core: Astrea's latency stays far inside the 1 us budget;
* Figure 12/14 core: Astrea-G tracks MWPM while staying real-time;
* Figure 4 core: the Union-Find (AFS) baseline is clearly less accurate;
* Table 2 core: high-Hamming-weight syndromes are rare.

The trial budget is a single knob so the same code serves a 30-second
smoke profile and an hour-long high-confidence profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..decoders.registry import make_decoder
from .hamming import hamming_weight_census
from .memory import MemoryRunResult, run_memory_experiment
from .setup import DecodingSetup

__all__ = ["HeadlineReport", "run_headline_report"]


@dataclass
class HeadlineReport:
    """Results of the condensed headline-experiment run.

    Attributes:
        distance: Code distance used.
        physical_error_rate: Operating point used.
        shots: Monte-Carlo trials per decoder.
        runs: Per-decoder memory-experiment results.
        tail_probability: Measured P(Hamming weight > 10).
        lines: Rendered human-readable report lines.
    """

    distance: int
    physical_error_rate: float
    shots: int
    runs: dict[str, MemoryRunResult] = field(default_factory=dict)
    tail_probability: float = 0.0
    lines: list[str] = field(default_factory=list)

    @property
    def astrea_matches_mwpm(self) -> bool:
        """Headline check: Astrea's errors equal MWPM's (mod declines)."""
        gap = abs(self.runs["Astrea"].errors - self.runs["MWPM"].errors)
        return gap <= max(2, self.runs["Astrea"].declined)

    @property
    def realtime_ok(self) -> bool:
        """Headline check: hardware decoders stay inside 1 us."""
        return (
            self.runs["Astrea"].max_latency_ns <= 1000.0
            and self.runs["Astrea-G"].max_latency_ns <= 1000.0
        )


def run_headline_report(
    *,
    distance: int = 5,
    physical_error_rate: float = 2e-3,
    shots: int = 20_000,
    seed: int = 2023,
) -> HeadlineReport:
    """Run the condensed headline experiments.

    Args:
        distance: Code distance (5 exercises every decoding path quickly).
        physical_error_rate: Operating point (default resolves LERs at
            modest trial counts).
        shots: Trials per decoder.
        seed: Shared PRNG seed so decoders see identical samples.

    Returns:
        The populated :class:`HeadlineReport`.
    """
    setup = DecodingSetup.build(distance, physical_error_rate)
    decoders = {
        "MWPM": make_decoder("mwpm", setup),
        "Astrea": make_decoder("astrea", setup),
        "Astrea-G": make_decoder("astrea-g", setup, weight_threshold=7.0),
        "AFS (UF)": make_decoder("union-find", setup),
    }
    report = HeadlineReport(
        distance=distance, physical_error_rate=physical_error_rate, shots=shots
    )
    for name, decoder in decoders.items():
        report.runs[name] = run_memory_experiment(
            setup.experiment, decoder, shots, seed=seed
        )
    census = hamming_weight_census(setup.experiment, shots, seed=seed + 1)
    report.tail_probability = census.tail_probability(10)

    mwpm = report.runs["MWPM"]
    lines = [
        f"Astrea reproduction headline report",
        f"d={distance}, p={physical_error_rate}, {shots} trials/decoder",
        "",
        f"{'decoder':>9} {'LER':>10} {'errors':>7} {'max lat':>9}",
    ]
    for name, run in report.runs.items():
        lines.append(
            f"{name:>9} {run.logical_error_rate:>10.2e} {run.errors:>7} "
            f"{run.max_latency_ns:>7.0f}ns"
        )
    for name, run in report.runs.items():
        if run.dropped_chunks:
            lines.append(
                f"[WARN] {name}: {run.dropped_chunks} chunk(s) dropped -- "
                f"the reported rate covers only {run.shots} surviving shots"
            )
    for name, decoder in decoders.items():
        fallbacks = getattr(decoder, "fallback_events", 0)
        stats = getattr(decoder, "sparse_stats", None)
        if fallbacks:
            breakdown = ""
            if stats is not None and any(stats.fallback_events.values()):
                breakdown = " (" + ", ".join(
                    f"{reason}: {count}"
                    for reason, count in sorted(stats.fallback_events.items())
                    if count
                ) + ")"
            lines.append(
                f"[WARN] {name}: {fallbacks} decode(s) degraded to the "
                f"dense reference path{breakdown}"
            )
        if stats is not None and stats.syndromes:
            lines.append(
                f"[INFO] {name} sparse engine: cluster-cache hit rate "
                f"{stats.hit_rate:.1%} ({stats.cache_hits}/{stats.cache_hits + stats.cache_misses}), "
                f"fallbacks {stats.total_fallbacks}/{stats.syndromes}"
            )
    lines += [
        "",
        f"[{'PASS' if report.astrea_matches_mwpm else 'FAIL'}] "
        f"Astrea == MWPM accuracy (Table 4): "
        f"{report.runs['Astrea'].errors} vs {mwpm.errors} errors",
        f"[{'PASS' if report.realtime_ok else 'FAIL'}] "
        "hardware decoders within the 1 us budget (Figure 9)",
        f"[{'PASS' if report.runs['AFS (UF)'].errors > mwpm.errors else 'FAIL'}] "
        "Union-Find trails MWPM (Figure 4)",
        f"[INFO] P(HW > 10) = {report.tail_probability:.2e} "
        "(Astrea's decline rate, Table 2/5)",
    ]
    report.lines = lines
    return report
