"""One-stop construction of everything a decoding experiment needs.

Building a decoder for a given ``(distance, p, rounds, basis)`` involves a
chain of substrates -- memory circuit, detector error model, decoding
graph, Global Weight Tables, neighbor structures -- that is expensive for
large distances (the d = 9 graph takes several seconds).
:class:`DecodingSetup` is the friendly facade over the staged pipeline
(:mod:`repro.pipeline`): each substrate is a lazy property that resolves
through the pipeline's bounded in-memory cache and (when configured) the
content-addressed on-disk artifact store, so tests, examples, benchmarks
and worker processes freely request the same configuration and only the
first ever request pays for a build.

Persistence (:meth:`DecodingSetup.save` / :meth:`DecodingSetup.load`) is
pickle-free: a saved setup is a zip bundle of per-stage artifacts in the
same checksummed format the artifact store uses, plus a JSON manifest
carrying the configuration and experiment fingerprint.  Loading validates
every layer -- manifest, fingerprint (recomputed from a rebuilt circuit),
per-stage checksums and format versions -- and rejects legacy pickle
files and foreign data with a clear error instead of executing them.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING

from ..graphs.weights import DEFAULT_LSB
from ..ioutil import atomic_write_bytes
from ..pipeline.artifacts import (
    STAGE_FORMAT_VERSIONS,
    ArtifactError,
    StageCache,
    artifact_store_for,
    decode_artifact,
    decode_stage,
    encode_artifact,
    encode_stage,
)
from ..pipeline.stages import (
    STAGES,
    DecodingPipeline,
    PipelineConfig,
    stage_enabled,
)

if TYPE_CHECKING:
    from ..circuits.memory import MemoryExperiment
    from ..graphs.decoding_graph import DecodingGraph, NeighborStructure
    from ..graphs.weights import GlobalWeightTable
    from ..sim.dem import DetectorErrorModel
    from ..sim.frame_program import FrameProgram

__all__ = ["DecodingSetup"]

#: Facade identity cache: ``build``/``from_config`` with ``cache=True``
#: return the same object for the same (config, store-root).
_CACHE: dict[tuple, "DecodingSetup"] = {}

#: On-disk format version of :meth:`DecodingSetup.save` bundles.
#: Version 1 was a pickle (no longer read); version 2 is the pickle-free
#: zip-of-artifacts bundle; version 3 records ``dense_weights`` in the
#: manifest config and carries only the stages that configuration builds
#: (the sparse_graph stage joined, the gwt stages became optional).
_BUNDLE_FORMAT = 3
_BUNDLE_KIND = "repro-decoding-setup"
_BUNDLE_MANIFEST = "bundle.json"


def _restore(config: PipelineConfig, store_root: str | None) -> "DecodingSetup":
    """Unpickle target: re-resolve the facade in the receiving process."""
    return DecodingSetup.from_config(config, store_root=store_root)


class DecodingSetup:
    """A lazily built decoding stack for one code/noise configuration.

    Substrates are properties resolved through a
    :class:`~repro.pipeline.stages.DecodingPipeline`: nothing is built
    until first accessed, repeated access returns the same object, and a
    configured artifact store turns cross-process rebuilds into loads.

    Attributes:
        pipeline: The underlying stage resolver.
    """

    def __init__(self, pipeline: DecodingPipeline) -> None:
        self.pipeline = pipeline
        self._store_root = (
            str(pipeline.store.root) if pipeline.store is not None else None
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_config(
        cls,
        config: PipelineConfig,
        *,
        store_root: str | Path | None = None,
        cache: bool = True,
    ) -> "DecodingSetup":
        """Build (or fetch) the facade for a pipeline configuration.

        Args:
            config: The decoding-stack configuration.
            store_root: Artifact-store root to warm-start from (None: the
                ``REPRO_ARTIFACT_DIR``-configured default store, if any).
            cache: Reuse the process-wide facade for this configuration.
                ``False`` builds a fresh stack on a private stage cache.

        Returns:
            The :class:`DecodingSetup`.
        """
        key = (config, None if store_root is None else str(store_root))
        if cache and key in _CACHE:
            return _CACHE[key]
        kwargs: dict = {}
        if store_root is not None:
            kwargs["store"] = artifact_store_for(store_root)
        if not cache:
            kwargs["memory_cache"] = StageCache()
        pipeline = DecodingPipeline(config, **kwargs)
        setup = cls(pipeline)
        if cache:
            _CACHE[key] = setup
        return setup

    @classmethod
    def build(
        cls,
        distance: int,
        physical_error_rate: float,
        *,
        rounds: int | None = None,
        basis: str = "z",
        lsb: float = DEFAULT_LSB,
        dense_weights: bool = True,
        cache: bool = True,
        store_root: str | Path | None = None,
    ) -> "DecodingSetup":
        """Build (or fetch from cache) the stack for one configuration.

        Args:
            distance: Odd code distance >= 3.
            physical_error_rate: The uniform circuit-level error rate ``p``.
            rounds: Syndrome rounds (defaults to ``distance``).
            basis: Memory basis, ``"z"`` or ``"x"``.
            lsb: Fixed-point step of the quantized GWT.
            dense_weights: ``False`` disables the all-pairs weight stages
                (O(E) stack, graph-local MWPM only) -- required for
                d >= 15, where the O(N^2) tables are infeasible.
            cache: Reuse a previously built identical configuration.
            store_root: Artifact-store root to warm-start from (None: the
                ``REPRO_ARTIFACT_DIR``-configured default, if any).

        Returns:
            The assembled :class:`DecodingSetup`.
        """
        config = PipelineConfig(
            distance=distance,
            physical_error_rate=physical_error_rate,
            rounds=rounds,
            basis=basis,
            lsb=lsb,
            dense_weights=dense_weights,
        )
        return cls.from_config(config, store_root=store_root, cache=cache)

    def __reduce__(self):
        # Pickle the recipe, not the arrays: the receiving process
        # re-resolves through its own caches/store (cheap if warm).
        return (_restore, (self.config, self._store_root))

    # ------------------------------------------------------------------
    # Lazy substrates
    # ------------------------------------------------------------------

    @property
    def config(self) -> PipelineConfig:
        """The configuration every substrate derives from."""
        return self.pipeline.config

    @property
    def fingerprint(self) -> str:
        """Experiment fingerprint addressing this stack's artifacts."""
        return self.pipeline.fingerprint

    @property
    def experiment(self) -> "MemoryExperiment":
        """The annotated memory-experiment circuit bundle."""
        return self.pipeline.get("circuit")

    @property
    def frame_program(self) -> "FrameProgram":
        """The circuit compiled for Pauli-frame sampling."""
        return self.pipeline.get("frame_program")

    @property
    def dem(self) -> "DetectorErrorModel":
        """Detector error model extracted from the circuit."""
        return self.pipeline.get("dem")

    @property
    def sparse_graph(self) -> "DecodingGraph":
        """Adjacency-only decoding graph (no all-pairs tables, O(E))."""
        return self.pipeline.get("sparse_graph")

    @property
    def graph(self) -> "DecodingGraph":
        """Decoding graph with all-pairs weights/parities."""
        return self.pipeline.get("graph")

    @property
    def gwt(self) -> "GlobalWeightTable":
        """Quantized Global Weight Table (8-bit, hardware-faithful)."""
        return self.pipeline.get("gwt")

    @property
    def ideal_gwt(self) -> "GlobalWeightTable":
        """Unquantized table (idealized MWPM configuration)."""
        return self.pipeline.get("ideal_gwt")

    @property
    def neighbor_structure(self) -> "NeighborStructure":
        """Sparse-engine neighbor structure over the ideal table."""
        return self.pipeline.get("neighbor_structure")

    @property
    def quantized_neighbor_structure(self) -> "NeighborStructure":
        """Sparse-engine neighbor structure over the quantized table."""
        return self.pipeline.get("quantized_neighbor_structure")

    @property
    def distance(self) -> int:
        """Code distance of this configuration."""
        return self.config.distance

    @property
    def physical_error_rate(self) -> float:
        """Uniform circuit-level error rate ``p``."""
        return self.config.physical_error_rate

    def warm(self) -> None:
        """Materialise every persistable stage (publishes to the store)."""
        self.pipeline.warm()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Persist the built stack to disk as a pickle-free bundle.

        Large-distance stacks take seconds to minutes to build (the d = 9
        graph alone is ~6 s); saving them lets benchmark sessions, worker
        pools and notebooks skip the rebuild.  The bundle is a zip of
        per-stage artifacts (same checksummed format as the artifact
        store) plus a JSON manifest; the write is atomic.

        Args:
            path: Destination file path.
        """
        fingerprint = self.fingerprint
        buffer = io.BytesIO()
        stages: dict[str, int] = {}
        with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
            for name, spec in STAGES.items():
                if not spec.persistable or not stage_enabled(self.config, name):
                    continue
                version = STAGE_FORMAT_VERSIONS[name]
                arrays, meta = encode_stage(name, self.pipeline.get(name))
                archive.writestr(
                    f"{name}.artifact",
                    encode_artifact(name, version, fingerprint, arrays, meta),
                )
                stages[name] = version
            config = self.config
            manifest = {
                "kind": _BUNDLE_KIND,
                "format": _BUNDLE_FORMAT,
                "fingerprint": fingerprint,
                "config": {
                    "distance": config.distance,
                    "physical_error_rate": config.physical_error_rate,
                    "rounds": config.rounds,
                    "basis": config.basis,
                    "lsb": config.lsb,
                    "dense_weights": config.dense_weights,
                },
                "stages": stages,
            }
            archive.writestr(
                _BUNDLE_MANIFEST, json.dumps(manifest, sort_keys=True)
            )
        atomic_write_bytes(Path(path), buffer.getvalue())

    @classmethod
    def load(cls, path) -> "DecodingSetup":
        """Load a stack previously written by :meth:`save`.

        Every layer is validated: the manifest, the fingerprint (checked
        against a circuit rebuilt from the manifest's configuration), and
        each stage artifact's checksum and format version.  Nothing in
        the file is ever executed -- legacy pickle saves are rejected,
        not loaded.

        Args:
            path: Source file path.

        Returns:
            The reconstructed :class:`DecodingSetup` (on a private stage
            cache, independent of the process-wide facade cache).

        Raises:
            ValueError: When the file was written by an incompatible
                version of this class or is not a setup bundle at all.
            ArtifactError: When the bundle is self-consistent but a stage
                artifact is corrupt or has a stale format version.
        """

        def incompatible() -> ValueError:
            return ValueError(f"{path} is not a compatible DecodingSetup file")

        try:
            archive = zipfile.ZipFile(path)
        except (zipfile.BadZipFile, OSError):
            raise incompatible() from None
        with archive:
            try:
                manifest = json.loads(archive.read(_BUNDLE_MANIFEST))
            except (KeyError, UnicodeDecodeError, json.JSONDecodeError):
                raise incompatible() from None
            if (
                not isinstance(manifest, dict)
                or manifest.get("kind") != _BUNDLE_KIND
                or manifest.get("format") != _BUNDLE_FORMAT
                or not isinstance(manifest.get("config"), dict)
                or not isinstance(manifest.get("stages"), dict)
            ):
                raise incompatible()
            raw = manifest["config"]
            try:
                config = PipelineConfig(
                    distance=int(raw["distance"]),
                    physical_error_rate=float(raw["physical_error_rate"]),
                    rounds=None if raw["rounds"] is None else int(raw["rounds"]),
                    basis=str(raw["basis"]),
                    lsb=float(raw["lsb"]),
                    dense_weights=bool(raw["dense_weights"]),
                )
            except (KeyError, TypeError, ValueError):
                raise incompatible() from None
            pipeline = DecodingPipeline(
                config, memory_cache=StageCache(), store=None
            )
            fingerprint = pipeline.fingerprint
            if manifest.get("fingerprint") != fingerprint:
                raise ArtifactError(
                    f"{path}: bundle fingerprint does not match its "
                    "declared configuration -- the file is corrupt or "
                    "was assembled from mismatched parts"
                )
            for name, spec in STAGES.items():
                if not spec.persistable or not stage_enabled(config, name):
                    continue
                member = f"{name}.artifact"
                try:
                    data = archive.read(member)
                except KeyError:
                    raise incompatible() from None
                arrays, meta = decode_artifact(
                    data,
                    stage=name,
                    version=STAGE_FORMAT_VERSIONS[name],
                    fingerprint=fingerprint,
                    source=f"{path}!{member}",
                )
                pipeline.memory_cache.put(
                    (config, name), decode_stage(name, arrays, meta)
                )
        return cls(pipeline)
