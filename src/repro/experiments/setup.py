"""One-stop construction of everything a decoding experiment needs.

Building a decoder for a given ``(distance, p, rounds, basis)`` involves a
chain of substrates -- memory circuit, detector error model, decoding
graph, Global Weight Table -- that is expensive for large distances (the
d = 9 graph takes several seconds).  :class:`DecodingSetup` bundles the
chain behind a single constructor and memoises it process-wide so that
tests, examples and benchmarks can freely request the same configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.memory import MemoryExperiment, build_memory_circuit
from ..circuits.noise import NoiseParams
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.weights import DEFAULT_LSB, GlobalWeightTable
from ..sim.dem import DetectorErrorModel, build_detector_error_model

__all__ = ["DecodingSetup"]

_CACHE: dict[tuple, "DecodingSetup"] = {}

#: On-disk format version of :meth:`DecodingSetup.save`.
_FORMAT_VERSION = 1


@dataclass
class DecodingSetup:
    """A fully built decoding stack for one code/noise configuration.

    Attributes:
        experiment: The annotated memory-experiment circuit bundle.
        dem: Detector error model extracted from the circuit.
        graph: Decoding graph with all-pairs weights/parities.
        gwt: Quantized Global Weight Table (8-bit, hardware-faithful).
        ideal_gwt: Unquantized table (idealized MWPM configuration).
    """

    experiment: MemoryExperiment
    dem: DetectorErrorModel
    graph: DecodingGraph
    gwt: GlobalWeightTable
    ideal_gwt: GlobalWeightTable

    @classmethod
    def build(
        cls,
        distance: int,
        physical_error_rate: float,
        *,
        rounds: int | None = None,
        basis: str = "z",
        lsb: float = DEFAULT_LSB,
        cache: bool = True,
    ) -> "DecodingSetup":
        """Build (or fetch from cache) the stack for one configuration.

        Args:
            distance: Odd code distance >= 3.
            physical_error_rate: The uniform circuit-level error rate ``p``.
            rounds: Syndrome rounds (defaults to ``distance``).
            basis: Memory basis, ``"z"`` or ``"x"``.
            lsb: Fixed-point step of the quantized GWT.
            cache: Reuse a previously built identical configuration.

        Returns:
            The assembled :class:`DecodingSetup`.
        """
        key = (distance, physical_error_rate, rounds, basis, lsb)
        if cache and key in _CACHE:
            return _CACHE[key]
        noise = NoiseParams.uniform(physical_error_rate)
        experiment = build_memory_circuit(
            distance, noise, rounds=rounds, basis=basis
        )
        dem = build_detector_error_model(experiment.circuit)
        graph = DecodingGraph.from_dem(dem)
        setup = cls(
            experiment=experiment,
            dem=dem,
            graph=graph,
            gwt=GlobalWeightTable.from_graph(graph, lsb=lsb),
            ideal_gwt=GlobalWeightTable.from_graph(graph, lsb=None),
        )
        if cache:
            _CACHE[key] = setup
        return setup

    @property
    def distance(self) -> int:
        """Code distance of this configuration."""
        return self.experiment.code.distance

    @property
    def physical_error_rate(self) -> float:
        """Uniform circuit-level error rate ``p``."""
        return self.experiment.noise.data_depolarization

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Persist the built stack to disk (pickle).

        Large-distance stacks take seconds to minutes to build (the d = 9
        graph alone is ~6 s); saving them lets benchmark sessions, worker
        pools and notebooks skip the rebuild.

        Args:
            path: Destination file path.
        """
        import pickle

        with open(path, "wb") as handle:
            pickle.dump({"format": _FORMAT_VERSION, "setup": self}, handle)

    @classmethod
    def load(cls, path) -> "DecodingSetup":
        """Load a stack previously written by :meth:`save`.

        Args:
            path: Source file path.

        Returns:
            The reconstructed :class:`DecodingSetup`.

        Raises:
            ValueError: When the file was written by an incompatible
                version of this class.
        """
        import pickle

        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT_VERSION:
            raise ValueError(f"{path} is not a compatible DecodingSetup file")
        setup = payload["setup"]
        if not isinstance(setup, cls):
            raise ValueError(f"{path} does not contain a DecodingSetup")
        return setup
