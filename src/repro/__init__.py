"""Reproduction of *Astrea: Accurate Quantum Error-Decoding via Practical
Minimum-Weight Perfect-Matching* (Vittal, Das, Qureshi -- ISCA 2023).

The package is organised bottom-up:

* :mod:`repro.circuits` -- stabilizer-circuit IR, the paper's circuit-level
  noise model and memory-experiment generator;
* :mod:`repro.codes` -- rotated surface code layouts;
* :mod:`repro.sim` -- Pauli-frame Monte-Carlo sampler, CHP tableau
  reference simulator and detector-error-model extraction (Stim stand-in);
* :mod:`repro.graphs` -- decoding graph and the Global Weight Table;
* :mod:`repro.matching` -- blossom (BlossomV stand-in), exhaustive and DP
  matchers, boundary folding;
* :mod:`repro.decoders` -- MWPM, **Astrea**, **Astrea-G**, Union-Find
  (AFS), Clique and LILLIPUT;
* :mod:`repro.pipeline` -- staged lazy construction of the decoding
  stack, a bounded stage cache and the content-addressed artifact store;
* :mod:`repro.experiments` -- memory-experiment harness, Hamming census,
  stratified LER estimation;
* :mod:`repro.analysis` / :mod:`repro.hw` -- analytical and hardware
  (latency, SRAM, bandwidth) models.

Quickstart::

    from repro import DecodingSetup, make_decoder, run_memory_experiment

    setup = DecodingSetup.build(distance=5, physical_error_rate=1e-3)
    decoder = make_decoder("astrea", setup)
    result = run_memory_experiment(setup.experiment, decoder, shots=10_000)
    print(result.logical_error_rate)
"""

from .analysis.render import render_lattice, render_series, render_syndrome_layer
from .backend import (
    ArrayBackend,
    available_backends,
    backend_info,
    from_device,
    get_backend,
    get_namespace,
    set_backend,
    to_device,
    use_backend,
)
from .analysis.scaling import ScalingFit, fit_error_scaling, suppression_factors
from .analysis.threshold import ThresholdEstimate, estimate_crossing, log_spaced
from .circuits.circuit import Circuit, Instruction
from .circuits.memory import MemoryExperiment, build_memory_circuit
from .circuits.noise import NoiseParams
from .circuits.stim_io import from_stim, to_stim
from .codes.repetition import RepetitionCode, build_repetition_memory_circuit
from .codes.rotated import RotatedSurfaceCode, Stabilizer
from .decoders.astrea import AstreaDecoder, HW6Decoder, exhaustive_search
from .decoders.astrea_g import AstreaGDecoder, PipelineSnapshot, weight_threshold_for
from .decoders.base import BOUNDARY, DecodeResult, Decoder
from .decoders.clique import CliqueDecoder
from .decoders.correction import PhysicalCorrection, matching_to_correction
from .decoders.lilliput import LilliputDecoder, lut_size_bytes
from .decoders.mwpm import MWPMDecoder
from .decoders.registry import (
    DecoderSpec,
    decoder_names,
    get_decoder_spec,
    make_decoder,
    register_decoder,
)
from .decoders.single_round import SingleRoundDecoder
from .decoders.union_find import UnionFindDecoder
from .decoders.verify import VerificationReport, verify_decode_result
from .decoders.windowed import SlidingWindowDecoder
from .experiments.hamming import HammingCensus, hamming_weight_census
from .experiments.importance import StratifiedEstimate, estimate_ler_stratified
from .experiments.memory import MemoryRunResult, run_memory_experiment
from .experiments.setup import DecodingSetup
from .experiments.stats import wilson_interval
from .experiments.sweep import SweepPoint, ler_vs_distance, ler_vs_physical_error
from .graphs.decoding_graph import DecodingGraph, GraphEdge, NeighborStructure
from .graphs.weights import GlobalWeightTable
from .matching.sparse import SparseMatchingEngine, SparseStats
from .hw.bandwidth import BandwidthModel
from .hw.compression import (
    CompressionReport,
    RunLengthCompressor,
    SparseIndexCompressor,
    compression_census,
)
from .hw.latency import FpgaTiming, astrea_total_cycles
from .hw.sram import AstreaGStorageModel
from .experiments.accuracy import PairedComparison, compare_decoders
from .experiments.io import load_sweep, save_sweep
from .experiments.parallel import run_memory_experiment_parallel
from .experiments.report import HeadlineReport, run_headline_report
from .pipeline import (
    ArtifactStore,
    DecoderHandle,
    DecodingPipeline,
    PipelineConfig,
    StageCache,
    experiment_fingerprint,
)
from .sim.dem import DetectorErrorModel, FaultMechanism, build_detector_error_model
from .sim.pauli_frame import PauliFrameSimulator, SampleResult
from .sim.reference import ReferenceSampler
from .sim.tableau import TableauSimulator, run_tableau_shot

__version__ = "1.0.0"

__all__ = [
    "ArrayBackend",
    "ArtifactStore",
    "AstreaDecoder",
    "AstreaGDecoder",
    "AstreaGStorageModel",
    "BandwidthModel",
    "BOUNDARY",
    "Circuit",
    "CliqueDecoder",
    "CompressionReport",
    "DecodeResult",
    "Decoder",
    "DecoderHandle",
    "DecoderSpec",
    "DecodingGraph",
    "DecodingPipeline",
    "DecodingSetup",
    "DetectorErrorModel",
    "FaultMechanism",
    "FpgaTiming",
    "GlobalWeightTable",
    "GraphEdge",
    "HammingCensus",
    "HeadlineReport",
    "HW6Decoder",
    "Instruction",
    "LilliputDecoder",
    "MemoryExperiment",
    "MemoryRunResult",
    "MWPMDecoder",
    "NeighborStructure",
    "NoiseParams",
    "PairedComparison",
    "PauliFrameSimulator",
    "PhysicalCorrection",
    "PipelineConfig",
    "PipelineSnapshot",
    "ReferenceSampler",
    "RepetitionCode",
    "RotatedSurfaceCode",
    "RunLengthCompressor",
    "SampleResult",
    "ScalingFit",
    "SingleRoundDecoder",
    "SlidingWindowDecoder",
    "SparseIndexCompressor",
    "SparseMatchingEngine",
    "SparseStats",
    "StageCache",
    "Stabilizer",
    "StratifiedEstimate",
    "SweepPoint",
    "TableauSimulator",
    "ThresholdEstimate",
    "UnionFindDecoder",
    "VerificationReport",
    "astrea_total_cycles",
    "available_backends",
    "backend_info",
    "build_detector_error_model",
    "build_memory_circuit",
    "build_repetition_memory_circuit",
    "compare_decoders",
    "compression_census",
    "decoder_names",
    "estimate_crossing",
    "estimate_ler_stratified",
    "exhaustive_search",
    "experiment_fingerprint",
    "fit_error_scaling",
    "from_device",
    "from_stim",
    "get_backend",
    "get_decoder_spec",
    "get_namespace",
    "hamming_weight_census",
    "ler_vs_distance",
    "ler_vs_physical_error",
    "load_sweep",
    "log_spaced",
    "lut_size_bytes",
    "make_decoder",
    "matching_to_correction",
    "register_decoder",
    "render_lattice",
    "render_series",
    "render_syndrome_layer",
    "run_headline_report",
    "run_memory_experiment",
    "run_memory_experiment_parallel",
    "run_tableau_shot",
    "save_sweep",
    "set_backend",
    "suppression_factors",
    "to_device",
    "to_stim",
    "use_backend",
    "verify_decode_result",
    "wilson_interval",
    "weight_threshold_for",
]
