"""Dependency-free telemetry primitives shared across subsystems.

The streaming service, the decoder cascade and the benchmarks all report
latency the same way: raw samples with exact percentile queries.  This
module holds that primitive (and nothing heavier) so decoder-layer code
can depend on it without importing the service stack and vice versa.
"""

from __future__ import annotations

__all__ = ["LatencyRecorder"]


class LatencyRecorder:
    """Per-request latency samples with percentile queries.

    Samples are kept raw (seconds); the workloads here are bounded (a
    load-generator run, a bench trial), so exact percentiles beat a
    sketch.  An optional cap discards the oldest samples beyond it to
    bound memory on very long runs.

    Args:
        max_samples: Retain at most this many most-recent samples
            (None keeps everything).
    """

    def __init__(self, max_samples: int | None = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be >= 1 (or None)")
        self._max = max_samples
        self._samples: list[float] = []
        self.count = 0

    def record(self, seconds: float) -> None:
        """Add one latency sample."""
        self.count += 1
        self._samples.append(float(seconds))
        if self._max is not None and len(self._samples) > self._max:
            del self._samples[: len(self._samples) - self._max]

    def record_many(self, seconds: float, count: int) -> None:
        """Add ``count`` identical samples (amortized batch latency)."""
        if count <= 0:
            return
        self.count += count
        self._samples.extend([float(seconds)] * count)
        if self._max is not None and len(self._samples) > self._max:
            del self._samples[: len(self._samples) - self._max]

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (0.0 when empty).

        Nearest-rank on the sorted retained samples: ``q=0.5`` is the
        median, ``q=0.99`` the p99.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def p50(self) -> float:
        """Median latency in seconds."""
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        """99th-percentile latency in seconds."""
        return self.percentile(0.99)

    @property
    def mean(self) -> float:
        """Mean retained latency in seconds."""
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def as_dict(self) -> dict[str, float]:
        """Summary percentiles as a JSON-ready dict (seconds)."""
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p99_s": self.p99,
        }
