"""The Global Weight Table (GWT) -- paper section 5.1.

Astrea's hardware keeps an on-chip ``l x l`` matrix of 8-bit weights, one
row/column per syndrome bit of the (per-basis) syndrome vector, where each
entry is the quantized ``-log10`` probability of the corresponding pair of
syndrome bits being matched and the *diagonal* holds each bit's weight to
the boundary.  When a syndrome arrives, the weights of its non-zero bits are
gathered into the Active Weight Array (Astrea) or Local Weight Table
(Astrea-G).

This module reproduces that data structure in software, including the 8-bit
fixed-point quantization.  An unquantized (float) table doubles as the
"idealized MWPM" configuration the paper compares against.

The GWT also explains the storage rows of paper Table 6: with one byte per
entry the table occupies exactly ``l^2`` bytes -- 36 KB for d=7
(l = 192) and ~156 KB for d=9 (l = 400).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .decoding_graph import DecodingGraph

__all__ = ["GlobalWeightTable"]

#: Default fixed-point resolution: 2 fractional bits (LSB = 0.25), giving an
#: 8-bit dynamic range of [0, 63.75] -- wide enough that only pairs far too
#: improbable to ever join an MWPM saturate.
DEFAULT_LSB = 0.25


@dataclass
class GlobalWeightTable:
    """Pairwise matching weights between syndrome bits.

    Attributes:
        weights: ``(l, l)`` float array of effective pair weights; diagonal
            entries are boundary weights.  When ``lsb`` is not None these
            values are already quantized (integer multiples of ``lsb``
            saturating at ``255 * lsb``).
        parities: ``(l, l)`` bool array; entry ``[i, j]`` tells whether the
            most likely error chain matching ``i`` with ``j`` flips the
            logical observable (diagonal: chain to the boundary).
        lsb: Fixed-point step of the 8-bit quantization, or None for an
            unquantized (idealized) table.
    """

    weights: np.ndarray
    parities: np.ndarray
    lsb: float | None = None

    @classmethod
    def from_graph(
        cls, graph: DecodingGraph, *, lsb: float | None = DEFAULT_LSB
    ) -> "GlobalWeightTable":
        """Build a GWT from a decoding graph.

        Args:
            graph: The precomputed decoding graph.
            lsb: Fixed-point step for 8-bit quantization; ``None`` keeps
                full float precision (idealized MWPM).

        Returns:
            The populated table.
        """
        weights = graph.pair_weights.copy()
        if lsb is not None:
            codes = np.clip(np.round(weights / lsb), 0, 255)
            weights = codes * lsb
        return cls(weights=weights, parities=graph.pair_parities.copy(), lsb=lsb)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def length(self) -> int:
        """Syndrome-vector length ``l`` (table dimension)."""
        return self.weights.shape[0]

    def weight(self, i: int, j: int) -> float:
        """Weight of matching syndrome bits i and j (i == j: boundary)."""
        return float(self.weights[i, j])

    def parity(self, i: int, j: int) -> bool:
        """Whether the (i, j) match flips the logical observable."""
        return bool(self.parities[i, j])

    def active_weights(self, active: list[int]) -> np.ndarray:
        """Gather the weight submatrix for the non-zero syndrome bits.

        This models the GWT -> Active Weight Array transfer that costs
        ``HW + 1`` cycles in Astrea's hardware (section 5.4).

        Args:
            active: Indices of non-zero syndrome bits.

        Returns:
            ``(w, w)`` array of pair weights (diagonal: boundary weights).
        """
        idx = np.asarray(active, dtype=np.intp)
        return self.weights[np.ix_(idx, idx)]

    def active_parities(self, active: list[int]) -> np.ndarray:
        """Gather the parity submatrix for the non-zero syndrome bits."""
        idx = np.asarray(active, dtype=np.intp)
        return self.parities[np.ix_(idx, idx)]

    def storage_bytes(self) -> int:
        """On-chip SRAM footprint: one byte per entry (paper Table 6)."""
        return self.length * self.length

    def max_representable_weight(self) -> float:
        """Largest weight the 8-bit encoding can hold (inf if unquantized)."""
        if self.lsb is None:
            return float("inf")
        return 255 * self.lsb
