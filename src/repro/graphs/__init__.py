"""Decoding graphs and the Global Weight Table (paper section 5.1)."""

from .decoding_graph import BOUNDARY, DecodingGraph, GraphEdge
from .weights import GlobalWeightTable

__all__ = ["BOUNDARY", "DecodingGraph", "GlobalWeightTable", "GraphEdge"]
