"""The decoding graph: detectors, boundary, weights and logical parities.

Surface-code decoding reduces to minimum-weight perfect matching on a graph
whose vertices are detectors and whose edges are graph-like fault mechanisms
(paper section 2.2).  This module builds that graph from a detector error
model and computes, via all-pairs shortest paths, the two quantities every
decoder in this repository consumes:

* the *pair weight* ``W[i, j]``: the weight of the most probable error chain
  flipping detectors ``i`` and ``j`` (sum of ``-log10`` edge probabilities
  along the shortest path), and
* the *pair parity* ``P[i, j]``: whether that chain flips the logical
  observable.

A single virtual *boundary* vertex absorbs single-detector mechanisms.  The
boundary participates in the shortest-path computation, so the weight of a
detector pair whose cheapest explanation routes through the boundary (two
independent chains, one per detector) is folded into ``W[i, j]``
automatically.  Following the paper's Global Weight Table convention
(section 5.1), boundary weights are reported on the diagonal: ``W[i, i]`` is
the weight of matching detector ``i`` to the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..sim.dem import DetectorErrorModel

__all__ = ["GraphEdge", "DecodingGraph", "NeighborStructure", "BOUNDARY"]

#: Sentinel vertex index for the virtual boundary in :class:`GraphEdge`.
BOUNDARY = -1


@dataclass
class NeighborStructure:
    """Precomputed neighbor/radius structures of a pair-weight matrix.

    Classifies every detector pair of a Global-Weight-Table-style matrix
    (pair weights off-diagonal, boundary weights -- the *matching radii* --
    on the diagonal) by how its pair weight ``W[a, b]`` compares against
    the through-boundary route ``W[a, a] + W[b, b]``:

    * **close** (``W[a, b] < W[a, a] + W[b, b]``): matching ``a`` with
      ``b`` directly is strictly cheaper than sending both to the
      boundary, so the pair can interact in a minimum-weight matching and
      must share a cluster.  Pairs whose weights tie but whose recorded
      path parity disagrees with the two boundary chains are also close
      (separating them could flip a tied prediction).
    * **separable** (``W[a, b] == W[a, a] + W[b, b]`` with consistent
      parity): the cheapest joint explanation is two independent boundary
      chains, so matchings on either side never need to look across.
    * **unsafe** (``W[a, b] > W[a, a] + W[b, b]``): the matrix locally
      violates the boundary-folding bound (an artifact of quantizing
      weights after the shortest-path computation); no decomposition
      proof applies and exact decoders must fall back to a dense solve.

    On an unquantized table the bound holds by the triangle inequality and
    *unsafe* pairs arise only from float round-off, hence the
    ``tolerance`` knob (compare :attr:`GlobalWeightTable.lsb`).

    Attributes:
        radii: ``(n,)`` matching radius of each detector (its boundary
            weight, the matrix diagonal).
        close: ``(n, n)`` bool, the must-share-a-cluster adjacency
            (diagonal False).
        separable: ``(n, n)`` bool, provably independent pairs.
        unsafe: ``(n, n)`` bool, pairs violating the folding bound.
        neighbors: Per-detector arrays of close neighbors, sorted by
            ascending pair weight (the k-nearest-neighbor lists; ``k``
            capped by ``max_neighbors`` when given).
    """

    radii: np.ndarray
    close: np.ndarray
    separable: np.ndarray
    unsafe: np.ndarray
    neighbors: list[np.ndarray]

    @classmethod
    def from_weights(
        cls,
        weights: np.ndarray,
        parities: np.ndarray,
        *,
        tolerance: float = 0.0,
        max_neighbors: int | None = None,
    ) -> "NeighborStructure":
        """Classify every pair of a pair-weight matrix.

        Args:
            weights: ``(n, n)`` pair-weight matrix, boundary weights on
                the diagonal (e.g. ``GlobalWeightTable.weights`` or
                ``DecodingGraph.pair_weights``).
            parities: ``(n, n)`` bool matrix of logical path parities
                aligned with ``weights``.
            tolerance: Absolute slack when testing ``W[a, b]`` against
                ``W[a, a] + W[b, b]``; use 0 for quantized tables (whose
                arithmetic is exact) and a tiny positive value for float
                tables to absorb shortest-path round-off.
            max_neighbors: Cap on the per-detector neighbor list length
                (``None`` keeps every close neighbor).  Only truncates the
                convenience lists; the ``close`` matrix is never capped.

        Returns:
            The populated :class:`NeighborStructure`.
        """
        weights = np.asarray(weights, dtype=np.float64)
        n = weights.shape[0]
        radii = np.diag(weights).copy()
        diff = weights - (radii[:, None] + radii[None, :])
        diag_parity = np.diag(parities).copy()
        consistent = parities == (diag_parity[:, None] ^ diag_parity[None, :])
        tied = np.abs(diff) <= tolerance
        close = (diff < -tolerance) | (tied & ~consistent)
        separable = tied & consistent
        unsafe = diff > tolerance
        np.fill_diagonal(close, False)
        np.fill_diagonal(separable, False)
        np.fill_diagonal(unsafe, False)
        neighbors: list[np.ndarray] = []
        for i in range(n):
            nbrs = np.nonzero(close[i])[0]
            order = np.argsort(weights[i, nbrs], kind="stable")
            nbrs = nbrs[order]
            if max_neighbors is not None:
                nbrs = nbrs[:max_neighbors]
            neighbors.append(nbrs)
        return cls(
            radii=radii,
            close=close,
            separable=separable,
            unsafe=unsafe,
            neighbors=neighbors,
        )

    @property
    def num_detectors(self) -> int:
        """Number of detectors the structure covers."""
        return self.radii.shape[0]

    def degree(self, i: int) -> int:
        """Number of close neighbors of detector ``i`` (kNN list length)."""
        return len(self.neighbors[i])


@dataclass(frozen=True)
class GraphEdge:
    """One edge of the decoding graph.

    Attributes:
        u: First detector index.
        v: Second detector index, or :data:`BOUNDARY`.
        probability: Merged probability of the underlying fault mechanisms.
        weight: ``-log10(probability)``.
        flips_observable: Whether the fault flips logical observable 0.
    """

    u: int
    v: int
    probability: float
    weight: float
    flips_observable: bool


@dataclass
class DecodingGraph:
    """Weighted matching graph with precomputed all-pairs data.

    Build with :meth:`from_dem`.  Attributes of interest:

    Attributes:
        num_detectors: Number of detector vertices.
        edges: The primitive (local) graph edges.
        pair_weights: ``(n, n)`` float array; ``[i, j]`` is the shortest-path
            weight between detectors, ``[i, i]`` the weight to the boundary.
        pair_parities: ``(n, n)`` bool array; parity of logical-observable
            flips along the corresponding shortest path.
    """

    num_detectors: int
    edges: list[GraphEdge]
    pair_weights: np.ndarray
    pair_parities: np.ndarray
    #: ``(n+1, n+1)`` predecessor matrix of the all-pairs Dijkstra (row =
    #: source, column = destination; the boundary is dense index ``n``).
    #: Enables shortest-path reconstruction for physical corrections.
    predecessors: np.ndarray = field(default_factory=lambda: np.zeros((0, 0), int))
    #: Per-detector adjacency: detector -> list of incident edges. Used by
    #: local decoders (Union-Find, Clique) that walk primitive edges.
    adjacency: dict[int, list[GraphEdge]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_dem(
        cls, dem: DetectorErrorModel, *, all_pairs: bool = True
    ) -> "DecodingGraph":
        """Build the decoding graph of a detector error model.

        Mechanisms flipping more than two detectors are rejected: the
        surface-code memory circuits in this repository always produce
        graph-like models (asserted in the test suite).

        Args:
            dem: The detector error model.
            all_pairs: Precompute the ``(n, n)`` all-pairs shortest-path
                weight/parity tables (the Global Weight Table substrate).
                ``False`` skips them entirely -- O(E) construction and
                memory instead of O(N^2) -- leaving a graph suitable for
                adjacency-walking decoders and the sparse-blossom engine;
                all-pairs queries then raise :class:`ValueError`.

        Returns:
            The :class:`DecodingGraph` (fully precomputed when
            ``all_pairs`` is set).
        """
        non_graphlike = dem.non_graphlike_mechanisms()
        if non_graphlike:
            raise ValueError(
                f"{len(non_graphlike)} mechanisms flip more than two "
                "detectors; the decoding graph requires a graph-like model"
            )
        edges = _merge_edges(dem)
        n = dem.num_detectors
        if all_pairs:
            weights, parities, predecessors = _all_pairs(edges, n)
        else:
            weights = np.zeros((0, 0), dtype=np.float64)
            parities = np.zeros((0, 0), dtype=bool)
            predecessors = np.zeros((0, 0), dtype=np.int32)
        graph = cls(
            num_detectors=n,
            edges=edges,
            pair_weights=weights,
            pair_parities=parities,
            predecessors=predecessors,
        )
        for edge in edges:
            graph.adjacency.setdefault(edge.u, []).append(edge)
            if edge.v != BOUNDARY:
                graph.adjacency.setdefault(edge.v, []).append(edge)
        return graph

    @property
    def has_all_pairs(self) -> bool:
        """Whether the all-pairs weight/parity tables were materialised."""
        return self.pair_weights.shape[0] == self.num_detectors

    def _require_all_pairs(self, what: str) -> None:
        if not self.has_all_pairs:
            raise ValueError(
                f"{what} needs the all-pairs tables, but this graph was "
                "built with all_pairs=False (sparse/adjacency-only); "
                "rebuild with DecodingGraph.from_dem(dem) or use the "
                "sparse-blossom engine, which works on adjacency alone"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def weight(self, i: int, j: int) -> float:
        """Shortest-path weight between detectors i and j (i == j: boundary)."""
        self._require_all_pairs("weight()")
        return float(self.pair_weights[i, j])

    def parity(self, i: int, j: int) -> bool:
        """Logical parity of the shortest path between i and j."""
        self._require_all_pairs("parity()")
        return bool(self.pair_parities[i, j])

    def boundary_weight(self, i: int) -> float:
        """Shortest-path weight from detector ``i`` to the boundary."""
        self._require_all_pairs("boundary_weight()")
        return float(self.pair_weights[i, i])

    def neighbors(self, i: int) -> list[GraphEdge]:
        """Primitive edges incident on detector ``i``."""
        return self.adjacency.get(i, [])

    def neighbor_structure(
        self, *, tolerance: float = 1e-9, max_neighbors: int | None = None
    ) -> NeighborStructure:
        """Close/separable/unsafe classification of this graph's pairs.

        Cached per ``(tolerance, max_neighbors)``; the default tolerance
        absorbs the float round-off of the all-pairs Dijkstra (the exact
        bound ``W[i, j] <= W[i, i] + W[j, j]`` holds mathematically because
        the boundary participates in the shortest-path computation).
        """
        self._require_all_pairs("neighbor_structure()")
        cache = getattr(self, "_neighbor_structures", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_neighbor_structures", cache)
        key = (tolerance, max_neighbors)
        if key not in cache:
            cache[key] = NeighborStructure.from_weights(
                self.pair_weights,
                self.pair_parities,
                tolerance=tolerance,
                max_neighbors=max_neighbors,
            )
        return cache[key]

    def shortest_path(self, u: int, v: int) -> list[tuple[int, int]]:
        """Vertex pairs of the shortest path between two vertices.

        Args:
            u: Source detector index (or :data:`BOUNDARY`).
            v: Destination detector index (or :data:`BOUNDARY`), distinct
                from ``u``.

        Returns:
            Consecutive ``(a, b)`` vertex pairs along the path, each
            corresponding to one primitive edge.  :data:`BOUNDARY` may
            appear mid-path: two defects whose cheapest joint explanation
            is a separate chain from each to the boundary route through
            the boundary vertex.
        """
        self._require_all_pairs("shortest_path()")
        boundary = self.num_detectors
        src = boundary if u == BOUNDARY else u
        dst = boundary if v == BOUNDARY else v
        if src == dst:
            raise ValueError("shortest_path requires distinct endpoints")
        hops: list[int] = [dst]
        cursor = dst
        while cursor != src:
            cursor = int(self.predecessors[src, cursor])
            if cursor < 0:
                raise ValueError(f"no path between {u} and {v}")
            hops.append(cursor)
        hops.reverse()
        return [
            (
                BOUNDARY if a == boundary else a,
                BOUNDARY if b == boundary else b,
            )
            for a, b in zip(hops, hops[1:])
        ]

    # ------------------------------------------------------------------
    # Graph-local accessors (no all-pairs data required)
    # ------------------------------------------------------------------

    def csr_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSR adjacency over the ``n + 1`` matching vertices.

        The virtual boundary occupies dense index ``n``.  Parallel edges
        between the same endpoints are collapsed to the cheaper one -- the
        same canonicalization :func:`_all_pairs` applies -- so graph-local
        shortest paths reproduce the all-pairs tables exactly.

        Returns:
            ``(indptr, indices, weights, parities)``: for vertex ``x`` the
            incident half-edges are ``indices[indptr[x]:indptr[x + 1]]``
            with matching edge weights and observable-flip parities.
        """
        cached = getattr(self, "_csr_adjacency", None)
        if cached is not None:
            return cached
        n = self.num_detectors
        boundary = n
        best: dict[tuple[int, int], tuple[float, bool]] = {}
        for e in self.edges:
            u = e.u
            v = boundary if e.v == BOUNDARY else e.v
            key = (min(u, v), max(u, v))
            current = best.get(key)
            if current is None or e.weight < current[0]:
                best[key] = (e.weight, e.flips_observable)
        m = len(best)
        src = np.empty(2 * m, dtype=np.int64)
        dst = np.empty(2 * m, dtype=np.int64)
        wts = np.empty(2 * m, dtype=np.float64)
        par = np.empty(2 * m, dtype=bool)
        for k, ((u, v), (w, flips)) in enumerate(sorted(best.items())):
            src[2 * k], dst[2 * k] = u, v
            src[2 * k + 1], dst[2 * k + 1] = v, u
            wts[2 * k] = wts[2 * k + 1] = w
            par[2 * k] = par[2 * k + 1] = flips
        order = np.lexsort((dst, src))
        src, dst, wts, par = src[order], dst[order], wts[order], par[order]
        indptr = np.zeros(n + 2, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n + 1), out=indptr[1:])
        cached = (indptr, dst, wts, par)
        object.__setattr__(self, "_csr_adjacency", cached)
        return cached

    def boundary_distances(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-detector matching radii via one Dijkstra from the boundary.

        Returns:
            ``(radii, parities)``: ``radii[i]`` is the shortest-path weight
            from detector ``i`` to the virtual boundary (``inf`` when no
            boundary path exists) and ``parities[i]`` the logical parity
            accumulated along that path.  Equals the diagonal of the ideal
            all-pairs tables without ever materialising them.
        """
        cached = getattr(self, "_boundary_distances", None)
        if cached is not None:
            return cached
        import heapq

        indptr, indices, weights, parities = self.csr_adjacency()
        n = self.num_detectors
        dist = np.full(n + 1, np.inf, dtype=np.float64)
        par = np.zeros(n + 1, dtype=bool)
        done = np.zeros(n + 1, dtype=bool)
        dist[n] = 0.0
        heap: list[tuple[float, int, bool]] = [(0.0, n, False)]
        while heap:
            d, x, p = heapq.heappop(heap)
            if done[x]:
                continue
            done[x] = True
            par[x] = p
            for k in range(indptr[x], indptr[x + 1]):
                y = int(indices[k])
                nd = d + weights[k]
                if not done[y] and nd < dist[y]:
                    dist[y] = nd
                    heapq.heappush(heap, (nd, y, p ^ bool(parities[k])))
        cached = (dist[:n].copy(), par[:n].copy())
        object.__setattr__(self, "_boundary_distances", cached)
        return cached


def _merge_edges(dem: DetectorErrorModel) -> list[GraphEdge]:
    """Merge mechanisms into one edge per (endpoints, observable parity).

    When both parities exist between the same endpoints (rare), only the
    lower-weight edge is kept: the other is strictly dominated for
    shortest-path purposes.
    """
    by_key: dict[tuple[int, int, bool], float] = {}
    for mech in dem.graphlike_mechanisms():
        if not mech.detectors:
            continue  # pure logical flips are invisible to matching
        if len(mech.detectors) == 2:
            u, v = mech.detectors
        else:
            u, v = mech.detectors[0], BOUNDARY
        flips = 0 in mech.observables
        key = (u, v, flips)
        p_old = by_key.get(key, 0.0)
        p_new = mech.probability
        by_key[key] = p_old * (1.0 - p_new) + p_new * (1.0 - p_old)
    best: dict[tuple[int, int], GraphEdge] = {}
    for (u, v, flips), p in by_key.items():
        weight = -float(np.log10(p))
        current = best.get((u, v))
        if current is None or weight < current.weight:
            best[(u, v)] = GraphEdge(
                u=u, v=v, probability=p, weight=weight, flips_observable=flips
            )
    return sorted(best.values(), key=lambda e: (e.u, e.v))


def _all_pairs(
    edges: list[GraphEdge], num_detectors: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All-pairs shortest-path weights and parities (boundary on diagonal)."""
    n = num_detectors
    boundary = n  # internal dense index of the virtual boundary vertex
    rows, cols, vals = [], [], []
    edge_parity: dict[tuple[int, int], bool] = {}
    edge_weight: dict[tuple[int, int], float] = {}
    for e in edges:
        u = e.u
        v = boundary if e.v == BOUNDARY else e.v
        key = (min(u, v), max(u, v))
        # Keep the cheaper of parallel edges for path computations.
        if key in edge_weight and edge_weight[key] <= e.weight:
            continue
        edge_weight[key] = e.weight
        edge_parity[key] = e.flips_observable
    for (u, v), w in edge_weight.items():
        rows.extend((u, v))
        cols.extend((v, u))
        vals.extend((w, w))
    matrix = csr_matrix((vals, (rows, cols)), shape=(n + 1, n + 1))
    dist, predecessors = dijkstra(
        matrix, directed=False, return_predecessors=True
    )
    weights = np.empty((n, n), dtype=np.float64)
    parities = np.zeros((n, n), dtype=bool)
    full_parity = np.zeros((n + 1, n + 1), dtype=bool)
    order = np.argsort(dist, axis=1)
    for src in range(n + 1):
        pred_row = predecessors[src]
        parity_row = full_parity[src]
        for j in order[src]:
            p = pred_row[j]
            if p < 0:  # source itself or unreachable
                continue
            key = (min(int(p), int(j)), max(int(p), int(j)))
            parity_row[j] = parity_row[p] ^ edge_parity[key]
    weights[:, :] = dist[:n, :n]
    np.fill_diagonal(weights, dist[:n, boundary])
    parities[:, :] = full_parity[:n, :n]
    np.fill_diagonal(parities, full_parity[:n, boundary])
    return weights, parities, predecessors.astype(np.int32)
