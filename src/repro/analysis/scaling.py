"""Logical-error-rate scaling analysis.

Two standard QEC summary statistics tie the reproduction's sweeps back to
the theory the paper leans on (sections 1 and 9):

* the **error-suppression factor** ``Lambda = LER(d) / LER(d + 2)``:
  below threshold, each distance step suppresses errors by a roughly
  constant factor (Google's scaling metric);
* the **scaling-law fit** ``LER ~ A * (p / p_th)^((d + 1) / 2)``: on a
  log-log plot, LER-vs-p curves of different distances are straight lines
  whose slopes grow as ``(d + 1)/2`` and which intersect at the threshold
  ``p_th``.

Both operate on :class:`~repro.experiments.sweep.SweepPoint` lists so they
compose directly with the sweep harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..experiments.sweep import SweepPoint

__all__ = ["suppression_factors", "ScalingFit", "fit_error_scaling"]


def suppression_factors(points: Sequence[SweepPoint]) -> dict[int, float]:
    """Per-distance-step error-suppression factors ``Lambda``.

    Args:
        points: Sweep points at a shared physical error rate, one per
            distance (as produced by
            :func:`~repro.experiments.sweep.ler_vs_distance`).

    Returns:
        Map from distance ``d`` to ``LER(d) / LER(d + 2)`` for each
        consecutive distance pair present; pairs whose larger-distance LER
        is zero (unresolved) are omitted.
    """
    by_distance = {p.distance: p.logical_error_rate for p in points}
    factors: dict[int, float] = {}
    for d in sorted(by_distance):
        if d + 2 in by_distance and by_distance[d + 2] > 0:
            factors[d] = by_distance[d] / by_distance[d + 2]
    return factors


@dataclass(frozen=True)
class ScalingFit:
    """Least-squares fit of ``log LER = log A + slope * log p``.

    Attributes:
        slope: Fitted log-log slope; scaling theory predicts ``(d + 1)/2``
            for a distance-``d`` code well below threshold.
        intercept: Fitted ``log10 A``.
        points_used: Number of (non-zero-LER) points in the fit.
    """

    slope: float
    intercept: float
    points_used: int

    def predict(self, p: float) -> float:
        """LER predicted by the fitted power law at rate ``p``."""
        return 10 ** (self.intercept + self.slope * math.log10(p))


def fit_error_scaling(points: Sequence[SweepPoint]) -> ScalingFit:
    """Fit the log-log LER-vs-p power law of one distance's sweep.

    Args:
        points: Sweep points of a single distance (varying ``p``); points
            with zero observed LER are skipped.

    Returns:
        The least-squares :class:`ScalingFit`.

    Raises:
        ValueError: With fewer than two resolvable points.
    """
    xs = []
    ys = []
    for point in points:
        if point.logical_error_rate > 0:
            xs.append(math.log10(point.physical_error_rate))
            ys.append(math.log10(point.logical_error_rate))
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two non-zero-LER points to fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        raise ValueError("all points share one physical error rate")
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = cov / var_x
    intercept = mean_y - slope * mean_x
    return ScalingFit(slope=slope, intercept=intercept, points_used=n)
