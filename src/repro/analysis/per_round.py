"""Per-round logical error rates.

Memory experiments of different lengths are compared through the *logical
error rate per round* epsilon, defined by the decay of the logical fidelity
over ``r`` rounds:

    1 - 2 * LER(r) = (1 - 2 * epsilon)^r

Each round flips the logical state with probability epsilon; flips compose
by XOR, giving the closed form above.  The paper's requirement that a
distance-``d`` decoder consume ``d`` rounds (section 2.2) shows up in this
metric: decoding with shorter windows inflates epsilon because measurement
errors at the window edges are mistaken for data errors.
"""

from __future__ import annotations

__all__ = ["logical_error_per_round", "logical_error_after_rounds"]


def logical_error_per_round(ler: float, rounds: int) -> float:
    """Invert the fidelity-decay law: per-round rate from a block LER.

    Args:
        ler: Logical error rate of the whole ``rounds``-round experiment
            (must be below 0.5, the depolarized fixed point).
        rounds: Number of rounds the experiment ran.

    Returns:
        The per-round logical error rate epsilon.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if not 0 <= ler < 0.5:
        raise ValueError("ler must be in [0, 0.5)")
    if ler == 0:
        return 0.0
    return 0.5 * (1.0 - (1.0 - 2.0 * ler) ** (1.0 / rounds))


def logical_error_after_rounds(epsilon: float, rounds: int) -> float:
    """Forward fidelity-decay law: block LER from a per-round rate.

    Args:
        epsilon: Per-round logical error rate (in [0, 0.5]).
        rounds: Number of rounds.

    Returns:
        The logical error rate after ``rounds`` rounds.
    """
    if rounds < 0:
        raise ValueError("rounds must be >= 0")
    if not 0 <= epsilon <= 0.5:
        raise ValueError("epsilon must be in [0, 0.5]")
    return 0.5 * (1.0 - (1.0 - 2.0 * epsilon) ** rounds)
