"""Analytical models: Hamming bounds, combinatorics, scaling, rendering."""

from .combinatorics import (
    count_perfect_matchings,
    hw6_accesses,
    matchings_with_degree_cap,
    search_space_reduction,
)
from .hamming_model import (
    hamming_tail_upper_bound,
    hamming_weight_upper_bound,
    syndrome_sites,
)
from .per_round import logical_error_after_rounds, logical_error_per_round
from .render import render_lattice, render_series, render_syndrome_layer
from .scaling import ScalingFit, fit_error_scaling, suppression_factors
from .threshold import ThresholdEstimate, estimate_crossing, log_spaced

__all__ = [
    "ScalingFit",
    "ThresholdEstimate",
    "count_perfect_matchings",
    "estimate_crossing",
    "fit_error_scaling",
    "hamming_tail_upper_bound",
    "hamming_weight_upper_bound",
    "hw6_accesses",
    "log_spaced",
    "logical_error_after_rounds",
    "logical_error_per_round",
    "matchings_with_degree_cap",
    "render_lattice",
    "render_series",
    "render_syndrome_layer",
    "search_space_reduction",
    "suppression_factors",
    "syndrome_sites",
]
