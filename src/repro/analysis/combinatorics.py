"""Search-space combinatorics (paper sections 4.3, 5.7 and 6.1).

Quantifies Astrea's feasibility window and Astrea-G's filtering payoff:

* the number of perfect matchings of a weight-``w`` syndrome (Eq. 2) --
  945 at ``w = 10`` (searchable), 6.5e8 at ``w = 20`` (hopeless);
* the HW6Decoder access counts behind Astrea's latency table;
* the search-space reduction from dropping high-weight pairs, as
  illustrated by Figure 10(b)'s 2^27 -> 2^8-class shrinkage.
"""

from __future__ import annotations

from ..matching.brute_force import count_perfect_matchings

__all__ = [
    "count_perfect_matchings",
    "hw6_accesses",
    "matchings_with_degree_cap",
    "search_space_reduction",
]


def hw6_accesses(hamming_weight: int) -> int:
    """HW6Decoder evaluations Astrea performs for a given Hamming weight.

    One access evaluates the 15 matchings of six nodes; weights 7-8
    pre-match one pair (7 accesses) and weights 9-10 two pairs (63).
    """
    if hamming_weight < 0:
        raise ValueError("hamming_weight must be non-negative")
    if hamming_weight <= 2:
        return 0
    if hamming_weight <= 6:
        return 1
    if hamming_weight <= 8:
        return 7
    if hamming_weight <= 10:
        return 63
    raise ValueError("Astrea supports Hamming weights up to 10")


def matchings_with_degree_cap(w: int, cap: int) -> int:
    """Upper bound on matchings when each bit keeps at most ``cap`` partners.

    After Astrea-G's weight filtering each syndrome bit retains only a few
    candidate partners (Figure 10(b)); a depth-first pairing then explores
    at most ``cap^(w/2)`` matchings instead of ``(w-1)!!``.

    Args:
        w: Even Hamming weight.
        cap: Maximum surviving partners per syndrome bit.

    Returns:
        The (loose) upper bound ``min(cap, w-1) ^ (w/2)``.
    """
    if w < 0 or w % 2:
        raise ValueError("w must be a non-negative even integer")
    if cap < 1:
        raise ValueError("cap must be positive")
    return min(cap, max(w - 1, 1)) ** (w // 2)


def search_space_reduction(w: int, cap: int) -> float:
    """Factor by which filtering shrinks the matching search space.

    Paper Figure 10(b) reports a 953x reduction for a weight-16 syndrome
    whose filtered table keeps ~42% of pairs.

    Args:
        w: Even Hamming weight.
        cap: Surviving partners per bit after filtering.

    Returns:
        ``(w-1)!! / cap^(w/2)`` (at least 1).
    """
    full = count_perfect_matchings(w)
    filtered = matchings_with_degree_cap(w, cap)
    return max(1.0, full / filtered)
