"""Analytical Hamming-weight upper bound (paper section 4.2.1, Eq. 1).

Each syndrome-extraction "site" (one parity qubit, one round) can flip two
syndrome bits through five error sources totalling probability ``8p``:
X/Y depolarizing on the four adjacent data qubits (2p), a measurement error
(p), a reset error (p), X/Y depolarizing from the four CNOTs on the data
side (2p) and on the parity side (2p).  Modelling the number of such events
as ``E ~ Binomial(D, 8p)`` with ``D = (d+1)(d^2-1)/2`` syndrome bits and
the Hamming weight as ``H = 2E`` gives the worst-case (upper-bound)
distribution of Eq. 1 -- every error is assumed to flip two bits, ignoring
chain formation and cancellation, so the real distribution (Figure 6) sits
below this bound while following the same exponential decay.
"""

from __future__ import annotations

import math

__all__ = [
    "syndrome_sites",
    "hamming_weight_upper_bound",
    "hamming_tail_upper_bound",
]


def syndrome_sites(distance: int) -> int:
    """``D = (d+1)(d^2-1)/2``: per-basis syndrome bits of a d-round memory run."""
    if distance < 3 or distance % 2 == 0:
        raise ValueError("distance must be an odd integer >= 3")
    return (distance + 1) * (distance * distance - 1) // 2


def hamming_weight_upper_bound(distance: int, p: float, weight: int) -> float:
    """Equation 1: worst-case probability of an exact Hamming weight.

    Args:
        distance: Code distance.
        p: Physical error rate.
        weight: Hamming weight ``h`` (odd weights have probability zero in
            this model because every event flips exactly two bits).

    Returns:
        ``P(H = weight)`` under the binomial upper-bound model.
    """
    if weight < 0:
        raise ValueError("weight must be non-negative")
    if weight % 2:
        return 0.0
    d_sites = syndrome_sites(distance)
    events = weight // 2
    if events > d_sites:
        return 0.0
    q = 8.0 * p
    if q >= 1.0:
        raise ValueError("8p must be below 1 for the binomial model")
    return (
        math.comb(d_sites, events)
        * q**events
        * (1.0 - q) ** (d_sites - events)
    )


def hamming_tail_upper_bound(distance: int, p: float, above: int) -> float:
    """Worst-case probability of a Hamming weight strictly above ``above``."""
    d_sites = syndrome_sites(distance)
    total = 0.0
    for weight in range(0, above + 1):
        total += hamming_weight_upper_bound(distance, p, weight)
    # Everything not at or below `above` (clip for float round-off).
    _ = d_sites
    return min(1.0, max(0.0, 1.0 - total))
