"""ASCII rendering of surface-code lattices and syndromes.

No plotting dependency ships with this reproduction, so the examples and
debugging sessions use text renderings instead:

* :func:`render_lattice` draws the rotated surface code -- data qubits,
  X/Z plaquettes, logical operator supports;
* :func:`render_syndrome_layer` overlays one detector layer's fired
  checks on the lattice;
* :func:`render_series` draws a log-scale column chart of (label, value)
  pairs, used for Hamming-weight histograms and LER comparisons.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..codes.rotated import RotatedSurfaceCode

__all__ = ["render_lattice", "render_syndrome_layer", "render_series"]


def _grid(code: RotatedSurfaceCode) -> list[list[str]]:
    side = 2 * code.distance + 1
    return [[" " for _ in range(side)] for _ in range(side)]


def render_lattice(code: RotatedSurfaceCode) -> str:
    """Draw the code lattice.

    Data qubits print as ``o`` (``Z``/``X`` where the logical Z / logical X
    operator is supported, ``*`` at their intersection); X plaquettes as
    ``x`` and Z plaquettes as ``z``.

    Args:
        code: The code to draw.

    Returns:
        A multi-line string, one lattice site per character cell.
    """
    grid = _grid(code)
    logical_z = set(code.logical_z)
    logical_x = set(code.logical_x)
    for qubit in code.data_qubits:
        x, y = code.coords[qubit]
        in_z = qubit in logical_z
        in_x = qubit in logical_x
        grid[y][x] = "*" if (in_z and in_x) else "Z" if in_z else "X" if in_x else "o"
    for stab in code.stabilizers:
        x, y = code.coords[stab.ancilla]
        grid[y][x] = stab.kind.lower()
    return "\n".join("".join(row).rstrip() for row in grid)


def render_syndrome_layer(
    code: RotatedSurfaceCode,
    fired: Sequence[tuple[int, int]],
) -> str:
    """Draw one detector layer with fired checks highlighted as ``!``.

    Args:
        code: The code lattice.
        fired: ``(x, y)`` coordinates of the fired parity checks.

    Returns:
        A multi-line string.
    """
    grid = _grid(code)
    for qubit in code.data_qubits:
        x, y = code.coords[qubit]
        grid[y][x] = "."
    for stab in code.stabilizers:
        x, y = code.coords[stab.ancilla]
        grid[y][x] = stab.kind.lower()
    for x, y in fired:
        if not (0 <= y < len(grid) and 0 <= x < len(grid[0])):
            raise ValueError(f"fired check ({x}, {y}) outside the lattice")
        grid[y][x] = "!"
    return "\n".join("".join(row).rstrip() for row in grid)


def render_series(
    entries: Sequence[tuple[str, float]],
    *,
    width: int = 50,
    log: bool = True,
) -> str:
    """Draw a horizontal bar chart of labelled non-negative values.

    Args:
        entries: ``(label, value)`` pairs; zero values render as empty bars.
        width: Maximum bar width in characters.
        log: Scale bars by log10 (suits probabilities spanning decades).

    Returns:
        A multi-line string, one bar per entry.
    """
    if width < 1:
        raise ValueError("width must be positive")
    positive = [v for _l, v in entries if v > 0]
    if not positive:
        return "\n".join(f"{label:>12} |" for label, _v in entries)
    if log:
        low = math.log10(min(positive))
        high = math.log10(max(positive))
        span = max(high - low, 1e-12)

        def bar(value: float) -> int:
            if value <= 0:
                return 0
            return 1 + round((math.log10(value) - low) / span * (width - 1))

    else:
        high = max(positive)

        def bar(value: float) -> int:
            return round(value / high * width)

    lines = []
    for label, value in entries:
        lines.append(f"{label:>12} |{'#' * bar(value)} {value:.3e}" if value > 0
                     else f"{label:>12} |")
    return "\n".join(lines)
