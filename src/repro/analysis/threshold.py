"""Threshold (crossing-point) estimation for error-correcting codes.

Below the code threshold, increasing the distance suppresses the logical
error rate; above it, larger codes are *worse*.  The crossing point of the
LER curves of two distances therefore estimates the threshold -- the
quantity that anchors the paper's premise that near-term devices operate
at ``p`` "up to an order of magnitude below threshold" (section 3.2).

:func:`estimate_crossing` measures both curves on a log-spaced grid and
interpolates the crossing in log-log space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..experiments.sweep import DecoderFactory, ler_vs_physical_error

__all__ = ["ThresholdEstimate", "estimate_crossing", "log_spaced"]


def log_spaced(low: float, high: float, points: int) -> list[float]:
    """``points`` log-uniformly spaced values covering ``[low, high]``."""
    if points < 2:
        raise ValueError("points must be >= 2")
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    ratio = high / low
    return [low * ratio ** (k / (points - 1)) for k in range(points)]


@dataclass(frozen=True)
class ThresholdEstimate:
    """Outcome of a two-distance crossing search.

    Attributes:
        crossing: Estimated threshold ``p`` (None if no crossing in range).
        grid: The physical error rates evaluated.
        ler_small: LER of the smaller code at each grid point.
        ler_large: LER of the larger code at each grid point.
    """

    crossing: float | None
    grid: tuple[float, ...]
    ler_small: tuple[float, ...]
    ler_large: tuple[float, ...]

    @property
    def found(self) -> bool:
        """Whether a crossing was bracketed by the grid."""
        return self.crossing is not None


def estimate_crossing(
    distance_small: int,
    distance_large: int,
    decoder_factory: DecoderFactory,
    *,
    grid: Sequence[float],
    shots: int,
    seed: int = 0,
) -> ThresholdEstimate:
    """Estimate the threshold as the crossing of two LER-vs-p curves.

    Args:
        distance_small: The smaller code distance.
        distance_large: The larger code distance (must exceed the smaller).
        decoder_factory: Builds the decoder under test for each setup.
        grid: Physical error rates to evaluate (ascending).
        shots: Monte-Carlo trials per point and distance.
        seed: Base PRNG seed.

    Returns:
        A :class:`ThresholdEstimate`; ``crossing`` is interpolated between
        the first adjacent grid pair where the curves change order, or
        None when the larger code wins (or loses) everywhere.
    """
    if distance_large <= distance_small:
        raise ValueError("distance_large must exceed distance_small")
    grid = list(grid)
    if grid != sorted(grid):
        raise ValueError("grid must be ascending")
    small = ler_vs_physical_error(
        distance_small, grid, decoder_factory, shots, seed=seed
    )
    large = ler_vs_physical_error(
        distance_large, grid, decoder_factory, shots, seed=seed + 1000
    )
    ler_small = [pt.logical_error_rate for pt in small]
    ler_large = [pt.logical_error_rate for pt in large]
    crossing = None
    for k in range(len(grid) - 1):
        below = ler_large[k] < ler_small[k]
        above = ler_large[k + 1] >= ler_small[k + 1]
        if below and above and min(
            ler_small[k], ler_large[k], ler_small[k + 1], ler_large[k + 1]
        ) > 0:
            # Interpolate the zero of log(ler_large/ler_small) in log p.
            gap_lo = math.log(ler_large[k] / ler_small[k])
            gap_hi = math.log(ler_large[k + 1] / ler_small[k + 1])
            if gap_hi == gap_lo:
                fraction = 0.5
            else:
                fraction = -gap_lo / (gap_hi - gap_lo)
            log_p = math.log(grid[k]) + fraction * math.log(
                grid[k + 1] / grid[k]
            )
            crossing = math.exp(log_p)
            break
    return ThresholdEstimate(
        crossing=crossing,
        grid=tuple(grid),
        ler_small=tuple(ler_small),
        ler_large=tuple(ler_large),
    )
