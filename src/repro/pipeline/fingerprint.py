"""Decoder-independent identity hashing of memory experiments.

Every stage of the decoding stack -- detector error model, decoding
graph, weight tables, neighbor structure -- is a deterministic function
of the noisy circuit, so one fingerprint addresses them all: the
campaign checkpoints (:mod:`repro.experiments.resilient`) use it to
reject resumes under a different circuit, and the artifact store
(:mod:`repro.pipeline.artifacts`) uses it as the content address of
every cached stage.

This module is import-cycle-free on purpose (it depends only on
:mod:`hashlib`), so both the experiment layer and the pipeline layer can
share the implementation.
"""

from __future__ import annotations

import hashlib

__all__ = ["experiment_fingerprint"]


def experiment_fingerprint(experiment) -> str:
    """Decoder-independent identity hash of a memory experiment.

    The sampled census is a deterministic function of the noisy circuit
    (plus the block seeds), so the fingerprint hashes the circuit
    instruction stream together with the build parameters that produced
    it -- distance, basis, rounds, the five noise rates and any per-qubit
    noise scaling.  Two experiments agree on the fingerprint iff they
    sample identically; checkpoints record it so a resume at a different
    physical error rate, basis or noise model is rejected instead of
    silently reusing censuses sampled under the wrong circuit, and the
    artifact store keys every derived stage by it.

    Args:
        experiment: The :class:`~repro.circuits.memory.MemoryExperiment`
            bundle.

    Returns:
        A SHA-256 hex digest.
    """
    noise = experiment.noise
    hasher = hashlib.sha256()
    hasher.update(
        (
            f"d={experiment.code.distance};basis={experiment.basis};"
            f"rounds={experiment.rounds};"
            f"noise={noise.data_depolarization!r},"
            f"{noise.gate2_depolarization!r},"
            f"{noise.gate1_depolarization!r},"
            f"{noise.measurement_flip!r},{noise.reset_flip!r};"
            f"scale={sorted(experiment.qubit_noise_scale.items())!r}\n"
        ).encode("utf-8")
    )
    for inst in experiment.circuit.instructions:
        hasher.update(
            f"{inst.name}:{','.join(map(str, inst.targets))}:"
            f"{inst.arg!r}\n".encode("utf-8")
        )
    return hasher.hexdigest()
