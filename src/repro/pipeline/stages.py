"""The staged decoding-stack pipeline: declared dependencies, lazy builds.

The decoding stack is a chain of pure derivations from one configuration::

    circuit ──> frame_program            (sampling)
       │
       └─> dem ─┬─> graph ─┬─> gwt ──────> quantized_neighbor_structure
                │          └─> ideal_gwt ─> neighbor_structure
                └─> sparse_graph         (adjacency only, O(E))

Configurations with ``dense_weights=False`` disable the all-pairs branch
entirely (``graph``/``gwt``/``ideal_gwt`` and both neighbor structures):
requesting a disabled stage raises instead of silently resolving a stale
store artifact, and decoders route through ``sparse_graph`` -- the
graph-local sparse-blossom path that never materialises O(N^2) weights,
which is what makes d >= 15 construction feasible.

:class:`DecodingPipeline` materialises exactly the stages a caller asks
for (a latency bench touching only ``gwt`` never pays for the all-pairs
Dijkstra twice; a sampler never builds the graph at all), resolving each
stage through three layers in order:

1. the bounded in-memory :class:`~repro.pipeline.artifacts.StageCache`
   (shared process-wide by default),
2. the on-disk :class:`~repro.pipeline.artifacts.ArtifactStore`, keyed by
   ``experiment_fingerprint() + stage + format version`` (when a store is
   configured), and
3. a fresh build from the stage's declared dependencies -- which is then
   published back to both layers.

A corrupt or stale-version artifact is discarded and rebuilt, never
trusted; the circuit and frame-program stages are rebuilt from the
configuration instead of persisted (they are cheap and self-verifying via
the fingerprint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..circuits.noise import NoiseParams
from ..graphs.weights import DEFAULT_LSB
from .artifacts import (
    ArtifactError,
    ArtifactStore,
    STAGE_FORMAT_VERSIONS,
    StageCache,
    default_artifact_store,
    stage_cache,
)
from .fingerprint import experiment_fingerprint

__all__ = [
    "DENSE_WEIGHT_STAGES",
    "DecodingPipeline",
    "PipelineConfig",
    "STAGES",
    "StageSpec",
    "stage_enabled",
]


@dataclass(frozen=True)
class PipelineConfig:
    """Everything that identifies one decoding-stack configuration.

    Hashable (cache key) and picklable (worker warm-start handle).

    Attributes:
        distance: Odd code distance >= 3.
        physical_error_rate: Uniform circuit-level error rate ``p``.
        rounds: Syndrome rounds (None: ``distance``).
        basis: Memory basis, ``"z"`` or ``"x"``.
        lsb: Fixed-point step of the quantized GWT.
        dense_weights: Whether the all-pairs branch (``graph``, ``gwt``,
            ``ideal_gwt``, neighbor structures) is available.  ``False``
            keeps the stack O(E): only ``sparse_graph`` exists and MWPM
            decodes graph-locally -- required for d >= 15, where the
            O(N^2) tables are infeasible.
    """

    distance: int
    physical_error_rate: float
    rounds: int | None = None
    basis: str = "z"
    lsb: float = DEFAULT_LSB
    dense_weights: bool = True

    def noise(self) -> NoiseParams:
        """The uniform noise model of this configuration."""
        return NoiseParams.uniform(self.physical_error_rate)


@dataclass(frozen=True)
class StageSpec:
    """One stage of the pipeline.

    Attributes:
        name: Stage name (artifact key and :meth:`DecodingPipeline.get`
            handle).
        dependencies: Stages built (or fetched) before this one.
        build: Builds the stage object from the pipeline (which resolves
            the dependencies).
        persistable: Whether the stage round-trips through the artifact
            store (has a codec in ``STAGE_CODECS``).
    """

    name: str
    dependencies: tuple[str, ...]
    build: Callable[["DecodingPipeline"], Any]
    persistable: bool = True


def _build_circuit(pipeline: "DecodingPipeline"):
    from ..circuits.memory import build_memory_circuit

    config = pipeline.config
    return build_memory_circuit(
        config.distance,
        config.noise(),
        rounds=config.rounds,
        basis=config.basis,
    )


def _build_frame_program(pipeline: "DecodingPipeline"):
    from ..sim.frame_program import compile_frame_program

    return compile_frame_program(pipeline.get("circuit").circuit)


def _build_dem(pipeline: "DecodingPipeline"):
    from ..sim.dem import build_detector_error_model

    return build_detector_error_model(pipeline.get("circuit").circuit)


def _build_graph(pipeline: "DecodingPipeline"):
    from ..graphs.decoding_graph import DecodingGraph

    return DecodingGraph.from_dem(pipeline.get("dem"))


def _build_sparse_graph(pipeline: "DecodingPipeline"):
    from ..graphs.decoding_graph import DecodingGraph

    return DecodingGraph.from_dem(pipeline.get("dem"), all_pairs=False)


def _build_gwt(pipeline: "DecodingPipeline"):
    from ..graphs.weights import GlobalWeightTable

    return GlobalWeightTable.from_graph(
        pipeline.get("graph"), lsb=pipeline.config.lsb
    )


def _build_ideal_gwt(pipeline: "DecodingPipeline"):
    from ..graphs.weights import GlobalWeightTable

    return GlobalWeightTable.from_graph(pipeline.get("graph"), lsb=None)


def _structure_from(gwt_stage: str) -> Callable[["DecodingPipeline"], Any]:
    def build(pipeline: "DecodingPipeline"):
        from ..graphs.decoding_graph import NeighborStructure
        from ..matching.sparse import default_tolerance

        gwt = pipeline.get(gwt_stage)
        return NeighborStructure.from_weights(
            gwt.weights, gwt.parities, tolerance=default_tolerance(gwt)
        )

    return build


#: The pipeline's stage graph, in topological order.
STAGES: dict[str, StageSpec] = {
    spec.name: spec
    for spec in (
        StageSpec("circuit", (), _build_circuit, persistable=False),
        StageSpec(
            "frame_program", ("circuit",), _build_frame_program, persistable=False
        ),
        StageSpec("dem", ("circuit",), _build_dem),
        StageSpec("sparse_graph", ("dem",), _build_sparse_graph),
        StageSpec("graph", ("dem",), _build_graph),
        StageSpec("gwt", ("graph",), _build_gwt),
        StageSpec("ideal_gwt", ("graph",), _build_ideal_gwt),
        StageSpec(
            "neighbor_structure",
            ("ideal_gwt",),
            _structure_from("ideal_gwt"),
        ),
        StageSpec(
            "quantized_neighbor_structure",
            ("gwt",),
            _structure_from("gwt"),
        ),
    )
}


#: Stages that exist only when the configuration builds dense (all-pairs)
#: weights; disabled -- never built, never resolved from a store -- when
#: ``PipelineConfig.dense_weights`` is False.
DENSE_WEIGHT_STAGES = frozenset(
    {
        "graph",
        "gwt",
        "ideal_gwt",
        "neighbor_structure",
        "quantized_neighbor_structure",
    }
)


def stage_enabled(config: PipelineConfig, stage: str) -> bool:
    """Whether ``stage`` exists under ``config`` (dense-weights gating)."""
    return (
        getattr(config, "dense_weights", True)
        or stage not in DENSE_WEIGHT_STAGES
    )


#: Sentinel: "use the REPRO_ARTIFACT_DIR-configured default store".
USE_DEFAULT_STORE = object()


class DecodingPipeline:
    """Lazy, cached resolver of the decoding-stack stage graph.

    Args:
        config: The configuration every stage derives from.
        memory_cache: In-memory stage cache; defaults to the shared
            process-global :func:`~repro.pipeline.artifacts.stage_cache`.
            Pass a private :class:`StageCache` for isolation.
        store: On-disk artifact store.  Defaults to the
            ``REPRO_ARTIFACT_DIR``-configured store (absent when the
            variable is unset); pass ``None`` explicitly for a
            memory-only pipeline regardless of the environment.
    """

    def __init__(
        self,
        config: PipelineConfig,
        *,
        memory_cache: StageCache | None = None,
        store: ArtifactStore | None = USE_DEFAULT_STORE,  # type: ignore[assignment]
    ) -> None:
        self.config = config
        self.memory_cache = (
            memory_cache if memory_cache is not None else stage_cache()
        )
        self.store = (
            default_artifact_store() if store is USE_DEFAULT_STORE else store
        )
        self._fingerprint: str | None = None

    @property
    def fingerprint(self) -> str:
        """The experiment fingerprint addressing this config's artifacts."""
        if self._fingerprint is None:
            self._fingerprint = experiment_fingerprint(self.get("circuit"))
        return self._fingerprint

    def _key(self, stage: str) -> tuple:
        return (self.config, stage)

    def is_built(self, stage: str) -> bool:
        """Whether ``stage`` is already in the memory cache (no build)."""
        return self._key(stage) in self.memory_cache

    def built_stages(self) -> tuple[str, ...]:
        """Stages currently materialised in the memory cache, in order."""
        return tuple(name for name in STAGES if self.is_built(name))

    def get(self, stage: str) -> Any:
        """Resolve one stage: memory cache, then store, then build.

        A freshly built persistable stage is published to the store (when
        one is configured); a corrupt or stale stored artifact is
        discarded and rebuilt rather than trusted.

        Args:
            stage: One of :data:`STAGES`.

        Returns:
            The stage object.
        """
        try:
            spec = STAGES[stage]
        except KeyError:
            raise KeyError(
                f"unknown pipeline stage {stage!r}; "
                f"stages are {tuple(STAGES)}"
            ) from None
        # Disabled stages are rejected before the store is even consulted:
        # a dense_weights=False config must never resolve a stale gwt blob
        # that an earlier (dense) run of the same circuit persisted.
        if not stage_enabled(self.config, stage):
            raise ValueError(
                f"stage {stage!r} is disabled: this pipeline was "
                "configured with dense_weights=False (no all-pairs weight "
                "tables); use the 'sparse_graph' stage and the graph-local "
                "MWPM path, or rebuild with dense_weights=True"
            )
        key = self._key(stage)
        missing = object()
        value = self.memory_cache.get(key, missing)
        if value is not missing:
            return value
        value = missing
        if spec.persistable and self.store is not None:
            fingerprint = self.fingerprint
            try:
                loaded = self.store.load(fingerprint, stage)
            except ArtifactError:
                self.store.discard(fingerprint, stage)
                loaded = None
            if loaded is not None:
                value = loaded
        if value is missing:
            for dependency in spec.dependencies:
                self.get(dependency)
            value = spec.build(self)
            if spec.persistable and self.store is not None:
                self.store.save(self.fingerprint, stage, value)
        self.memory_cache.put(key, value)
        return value

    def warm(self, stages: tuple[str, ...] | list[str] | None = None) -> None:
        """Materialise the given stages (default: every enabled persistable
        one; disabled dense-weight stages are skipped, not an error)."""
        names = (
            tuple(stages)
            if stages is not None
            else tuple(
                s
                for s in STAGES
                if STAGES[s].persistable and stage_enabled(self.config, s)
            )
        )
        for name in names:
            self.get(name)

    def stage_version(self, stage: str) -> int:
        """Current artifact format version of a persistable stage."""
        return STAGE_FORMAT_VERSIONS[stage]
