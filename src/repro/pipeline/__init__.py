"""Staged decoding-stack construction: lazy builds, caching, persistence.

The pipeline layer separates *compile once* from *decode many*:

* :mod:`repro.pipeline.stages` -- the stage graph (circuit, frame
  program, DEM, decoding graph, weight tables, neighbor structures) with
  declared dependencies and lazy resolution;
* :mod:`repro.pipeline.artifacts` -- a bounded in-memory LRU plus a
  content-addressed, checksummed on-disk artifact store keyed by
  ``experiment_fingerprint() + stage + format version``;
* :mod:`repro.pipeline.fingerprint` -- the shared experiment identity
  hash;
* :mod:`repro.pipeline.handle` -- picklable decoder recipes that let
  worker processes warm-start from the store instead of recompiling.

``DecodingSetup`` (:mod:`repro.experiments.setup`) remains the friendly
facade over this layer.
"""

from .artifacts import (
    ArtifactError,
    ArtifactStore,
    CacheStats,
    STAGE_FORMAT_VERSIONS,
    StageCache,
    StoreStats,
    artifact_store_for,
    default_artifact_store,
    set_stage_cache_capacity,
    stage_cache,
)
from .fingerprint import experiment_fingerprint
from .handle import DecoderHandle
from .stages import STAGES, DecodingPipeline, PipelineConfig, StageSpec

__all__ = [
    "ArtifactError",
    "ArtifactStore",
    "CacheStats",
    "DecoderHandle",
    "DecodingPipeline",
    "PipelineConfig",
    "STAGES",
    "STAGE_FORMAT_VERSIONS",
    "StageCache",
    "StageSpec",
    "StoreStats",
    "artifact_store_for",
    "default_artifact_store",
    "experiment_fingerprint",
    "set_stage_cache_capacity",
    "stage_cache",
]
