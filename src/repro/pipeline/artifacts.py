"""Content-addressed persistence and bounded caching of pipeline stages.

Every derived stage of the decoding stack (DEM, decoding graph, weight
tables, neighbor structures) is a pure function of the memory circuit, so
one content address -- the :func:`~repro.pipeline.fingerprint.
experiment_fingerprint` of that circuit -- keys them all.  This module
provides the two caching layers of :class:`~repro.pipeline.stages.
DecodingPipeline`:

* :class:`StageCache` -- a bounded in-memory LRU with hit/miss/evict
  counters (replacing the old unbounded process-global ``_CACHE`` of
  ``experiments/setup.py``; counters surface via ``repro info``);
* :class:`ArtifactStore` -- an on-disk store addressed by
  ``fingerprint / stage`` whose files carry a JSON header (layout magic,
  stage name, per-stage format version, fingerprint, SHA-256 blob
  checksum) followed by an ``npz`` payload of plain arrays.  Nothing is
  pickled: loading validates the header and checksum and decodes with
  ``allow_pickle=False``, so a corrupted, foreign or stale-version file
  raises :class:`ArtifactError` (a :class:`~repro.ioutil.
  CorruptResultError`) instead of executing arbitrary bytes.

The per-stage ``STAGE_FORMAT_VERSIONS`` bump whenever a stage's encoded
layout (or the semantics of what it caches) changes; a version mismatch
is indistinguishable from corruption on purpose -- callers discard and
rebuild.
"""

from __future__ import annotations

import io
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Hashable

import numpy as np

from ..graphs.decoding_graph import DecodingGraph, GraphEdge, NeighborStructure
from ..graphs.weights import GlobalWeightTable
from ..ioutil import CorruptResultError, atomic_write_bytes, sha256_bytes
from ..sim.dem import DetectorErrorModel, FaultMechanism

__all__ = [
    "ArtifactError",
    "ArtifactStore",
    "CacheStats",
    "STAGE_FORMAT_VERSIONS",
    "StageCache",
    "StoreStats",
    "decode_artifact",
    "decode_stage",
    "default_artifact_store",
    "encode_artifact",
    "encode_stage",
    "set_stage_cache_capacity",
    "stage_cache",
]

#: Magic tag of the artifact header line.
ARTIFACT_MAGIC = "repro-artifact"

#: Version of the header + npz container layout itself.
ARTIFACT_LAYOUT_VERSION = 1

#: Per-stage format versions.  Bump a stage's version whenever its encoded
#: array layout changes; stored artifacts from older versions are then
#: discarded and rebuilt instead of misread.  The CI artifact cache is
#: keyed by this mapping, so a bump also invalidates cross-job caches.
STAGE_FORMAT_VERSIONS: dict[str, int] = {
    "dem": 1,
    # v2: graph blobs additionally persist the canonical CSR adjacency and
    # the boundary-Dijkstra radii/parities, so decoders that only need
    # graph-local structure skip both recomputations on a warm store.
    "sparse_graph": 2,
    "graph": 2,
    # v2: the gwt stages became optional (PipelineConfig.dense_weights);
    # v1 blobs predate the gating and are rejected rather than silently
    # resolved for configurations that no longer build them.
    "gwt": 2,
    "ideal_gwt": 2,
    "neighbor_structure": 1,
    "quantized_neighbor_structure": 1,
    "routing_table": 1,
}

#: Environment variable naming a default on-disk artifact store root.
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"

#: Default capacity of the process-global stage cache, in stage objects
#: (one built configuration occupies at most ~8 entries).
DEFAULT_STAGE_CACHE_CAPACITY = 256


class ArtifactError(CorruptResultError):
    """A stored pipeline artifact failed validation.

    Raised on garbled headers, checksum mismatches, stage/fingerprint
    mismatches and stale format versions.  Subclasses
    :class:`~repro.ioutil.CorruptResultError` (hence :class:`ValueError`).
    """


# ----------------------------------------------------------------------
# Bounded in-memory stage cache
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of a :class:`StageCache`.

    Attributes:
        hits: Lookups served from the cache.
        misses: Lookups that found nothing.
        evictions: Entries dropped to respect the capacity bound.
        size: Entries currently held.
        capacity: Maximum entries held at once.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int


class StageCache:
    """Bounded LRU cache of built pipeline stages.

    Replaces the unbounded process-global construction cache: a sweep
    over many ``(distance, p)`` points now recycles the oldest stage
    objects instead of growing without bound, and the counters make the
    cache's behaviour observable (``repro info``).

    Args:
        capacity: Maximum entries held; least-recently-used entries are
            evicted beyond it.
    """

    def __init__(self, capacity: int = DEFAULT_STAGE_CACHE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value for ``key`` (and mark it recently used)."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/evict counters."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )


_GLOBAL_STAGE_CACHE = StageCache()


def stage_cache() -> StageCache:
    """The process-global stage cache shared by ``DecodingSetup.build``."""
    return _GLOBAL_STAGE_CACHE


def set_stage_cache_capacity(capacity: int) -> None:
    """Rebound the process-global stage cache (drops current entries)."""
    global _GLOBAL_STAGE_CACHE
    _GLOBAL_STAGE_CACHE = StageCache(capacity)


# ----------------------------------------------------------------------
# Stage object <-> plain-array codecs
# ----------------------------------------------------------------------


def _encode_dem(dem: DetectorErrorModel) -> tuple[dict, dict]:
    mechanisms = dem.mechanisms
    det_offsets = np.zeros(len(mechanisms) + 1, dtype=np.int64)
    obs_offsets = np.zeros(len(mechanisms) + 1, dtype=np.int64)
    det_flat: list[int] = []
    obs_flat: list[int] = []
    probabilities = np.empty(len(mechanisms), dtype=np.float64)
    for i, mech in enumerate(mechanisms):
        probabilities[i] = mech.probability
        det_flat.extend(mech.detectors)
        obs_flat.extend(mech.observables)
        det_offsets[i + 1] = len(det_flat)
        obs_offsets[i + 1] = len(obs_flat)
    arrays = {
        "probabilities": probabilities,
        "det_flat": np.asarray(det_flat, dtype=np.int32),
        "det_offsets": det_offsets,
        "obs_flat": np.asarray(obs_flat, dtype=np.int32),
        "obs_offsets": obs_offsets,
    }
    meta = {
        "num_detectors": int(dem.num_detectors),
        "num_observables": int(dem.num_observables),
    }
    return arrays, meta


def _decode_dem(arrays: dict, meta: dict) -> DetectorErrorModel:
    probabilities = arrays["probabilities"]
    det_flat = arrays["det_flat"]
    det_offsets = arrays["det_offsets"]
    obs_flat = arrays["obs_flat"]
    obs_offsets = arrays["obs_offsets"]
    mechanisms = [
        FaultMechanism(
            probability=float(probabilities[i]),
            detectors=tuple(
                int(d) for d in det_flat[det_offsets[i] : det_offsets[i + 1]]
            ),
            observables=tuple(
                int(o) for o in obs_flat[obs_offsets[i] : obs_offsets[i + 1]]
            ),
        )
        for i in range(len(probabilities))
    ]
    return DetectorErrorModel(
        num_detectors=int(meta["num_detectors"]),
        num_observables=int(meta["num_observables"]),
        mechanisms=mechanisms,
    )


def _encode_graph(graph: DecodingGraph) -> tuple[dict, dict]:
    edges = graph.edges
    arrays = {
        "edge_u": np.asarray([e.u for e in edges], dtype=np.int32),
        "edge_v": np.asarray([e.v for e in edges], dtype=np.int32),
        "edge_p": np.asarray([e.probability for e in edges], dtype=np.float64),
        "edge_w": np.asarray([e.weight for e in edges], dtype=np.float64),
        "edge_flips": np.asarray(
            [e.flips_observable for e in edges], dtype=bool
        ),
        "pair_weights": graph.pair_weights,
        "pair_parities": graph.pair_parities,
        "predecessors": graph.predecessors,
    }
    # Persist the graph-local derived structure (format v2): the collapsed
    # CSR adjacency and the boundary-Dijkstra tables are deterministic
    # functions of the edge list, so storing them trades a few O(E) arrays
    # for skipping their construction entirely on load.
    indptr, indices, weights, parities = graph.csr_adjacency()
    radii, bparities = graph.boundary_distances()
    arrays.update(
        csr_indptr=indptr,
        csr_indices=indices,
        csr_weights=weights,
        csr_parities=parities,
        boundary_radii=radii,
        boundary_parities=bparities,
    )
    return arrays, {"num_detectors": int(graph.num_detectors)}


def _decode_graph(arrays: dict, meta: dict) -> DecodingGraph:
    from ..graphs.decoding_graph import BOUNDARY  # local: avoid name shadowing

    edges = [
        GraphEdge(
            u=int(u),
            v=int(v),
            probability=float(p),
            weight=float(w),
            flips_observable=bool(f),
        )
        for u, v, p, w, f in zip(
            arrays["edge_u"],
            arrays["edge_v"],
            arrays["edge_p"],
            arrays["edge_w"],
            arrays["edge_flips"],
        )
    ]
    graph = DecodingGraph(
        num_detectors=int(meta["num_detectors"]),
        edges=edges,
        pair_weights=arrays["pair_weights"],
        pair_parities=arrays["pair_parities"],
        predecessors=arrays["predecessors"],
    )
    # Same insertion order as DecodingGraph.from_dem, so local decoders
    # (Union-Find, Clique) walk bit-identical adjacency lists.
    for edge in edges:
        graph.adjacency.setdefault(edge.u, []).append(edge)
        if edge.v != BOUNDARY:
            graph.adjacency.setdefault(edge.v, []).append(edge)
    if "csr_indptr" in arrays:
        object.__setattr__(
            graph,
            "_csr_adjacency",
            (
                arrays["csr_indptr"],
                arrays["csr_indices"],
                arrays["csr_weights"],
                arrays["csr_parities"],
            ),
        )
        object.__setattr__(
            graph,
            "_boundary_distances",
            (arrays["boundary_radii"], arrays["boundary_parities"]),
        )
    return graph


def _encode_sparse_graph(graph: DecodingGraph) -> tuple[dict, dict]:
    # Edges and detector count only: the sparse graph never carries the
    # all-pairs tables, so its artifact stays O(E).
    arrays, meta = _encode_graph(graph)
    for name in ("pair_weights", "pair_parities", "predecessors"):
        del arrays[name]
    return arrays, meta


def _decode_sparse_graph(arrays: dict, meta: dict) -> DecodingGraph:
    arrays = dict(arrays)
    arrays["pair_weights"] = np.zeros((0, 0), dtype=np.float64)
    arrays["pair_parities"] = np.zeros((0, 0), dtype=bool)
    arrays["predecessors"] = np.zeros((0, 0), dtype=np.int32)
    return _decode_graph(arrays, meta)


def _encode_gwt(gwt: GlobalWeightTable) -> tuple[dict, dict]:
    arrays = {"weights": gwt.weights, "parities": gwt.parities}
    return arrays, {"lsb": gwt.lsb}


def _decode_gwt(arrays: dict, meta: dict) -> GlobalWeightTable:
    lsb = meta.get("lsb")
    return GlobalWeightTable(
        weights=arrays["weights"],
        parities=arrays["parities"],
        lsb=None if lsb is None else float(lsb),
    )


def _encode_structure(structure: NeighborStructure) -> tuple[dict, dict]:
    offsets = np.zeros(len(structure.neighbors) + 1, dtype=np.int64)
    for i, nbrs in enumerate(structure.neighbors):
        offsets[i + 1] = offsets[i] + len(nbrs)
    flat = (
        np.concatenate(structure.neighbors)
        if structure.neighbors
        else np.zeros(0, dtype=np.intp)
    )
    arrays = {
        "radii": structure.radii,
        "close": structure.close,
        "separable": structure.separable,
        "unsafe": structure.unsafe,
        "neighbors_flat": flat.astype(np.int64),
        "neighbor_offsets": offsets,
    }
    return arrays, {}


def _decode_structure(arrays: dict, meta: dict) -> NeighborStructure:
    offsets = arrays["neighbor_offsets"]
    flat = arrays["neighbors_flat"].astype(np.intp)
    neighbors = [
        flat[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)
    ]
    return NeighborStructure(
        radii=arrays["radii"],
        close=arrays["close"],
        separable=arrays["separable"],
        unsafe=arrays["unsafe"],
        neighbors=neighbors,
    )


def _encode_routing_table(table) -> tuple[dict, dict]:
    arrays = {
        "accept_weights": np.asarray(table.accept_weights, dtype=np.int64),
        "accept_fractions": np.asarray(
            table.accept_fractions, dtype=np.float64
        ),
    }
    meta = {
        "distance": table.distance,
        "physical_error_rate": table.physical_error_rate,
        "shots": table.shots,
        "seed": table.seed,
        "max_local_weight": table.max_local_weight,
        "local_fraction": table.local_fraction,
        "escalation_rate": table.escalation_rate,
    }
    return arrays, meta


def _decode_routing_table(arrays: dict, meta: dict):
    from ..decoders.cascade import RoutingTable

    return RoutingTable(
        distance=int(meta["distance"]),
        physical_error_rate=float(meta["physical_error_rate"]),
        shots=int(meta["shots"]),
        seed=int(meta["seed"]),
        max_local_weight=int(meta["max_local_weight"]),
        local_fraction=float(meta["local_fraction"]),
        escalation_rate=float(meta["escalation_rate"]),
        accept_weights=tuple(int(w) for w in arrays["accept_weights"]),
        accept_fractions=tuple(float(f) for f in arrays["accept_fractions"]),
    )


#: stage name -> (encode, decode) codec over (arrays, meta) pairs.
STAGE_CODECS = {
    "dem": (_encode_dem, _decode_dem),
    "sparse_graph": (_encode_sparse_graph, _decode_sparse_graph),
    "graph": (_encode_graph, _decode_graph),
    "gwt": (_encode_gwt, _decode_gwt),
    "ideal_gwt": (_encode_gwt, _decode_gwt),
    "neighbor_structure": (_encode_structure, _decode_structure),
    "quantized_neighbor_structure": (_encode_structure, _decode_structure),
    "routing_table": (_encode_routing_table, _decode_routing_table),
}


def encode_stage(stage: str, obj: Any) -> tuple[dict, dict]:
    """Encode a stage object as (plain arrays, JSON-ready meta)."""
    try:
        encode, _decode = STAGE_CODECS[stage]
    except KeyError:
        raise ValueError(f"stage {stage!r} has no artifact codec") from None
    return encode(obj)


def decode_stage(stage: str, arrays: dict, meta: dict) -> Any:
    """Rebuild a stage object from its encoded arrays and meta."""
    try:
        _encode, decode = STAGE_CODECS[stage]
    except KeyError:
        raise ValueError(f"stage {stage!r} has no artifact codec") from None
    return decode(arrays, meta)


# ----------------------------------------------------------------------
# Artifact container: header line + npz blob
# ----------------------------------------------------------------------


def encode_artifact(
    stage: str,
    version: int,
    fingerprint: str,
    arrays: dict,
    meta: dict,
) -> bytes:
    """Serialise one stage artifact to its on-disk byte layout.

    The layout is a single JSON header line (magic, layout version, stage
    name, stage format version, fingerprint, blob checksum, meta)
    followed by an ``np.savez`` blob of the arrays.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    blob = buffer.getvalue()
    header = {
        "magic": ARTIFACT_MAGIC,
        "layout": ARTIFACT_LAYOUT_VERSION,
        "stage": stage,
        "version": int(version),
        "fingerprint": fingerprint,
        "checksum": sha256_bytes(blob),
        "meta": meta,
    }
    return json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + blob


def decode_artifact(
    data: bytes,
    *,
    stage: str,
    version: int,
    fingerprint: str | None,
    source: str = "artifact",
) -> tuple[dict, dict]:
    """Validate and decode one stage artifact's byte layout.

    Args:
        data: Full artifact file contents.
        stage: Expected stage name.
        version: Expected stage format version.
        fingerprint: Expected experiment fingerprint (None skips the
            check -- the caller verifies identity another way).
        source: Human-readable origin for error messages.

    Returns:
        The ``(arrays, meta)`` pair.

    Raises:
        ArtifactError: On a garbled header, wrong magic/stage/fingerprint,
            stale format version, or blob checksum mismatch.
    """
    head, sep, blob = data.partition(b"\n")
    if not sep:
        raise ArtifactError(f"{source}: truncated artifact (no header line)")
    try:
        header = json.loads(head.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactError(
            f"{source}: garbled artifact header ({exc})"
        ) from exc
    if not isinstance(header, dict) or header.get("magic") != ARTIFACT_MAGIC:
        raise ArtifactError(f"{source}: not a pipeline artifact")
    if header.get("layout") != ARTIFACT_LAYOUT_VERSION:
        raise ArtifactError(
            f"{source}: unsupported artifact layout "
            f"{header.get('layout')!r} (this build reads layout "
            f"{ARTIFACT_LAYOUT_VERSION})"
        )
    if header.get("stage") != stage:
        raise ArtifactError(
            f"{source}: holds stage {header.get('stage')!r}, "
            f"expected {stage!r}"
        )
    if header.get("version") != int(version):
        raise ArtifactError(
            f"{source}: stale stage format version "
            f"{header.get('version')!r} (this build reads version "
            f"{version} for {stage!r})"
        )
    if fingerprint is not None and header.get("fingerprint") != fingerprint:
        raise ArtifactError(
            f"{source}: artifact belongs to a different experiment "
            "(fingerprint mismatch)"
        )
    if sha256_bytes(blob) != header.get("checksum"):
        raise ArtifactError(
            f"{source}: blob checksum mismatch -- the artifact was "
            "truncated or altered after it was written"
        )
    try:
        with np.load(io.BytesIO(blob), allow_pickle=False) as loaded:
            arrays = {name: loaded[name] for name in loaded.files}
    except Exception as exc:
        raise ArtifactError(
            f"{source}: artifact blob failed to decode ({exc})"
        ) from exc
    meta = header.get("meta")
    return arrays, meta if isinstance(meta, dict) else {}


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time counters of an :class:`ArtifactStore`.

    Attributes:
        disk_hits: Loads served from a valid on-disk artifact.
        disk_misses: Loads that found no artifact on disk.
        saves: Artifacts written.
        invalidated: Corrupt or stale artifacts discarded (then rebuilt
            by the pipeline rather than trusted).
    """

    disk_hits: int
    disk_misses: int
    saves: int
    invalidated: int


class ArtifactStore:
    """Content-addressed on-disk store of pipeline stage artifacts.

    Artifacts live at ``<root>/<fp[:2]>/<fp>/<stage>.artifact`` where
    ``fp`` is the experiment fingerprint; the per-stage format version
    travels in the file header and is validated on load.  Writes are
    atomic (temp file + rename); loads validate magic, stage, version,
    fingerprint and blob checksum before decoding any array.

    Args:
        root: Store root directory (created on first save).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.disk_hits = 0
        self.disk_misses = 0
        self.saves = 0
        self.invalidated = 0

    def path(self, fingerprint: str, stage: str) -> Path:
        """On-disk location of one stage artifact."""
        return self.root / fingerprint[:2] / fingerprint / f"{stage}.artifact"

    def save(
        self,
        fingerprint: str,
        stage: str,
        obj: Any,
        *,
        version: int | None = None,
    ) -> Path:
        """Encode and atomically persist one stage object.

        Args:
            fingerprint: Experiment fingerprint the stage derives from.
            stage: Stage name (must have a codec).
            obj: The stage object.
            version: Stage format version (defaults to the current
                :data:`STAGE_FORMAT_VERSIONS` entry).

        Returns:
            The written path.
        """
        if version is None:
            version = STAGE_FORMAT_VERSIONS[stage]
        arrays, meta = encode_stage(stage, obj)
        data = encode_artifact(stage, version, fingerprint, arrays, meta)
        path = self.path(fingerprint, stage)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, data)
        self.saves += 1
        return path

    def load(
        self,
        fingerprint: str,
        stage: str,
        *,
        version: int | None = None,
    ) -> Any:
        """Load, validate and decode one stage object.

        Returns:
            The decoded stage object, or ``None`` when no artifact exists
            for this (fingerprint, stage).

        Raises:
            ArtifactError: When an artifact exists but fails validation
                (corruption, foreign fingerprint, stale format version).
        """
        if version is None:
            version = STAGE_FORMAT_VERSIONS[stage]
        path = self.path(fingerprint, stage)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.disk_misses += 1
            return None
        arrays, meta = decode_artifact(
            data,
            stage=stage,
            version=version,
            fingerprint=fingerprint,
            source=str(path),
        )
        self.disk_hits += 1
        return decode_stage(stage, arrays, meta)

    def discard(self, fingerprint: str, stage: str) -> None:
        """Delete one stage artifact (counted as an invalidation)."""
        path = self.path(fingerprint, stage)
        if path.exists():
            path.unlink()
            self.invalidated += 1

    @property
    def stats(self) -> StoreStats:
        """Current disk hit/miss/save/invalidation counters."""
        return StoreStats(
            disk_hits=self.disk_hits,
            disk_misses=self.disk_misses,
            saves=self.saves,
            invalidated=self.invalidated,
        )


_DEFAULT_STORES: dict[str, ArtifactStore] = {}


def artifact_store_for(root: str | Path) -> ArtifactStore:
    """The process-wide store instance for a root (counters aggregate)."""
    key = str(root)
    store = _DEFAULT_STORES.get(key)
    if store is None:
        store = _DEFAULT_STORES[key] = ArtifactStore(key)
    return store


def default_artifact_store() -> ArtifactStore | None:
    """The environment-configured artifact store, if any.

    Reads :data:`ARTIFACT_DIR_ENV` (``REPRO_ARTIFACT_DIR``); one store
    instance is kept per configured root so counters aggregate
    process-wide.  Returns ``None`` when the variable is unset -- callers
    then run memory-cached but diskless.
    """
    root = os.environ.get(ARTIFACT_DIR_ENV)
    if not root:
        return None
    return artifact_store_for(root)
