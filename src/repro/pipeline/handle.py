"""Small picklable decoder handles for worker warm-starts.

The parallel and resilient runners pickle their decoder into every
decode-chunk payload.  A built decoder drags the whole stack with it --
weight tables, neighbor structure, memoization caches -- so each payload
used to ship (and each retry to re-transfer) megabytes of arrays.  A
:class:`DecoderHandle` replaces the object with its *recipe*: the
:class:`~repro.pipeline.stages.PipelineConfig`, a registry decoder name,
the options, and optionally an artifact-store root.  Workers materialise
the decoder on first use -- loading the pre-built stages from the store
instead of recomputing the all-pairs Dijkstra -- and memoise it for the
life of the process, so a worker decoding many chunks builds exactly
once.

Because the materialised decoder is a pure function of the handle (and
the registry factories are deterministic), a run driven by a handle is
bit-identical to one driven by the equivalent pre-built decoder object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .stages import PipelineConfig

__all__ = ["DecoderHandle"]

#: Per-process memo of materialised handles (workers keep their decoder
#: across chunks instead of rebuilding per payload).
_RESOLVED: dict[tuple, Any] = {}


@dataclass(frozen=True)
class DecoderHandle:
    """A picklable recipe for building a registry decoder in a worker.

    Attributes:
        config: The decoding-stack configuration to build against.
        decoder: Registry decoder name (see
            :mod:`repro.decoders.registry`).
        options: Sorted ``(name, value)`` option pairs for the factory.
        store_root: Artifact-store root the worker warm-starts from
            (None: the worker falls back to ``REPRO_ARTIFACT_DIR`` or a
            cold build).
    """

    config: PipelineConfig
    decoder: str
    options: tuple[tuple[str, Any], ...] = field(default_factory=tuple)
    store_root: str | None = None

    @classmethod
    def create(
        cls,
        config: PipelineConfig,
        decoder: str,
        *,
        store_root: str | None = None,
        **options: Any,
    ) -> "DecoderHandle":
        """Build a handle; option values must be picklable and hashable."""
        return cls(
            config=config,
            decoder=decoder,
            options=tuple(sorted(options.items())),
            store_root=None if store_root is None else str(store_root),
        )

    def resolve(self):
        """Materialise (or fetch the memoised) decoder for this handle.

        Raises:
            ValueError: When the handle's decoder needs stages its
                configuration disabled (a ``dense_weights=False`` config
                with a table-driven decoder), with the handle named so
                the misconfiguration is traceable across worker logs.
        """
        key = (self.config, self.decoder, self.options, self.store_root)
        decoder = _RESOLVED.get(key)
        if decoder is None:
            from ..decoders.registry import make_decoder
            from ..experiments.setup import DecodingSetup

            setup = DecodingSetup.from_config(
                self.config, store_root=self.store_root
            )
            try:
                decoder = make_decoder(self.decoder, setup, **dict(self.options))
            except ValueError as exc:
                if self.config.dense_weights or "dense_weights" not in str(exc):
                    raise
                raise ValueError(
                    f"handle for decoder {self.decoder!r} cannot resolve "
                    f"under its dense_weights=False configuration: {exc}"
                ) from exc
            _RESOLVED[key] = decoder
        return decoder

    @property
    def name(self) -> str:
        """The materialised decoder's display name."""
        return self.resolve().name
