"""The decode service's long-lived worker process.

Each worker materialises its decoder tiers exactly once from picklable
:class:`~repro.pipeline.handle.DecoderHandle` recipes (warm-starting from
the artifact store when one is configured) and then loops on its request
queue, turning cross-batched window-solve requests into primitive-edge
lists.  The worker is deliberately stateless between batches: every
request carries the full window active sets, so a crashed worker's
in-flight batch can be replayed verbatim on a fresh process with a
bit-identical result.

Tiers
-----

``"sliding-window"`` (the primary tier) routes through
:meth:`~repro.decoders.windowed.SlidingWindowDecoder.window_edges_batch`,
i.e. the batched exhaustive-search kernels.  Degraded tiers are registry
decoders carrying the ``"service-tier"`` capability (Union-Find, Clique):
cheaper, approximate, used by the server's load-shedding ladder.  Either
way a solve returns, per request, the primitive decoding-graph edges
whose endpoint toggles resolve exactly that window's defects -- the
commit/residual bookkeeping in the session layer is tier-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..decoders.base import BOUNDARY
from ..pipeline.handle import DecoderHandle
from ..testing.faults import SERVICE_SOLVE_PHASE

__all__ = [
    "PRIMARY_TIER",
    "SolveRequest",
    "TierSolver",
    "service_worker_main",
]

#: Registry name of the service's primary (exact, sliding-window) tier.
PRIMARY_TIER = "sliding-window"

#: Degraded tiers whose ``DecodeResult.matching`` already consists of
#: primitive decoding-graph edges (no shortest-path expansion needed).
_PRIMITIVE_MATCHING_TIERS = frozenset({"union-find"})


@dataclass(frozen=True)
class SolveRequest:
    """One batch of window solves shipped to a worker.

    Attributes:
        batch_id: Service-unique id; the reply echoes it, and replays of
            the same batch keep it (with a bumped ``attempt``).
        attempt: 0-based attempt count (threaded to the fault injector).
        tier: Decoder tier to solve on (``PRIMARY_TIER`` or a
            ``"service-tier"`` registry name).
        actives: One sorted active-index list per window solve.
    """

    batch_id: int
    attempt: int
    tier: str
    actives: tuple[tuple[int, ...], ...]


class TierSolver:
    """Solve window active sets on one decoder tier.

    Args:
        tier: Registry tier name.
        windowed: The materialised
            :class:`~repro.decoders.windowed.SlidingWindowDecoder`
            (always needed: degraded tiers reuse its path expansion).
        decoder: The degraded-tier decoder, or None for the primary tier.
    """

    def __init__(self, tier: str, windowed, decoder=None) -> None:
        self.tier = tier
        self.windowed = windowed
        self.decoder = decoder

    def solve_batch(
        self, actives: list[list[int]]
    ) -> list[list[tuple[int, int]]]:
        """Primitive-edge lists for every active set, in order."""
        if self.decoder is None:
            return self.windowed.window_edges_batch(
                [list(a) for a in actives]
            )
        out: list[list[tuple[int, int]]] = []
        primitive = self.tier in _PRIMITIVE_MATCHING_TIERS
        for active in actives:
            result = self.decoder.decode_active(list(active))
            pairs = [(int(u), int(v)) for u, v in result.matching]
            if primitive:
                out.append(pairs)
            else:
                # Matched defect pairs: expand along shortest paths into
                # XOR-reduced primitive edges, exactly as the MWPM tier
                # does, so commit bookkeeping stays tier-agnostic.
                edges: dict[tuple[int, int], int] = {}
                for u, v in pairs:
                    for x, y in self.windowed.graph.shortest_path(u, v):
                        key = self.windowed._edge_key(x, y)
                        edges[key] = edges.get(key, 0) + 1
                boundary = self.windowed._boundary
                out.append(
                    [
                        (x, BOUNDARY if y == boundary else y)
                        for (x, y), count in sorted(edges.items())
                        if count % 2
                    ]
                )
        return out


def build_tier_solvers(
    handles: dict[str, DecoderHandle]
) -> dict[str, TierSolver]:
    """Materialise every tier's solver from its handle (primary first)."""
    windowed = handles[PRIMARY_TIER].resolve()
    solvers = {PRIMARY_TIER: TierSolver(PRIMARY_TIER, windowed)}
    for tier, handle in handles.items():
        if tier == PRIMARY_TIER:
            continue
        solvers[tier] = TierSolver(tier, windowed, handle.resolve())
    return solvers


def service_worker_main(request_queue, result_queue, bootstrap) -> None:
    """Worker-process entry: materialise tiers, then serve solve batches.

    Args:
        request_queue: Inbound :class:`SolveRequest` stream; ``None`` is
            the clean-shutdown sentinel.
        result_queue: Outbound ``(batch_id, status, payload)`` triples --
            ``("ok", edge lists)`` or ``("error", repr)``.  A hard crash
            (injected or real) reports nothing; the server detects the
            dead process and replays the batch.
        bootstrap: ``(handles, injector)`` -- per-tier
            :class:`~repro.pipeline.handle.DecoderHandle` recipes plus an
            optional :class:`~repro.testing.faults.FaultInjector`.
    """
    handles, injector = bootstrap
    solvers = build_tier_solvers(handles)
    while True:
        request = request_queue.get()
        if request is None:
            return
        try:
            if injector is not None:
                injector.maybe_fault(
                    SERVICE_SOLVE_PHASE,
                    request.batch_id,
                    request.attempt,
                    in_worker=True,
                )
                injector.maybe_poison(
                    [list(a) for a in request.actives], in_worker=True
                )
            solver = solvers[request.tier]
            edges = solver.solve_batch([list(a) for a in request.actives])
            result_queue.put((request.batch_id, "ok", edges))
        except BaseException as exc:  # noqa: BLE001 - forwarded to server
            result_queue.put((request.batch_id, "error", repr(exc)))
