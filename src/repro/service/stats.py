"""Service- and stream-scope counters: latency, throughput, queue depth.

The robustness story of :mod:`repro.service` is only auditable if every
degradation, retry and respawn is *counted* where an operator can see
it.  This module keeps the bookkeeping dependency-free (plain Python,
JSON-ready dicts) so the server, the load generator, the CI smoke job
and ``bench_ext_service.py`` all report through the same structures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

# Shared with the decoder cascade's per-tier telemetry (re-exported here
# for backward compatibility: this was the recorder's original home).
from ..stats import LatencyRecorder
from .supervisor import RecoveryStats

__all__ = ["LatencyRecorder", "ServiceStats", "StreamStats"]


@dataclass
class StreamStats:
    """Counters of one stream session.

    Attributes:
        rounds_in: Syndrome rounds accepted into the stream.
        episodes: Episodes (full shots) completed.
        solves: Window solves issued on behalf of the stream.
        degraded_solves: Window solves executed on a degraded tier.
        backpressure_events: Times the bounded round queue filled and the
            producer was made to wait.
        degradations: Transitions onto a cheaper decoder tier.
        promotions: Transitions back to the primary tier.
        max_queue_depth: High-water mark of buffered, uncommitted rounds.
    """

    rounds_in: int = 0
    episodes: int = 0
    solves: int = 0
    degraded_solves: int = 0
    backpressure_events: int = 0
    degradations: int = 0
    promotions: int = 0
    max_queue_depth: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a JSON-ready dict."""
        return {
            "rounds_in": self.rounds_in,
            "episodes": self.episodes,
            "solves": self.solves,
            "degraded_solves": self.degraded_solves,
            "backpressure_events": self.backpressure_events,
            "degradations": self.degradations,
            "promotions": self.promotions,
            "max_queue_depth": self.max_queue_depth,
        }


@dataclass
class ServiceStats:
    """Service-scope counters plus the supervisor's recovery ledger.

    Attributes:
        recovery: Crash/hang/retry/respawn counters (shared
            :class:`~repro.service.supervisor.RecoveryStats` shape).
        solve_latency: Latency of individual window-solve requests,
            submission to resolution (retries included).
        batches: Cross-stream batches dispatched to workers.
        batched_requests: Window-solve requests carried by those batches.
        rounds_committed: Detector layers committed across all streams.
        started_at: ``time.monotonic`` timestamp of service start (0.0
            before start), for throughput computation.
    """

    recovery: RecoveryStats = field(default_factory=RecoveryStats)
    solve_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    batches: int = 0
    batched_requests: int = 0
    rounds_committed: int = 0
    started_at: float = 0.0

    def mark_started(self) -> None:
        """Record the service start time for throughput accounting."""
        self.started_at = time.monotonic()

    def rounds_per_second(self) -> float:
        """Committed-round throughput since start (0.0 before start)."""
        if not self.started_at:
            return 0.0
        elapsed = time.monotonic() - self.started_at
        return self.rounds_committed / elapsed if elapsed > 0 else 0.0

    def mean_batch_size(self) -> float:
        """Average requests per dispatched batch (cross-batching yield)."""
        return self.batched_requests / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        """Counters as a JSON-ready dict."""
        return {
            "recovery": self.recovery.as_dict(),
            "solve_latency": self.solve_latency.as_dict(),
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "mean_batch_size": self.mean_batch_size(),
            "rounds_committed": self.rounds_committed,
            "rounds_per_second": self.rounds_per_second(),
        }
