"""One logical qubit's long-lived stream session.

A :class:`StreamSession` receives syndrome *rounds* (one detector layer
per round), assembles them into the sliding-window schedule of the
service's :class:`~repro.decoders.windowed.SlidingWindowDecoder`, ships
each filled window's defects to the server's worker pool, and runs the
commit/residual bookkeeping locally -- exactly the semantics of
``SlidingWindowDecoder.decode_active``, stretched over time.

Robustness seams owned by the session:

* **Bounded round queue.**  At most ``queue_limit`` received-but-
  uncommitted layers may be buffered; beyond that :meth:`submit_round`
  counts a backpressure event and *waits* for the commit frontier to
  advance (an explicit signal to the producer, never a silent drop).
* **Degradation ladder.**  When backpressure hits and shedding is
  enabled, the session drops one rung down its
  :class:`~repro.decoders.cascade.TierLadder` (the cheaper decoder
  tiers configured on the service) for subsequent window solves, and
  promotes one rung back up once the queue drains below half its
  limit.  Every transition is counted, in the stream's own stats and
  in the server's shared per-tier :class:`CascadeStats` schema.

Rounds are never lost or reordered: the window schedule is fixed, the
session processes it strictly in order, and a full episode's committed
corrections are asserted to resolve every defect.
"""

from __future__ import annotations

import asyncio

import numpy as np

from ..decoders.base import DecodeResult
from ..decoders.cascade import TierLadder
from .stats import StreamStats
from .worker import PRIMARY_TIER

__all__ = ["StreamBackpressure", "StreamSession"]


class StreamBackpressure(RuntimeError):
    """The stream's bounded round queue is full (non-blocking submit)."""


class StreamSession:
    """Sliding-window decoding of one syndrome stream.

    Built by :meth:`repro.service.server.DecodeService.open_stream`; not
    constructed directly.

    Args:
        stream_id: Caller-chosen stream name (stats key).
        server: The owning :class:`~repro.service.server.DecodeService`.
        decoder: The server's in-process sliding-window decoder (window
            schedule and commit bookkeeping; solves go to the pool).
        shard: Worker shard this stream's solves are dispatched to.
        queue_limit: Maximum buffered uncommitted layers before
            :meth:`submit_round` backpressures; must cover at least one
            window or the stream could never fill one.
        tiers: Ordered degradation ladder, primary tier first (a
            single-entry ladder disables shedding).
    """

    def __init__(
        self,
        stream_id: str,
        server,
        decoder,
        *,
        shard: int,
        queue_limit: int,
        tiers: list[str] | tuple[str, ...] = (PRIMARY_TIER,),
    ) -> None:
        if queue_limit < decoder.window:
            raise ValueError(
                f"queue_limit={queue_limit} cannot buffer one window of "
                f"{decoder.window} layers; the stream would deadlock"
            )
        self.stream_id = stream_id
        self.shard = shard
        self.queue_limit = queue_limit
        self.ladder = TierLadder(tiers)
        self.stats = StreamStats()
        self._server = server
        self._decoder = decoder
        self._plan = decoder.window_plan()
        self._num_layers = decoder.num_layers
        self._layer_sizes = [
            len(decoder.layer_detectors(t)) for t in range(self._num_layers)
        ]
        self._layer_index = [
            decoder.layer_detectors(t) for t in range(self._num_layers)
        ]
        self._defects = np.zeros(decoder.syndrome_length, dtype=bool)
        self._layers_in = 0
        self._committed_through = 0
        self._next_step = 0
        self._prediction = False
        self._committed: list[tuple[int, int]] = []
        self._had_defect = False
        self._task: asyncio.Task | None = None
        self._step_event = asyncio.Event()

    # ------------------------------------------------------------------
    # Producer API
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Received-but-uncommitted layers currently buffered."""
        return self._layers_in - self._committed_through

    async def submit_round(self, bits) -> None:
        """Feed the next detector layer's bits into the stream.

        Args:
            bits: 0/1 vector over the next layer's detectors (in
                :meth:`~repro.decoders.windowed.SlidingWindowDecoder.layer_detectors`
                order).

        Waits (counting a backpressure event and possibly degrading the
        stream's tier) while the bounded round queue is over its limit.

        Raises:
            RuntimeError: When more rounds than one episode holds are
                submitted without :meth:`finish_episode`.
            ValueError: On a bit vector of the wrong length.
        """
        self._accept_round(bits)
        self._kick()
        if self.queue_depth > self.queue_limit:
            self.stats.backpressure_events += 1
            self._consider_degrade()
            while self.queue_depth > self.queue_limit:
                await self._wait_step()

    def try_submit_round(self, bits) -> None:
        """Non-blocking :meth:`submit_round`.

        Raises:
            StreamBackpressure: When the bounded round queue is full;
                the round is *not* accepted (re-submit it after awaiting
                capacity).
        """
        if self.queue_depth >= self.queue_limit:
            self.stats.backpressure_events += 1
            raise StreamBackpressure(
                f"stream {self.stream_id!r}: {self.queue_depth} uncommitted "
                f"layers buffered (limit {self.queue_limit})"
            )
        self._accept_round(bits)
        self._kick()

    async def finish_episode(self) -> DecodeResult:
        """Drain the episode and return its committed decode result.

        Must be called after exactly one episode's worth of rounds
        (``decoder.num_layers``); resets the session for the next
        episode.  The result is bit-identical to
        ``SlidingWindowDecoder.decode_active`` on the episode's full
        syndrome.

        Raises:
            RuntimeError: When called mid-episode.
            AssertionError: When committed corrections left unresolved
                defects (a decode-tier contract violation).
        """
        if self._layers_in != self._num_layers:
            raise RuntimeError(
                f"stream {self.stream_id!r}: episode has {self._layers_in} "
                f"of {self._num_layers} rounds; submit the rest before "
                "finish_episode()"
            )
        self._kick()
        while self._next_step < len(self._plan):
            await self._wait_step()
        if self._task is not None and self._task.done():
            # Surface processor failures (e.g. a commit assertion).
            self._task.result()
        leftover = [int(i) for i in np.nonzero(self._defects)[0]]
        if leftover:
            raise AssertionError(
                f"stream {self.stream_id!r} left unresolved defects: "
                f"{leftover}"
            )
        if not self._had_defect:
            result = DecodeResult(prediction=False)
        else:
            result = DecodeResult(
                prediction=self._prediction,
                matching=self._decoder._present_matching(self._committed),
                weight=float(len(self._committed)),
                cycles=len(self._plan),
            )
        self.stats.episodes += 1
        self._layers_in = 0
        self._committed_through = 0
        self._next_step = 0
        self._prediction = False
        self._committed = []
        self._had_defect = False
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _accept_round(self, bits) -> None:
        if self._layers_in >= self._num_layers:
            raise RuntimeError(
                f"stream {self.stream_id!r}: episode already holds "
                f"{self._num_layers} rounds; call finish_episode() first"
            )
        layer = self._layers_in
        arr = np.asarray(bits).astype(bool).reshape(-1)
        if arr.shape[0] != self._layer_sizes[layer]:
            raise ValueError(
                f"round {layer} of stream {self.stream_id!r} carries "
                f"{arr.shape[0]} bits, expected {self._layer_sizes[layer]}"
            )
        if arr.any():
            self._had_defect = True
            self._defects[self._layer_index[layer][arr]] = True
        self._layers_in += 1
        self.stats.rounds_in += 1
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, self.queue_depth
        )

    def _ready(self) -> bool:
        if self._next_step >= len(self._plan):
            return False
        _start, end, _commit_end, _final = self._plan[self._next_step]
        return self._layers_in >= end

    def _kick(self) -> None:
        if self._ready() and (self._task is None or self._task.done()):
            if self._task is not None:
                self._task.result()  # re-raise any stored failure
            self._task = asyncio.ensure_future(self._process_ready())

    async def _wait_step(self) -> None:
        event = self._step_event
        waiter = asyncio.ensure_future(event.wait())
        done = self._task
        if done is not None:
            await asyncio.wait(
                {waiter, done}, return_when=asyncio.FIRST_COMPLETED
            )
            if not waiter.done():
                waiter.cancel()
                done.result()  # surface processor failure
                raise RuntimeError(
                    f"stream {self.stream_id!r}: processor exited without "
                    "advancing the commit frontier"
                )
            await waiter
        else:
            await waiter

    def _mark_step(self) -> None:
        event = self._step_event
        self._step_event = asyncio.Event()
        event.set()

    async def _process_ready(self) -> None:
        while self._ready():
            _start, end, commit_end, _final = self._plan[self._next_step]
            window_active = self._decoder.window_active(
                self._defects, _start, end
            )
            if window_active:
                tier = self.tier
                edges = await self._server.solve(self, tier, window_active)
                self.stats.solves += 1
                if tier != PRIMARY_TIER:
                    self.stats.degraded_solves += 1
            else:
                edges = []
            flip, committed = self._decoder.commit_edges(
                edges, commit_end, self._defects
            )
            self._prediction ^= flip
            self._committed.extend(committed)
            self._server.note_committed(commit_end - self._committed_through)
            self._committed_through = commit_end
            self._next_step += 1
            self._maybe_promote()
            self._mark_step()

    @property
    def tier(self) -> str:
        """The stream's active decode tier (its ladder position)."""
        return self.ladder.current

    def _consider_degrade(self) -> None:
        departed = self.ladder.current
        if self.ladder.shed() is not None:
            self.stats.degradations += 1
            self._server.note_shed(departed)

    def _maybe_promote(self) -> None:
        if (
            self.ladder.consider_promote(self.queue_depth, self.queue_limit)
            is not None
        ):
            self.stats.promotions += 1
