"""Supervised execution primitives shared by campaigns and the service.

PR 4 grew a supervision loop inside :mod:`repro.experiments.resilient`
that detects worker crashes (a dead process that delivered no result),
reclaims hangs (per-attempt timeout), retries with bounded exponential
backoff and degrades to in-process serial execution when parallelism
keeps failing.  The streaming decode service needs exactly the same
guarantees for its long-lived workers, so the loop lives here now --
:mod:`repro.experiments.resilient` imports it unchanged -- together with
the policy object (:class:`RetryPolicy`) both callers share and the
:class:`SupervisedWorker` wrapper the service's warm pool is built from.

Everything here is transport-agnostic: faults are injected through the
deterministic :class:`~repro.testing.faults.FaultInjector` plans, and the
recovery counters (:class:`RecoveryStats`) are the single ledger both the
campaign runner and the service report.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = [
    "RecoveryStats",
    "RetryPolicy",
    "SERIAL_DEGRADATION_THRESHOLD",
    "SupervisedWorker",
    "supervised_map",
]

#: Consecutive failed parallel attempts (crash/hang/error) after which the
#: supervisor stops launching worker processes and runs every remaining
#: chunk in-process.
SERIAL_DEGRADATION_THRESHOLD = 8


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised work unit is retried, backed off, and timed out.

    One policy object serves both supervised callers: the resilient
    campaign runner (where a unit is a sampling/decode chunk and
    ``timeout`` is the per-chunk hang timeout) and the decode service
    (where a unit is a cross-batched window solve and ``timeout`` is the
    per-request deadline).  The campaign CLI flags ``--max-retries`` /
    ``--chunk-timeout`` map directly onto the fields.

    Attributes:
        max_retries: Supervised retries per unit before the caller's
            terminal fallback (serial in-process execution).
        backoff: Base delay of the exponential backoff between attempts
            of the same unit, in seconds (doubles per retry).
        timeout: Seconds before a running attempt is declared hung and
            its process reclaimed (None disables the deadline).
    """

    max_retries: int = 3
    backoff: float = 0.05
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    def delay(self, attempt: int) -> float:
        """Backoff before attempt ``attempt`` (1-based retry count)."""
        return self.backoff * (2 ** (attempt - 1))

    def deadline(self, now: float) -> float:
        """Absolute deadline of an attempt started at ``now``."""
        return now + self.timeout if self.timeout is not None else float("inf")

    def exhausted(self, attempt: int) -> bool:
        """Whether ``attempt`` (0-based count of attempts made) is over."""
        return attempt > self.max_retries


@dataclass
class RecoveryStats:
    """What a supervisor had to do to finish its workload.

    Shared ledger of the resilient campaign runner and the decode
    service; either caller touches only the counters that apply to it.

    Attributes:
        chunks_total: Work units in the campaign (campaign runner only).
        chunks_resumed: Units restored from verified checkpoints.
        crashes: Worker processes that died without delivering a result.
        hangs: Worker attempts reclaimed by the timeout/deadline.
        worker_errors: Attempts that failed with a Python error.
        retries: Attempts re-queued after any of the above.
        serial_fallbacks: Units that ran in-process after their parallel
            attempts were exhausted (or after campaign-level degradation).
        respawns: Long-lived service workers restarted after a crash or
            hang (the campaign runner uses disposable processes and never
            respawns).
        corrupted_checkpoints: Checkpoint files discarded as invalid.
        dropped_chunks: Units lost even to the serial fallback (only
            possible with ``allow_partial=True``).
        decoder_fallbacks: Decoder-internal degradations to the reference
            path, summed over the per-chunk deltas the decode workers
            report (worker decoder copies die with their process, so the
            counter cannot be read off the supervisor's decoder).
    """

    chunks_total: int = 0
    chunks_resumed: int = 0
    crashes: int = 0
    hangs: int = 0
    worker_errors: int = 0
    retries: int = 0
    serial_fallbacks: int = 0
    respawns: int = 0
    corrupted_checkpoints: int = 0
    dropped_chunks: int = 0
    decoder_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a JSON-ready dict."""
        return {
            "chunks_total": self.chunks_total,
            "chunks_resumed": self.chunks_resumed,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "worker_errors": self.worker_errors,
            "retries": self.retries,
            "serial_fallbacks": self.serial_fallbacks,
            "respawns": self.respawns,
            "corrupted_checkpoints": self.corrupted_checkpoints,
            "dropped_chunks": self.dropped_chunks,
            "decoder_fallbacks": self.decoder_fallbacks,
        }


# ----------------------------------------------------------------------
# One-shot supervised map (disposable worker per attempt)
# ----------------------------------------------------------------------


@dataclass
class _Job:
    """One supervised work unit and its retry state."""

    index: int
    payload: Any
    attempt: int = 0
    eligible_at: float = 0.0


def _worker_shell(
    result_queue,
    phase: str,
    index: int,
    attempt: int,
    worker_fn: Callable[[Any], Any],
    payload: Any,
    injector,
) -> None:
    """Worker-process entry: run one chunk attempt, report via the queue.

    A successful attempt puts ``(index, "ok", result)`` and exits 0; a
    Python failure puts ``(index, "error", repr)`` and exits 0.  A hard
    crash (injected or real) exits non-zero with nothing on the queue --
    that silence is exactly what the supervisor detects.
    """
    try:
        if injector is not None:
            injector.maybe_fault(phase, index, attempt, in_worker=True)
        result = worker_fn(payload)
        result_queue.put((index, "ok", result))
    except BaseException as exc:  # noqa: BLE001 - forwarded to supervisor
        result_queue.put((index, "error", repr(exc)))


def _run_serial_attempts(
    job: _Job,
    worker_fn: Callable[[Any], Any],
    *,
    phase: str,
    injector,
    max_retries: int,
    stats: RecoveryStats,
) -> tuple[bool, Any]:
    """Run a job in-process with retries; returns (succeeded, result)."""
    while True:
        try:
            if injector is not None:
                injector.maybe_fault(
                    phase, job.index, job.attempt, in_worker=False
                )
            return True, worker_fn(job.payload)
        except Exception:
            stats.worker_errors += 1
            job.attempt += 1
            if job.attempt > max_retries:
                return False, None
            stats.retries += 1


def supervised_map(
    worker_fn: Callable[[Any], Any],
    payloads: Sequence[tuple[int, Any]],
    *,
    phase: str,
    workers: int,
    policy: RetryPolicy,
    injector=None,
    stats: RecoveryStats,
    allow_drop: bool,
    on_success: Callable[[int, Any], None] | None = None,
) -> dict[int, Any]:
    """Run ``worker_fn`` over indexed payloads under supervision.

    Args:
        worker_fn: Pure function of one payload (module-level, picklable).
        payloads: ``(index, payload)`` pairs; indices key the result dict.
        phase: Phase name threaded to the fault injector and stats.
        workers: Maximum concurrent worker processes (1 = in-process).
        policy: Retry/backoff/timeout policy of every unit.
        injector: Optional :class:`repro.testing.faults.FaultInjector`.
        stats: Recovery counters, mutated in place.
        allow_drop: When even the serial fallback fails: ``True`` records
            the chunk as dropped (result ``None``), ``False`` raises.
        on_success: Callback invoked in the supervisor process for each
            completed chunk (e.g. to checkpoint it).

    Returns:
        Mapping of index to result (``None`` for dropped chunks).

    Raises:
        RuntimeError: When a chunk fails terminally and ``allow_drop`` is
            False.
    """
    results: dict[int, Any] = {}
    max_retries = policy.max_retries

    def finish(index: int, value: Any) -> None:
        results[index] = value
        if on_success is not None and value is not None:
            on_success(index, value)

    def serial_fallback(job: _Job) -> None:
        stats.serial_fallbacks += 1
        ok, value = _run_serial_attempts(
            job,
            worker_fn,
            phase=phase,
            injector=injector,
            max_retries=max_retries,
            stats=stats,
        )
        if ok:
            finish(job.index, value)
        elif allow_drop:
            stats.dropped_chunks += 1
            results[job.index] = None
        else:
            raise RuntimeError(
                f"{phase} chunk {job.index} failed after {job.attempt} "
                "attempts including the in-process serial fallback"
            )

    pending = [_Job(index, payload) for index, payload in payloads]

    if workers <= 1:
        # In-process mode: no subprocess to crash, but the retry loop
        # still absorbs transient (injected or real) Python failures.
        for job in pending:
            ok, value = _run_serial_attempts(
                job,
                worker_fn,
                phase=phase,
                injector=injector,
                max_retries=max_retries,
                stats=stats,
            )
            if ok:
                finish(job.index, value)
            elif allow_drop:
                stats.dropped_chunks += 1
                results[job.index] = None
            else:
                raise RuntimeError(
                    f"{phase} chunk {job.index} failed after "
                    f"{job.attempt} in-process attempts"
                )
        return results

    ctx = multiprocessing.get_context()
    result_queue = ctx.Queue()
    running: dict[int, tuple[Any, float, _Job]] = {}
    # Results that arrived before their process was reaped.
    arrived: dict[int, tuple[str, Any]] = {}
    # Processes whose result was consumed, awaiting a (lazy) join so the
    # exit wait never blocks the launch of the next chunk.
    zombies: list[Any] = []
    parallel_failures = 0
    degraded = False

    def requeue(job: _Job, now: float) -> None:
        nonlocal parallel_failures
        parallel_failures += 1
        job.attempt += 1
        if policy.exhausted(job.attempt):
            serial_fallback(job)
            return
        stats.retries += 1
        job.eligible_at = now + policy.delay(job.attempt)
        pending.append(job)

    try:
        while pending or running:
            now = time.monotonic()
            if not degraded and parallel_failures >= SERIAL_DEGRADATION_THRESHOLD:
                # Repeated parallel failures: stop trusting subprocesses
                # and drain everything still pending in-process.
                degraded = True
            if degraded and pending and not running:
                for job in pending:
                    serial_fallback(job)
                pending = []
                continue
            while (
                not degraded
                and pending
                and len(running) < workers
            ):
                launchable = [
                    j for j in pending if j.eligible_at <= now
                ]
                if not launchable:
                    break
                job = launchable[0]
                pending.remove(job)
                deadline = policy.deadline(now)
                process = ctx.Process(
                    target=_worker_shell,
                    args=(
                        result_queue,
                        phase,
                        job.index,
                        job.attempt,
                        worker_fn,
                        job.payload,
                        injector,
                    ),
                    daemon=True,
                )
                process.start()
                running[job.index] = (process, deadline, job)
            # Wait for the next event.  Results wake the blocking get the
            # moment they land (the common case); the timeout bounds how
            # late a crash (which produces no queue traffic) or an expired
            # deadline is noticed.
            if running:
                try:
                    index, status, value = result_queue.get(timeout=0.02)
                    arrived[index] = (status, value)
                except queue_module.Empty:
                    pass
                while True:
                    try:
                        index, status, value = result_queue.get_nowait()
                    except queue_module.Empty:
                        break
                    arrived[index] = (status, value)
            elif pending and not degraded:
                # Nothing running: every pending job is in its backoff
                # window.  Sleep until the earliest becomes eligible.
                now = time.monotonic()
                wake = min(j.eligible_at for j in pending)
                if wake > now:
                    time.sleep(min(wake - now, 0.05))
            for index in list(running):
                process, deadline, job = running[index]
                now = time.monotonic()
                if index in arrived:
                    status, value = arrived.pop(index)
                    zombies.append(process)
                    del running[index]
                    if status == "ok":
                        finish(index, value)
                    else:
                        stats.worker_errors += 1
                        requeue(job, now)
                elif not process.is_alive():
                    # Dead without a result.  Exit code 0 means the result
                    # is still in flight through the queue's feeder
                    # thread; give it a grace period before declaring a
                    # crash (the retry would still be bit-identical, just
                    # wasted work).
                    if process.exitcode == 0 and now < deadline:
                        grace = min(deadline, now + 0.5)
                        running[index] = (process, grace, job)
                        if now < grace:
                            continue
                    process.join()
                    del running[index]
                    stats.crashes += 1
                    requeue(job, now)
                elif now > deadline:
                    stats.hangs += 1
                    process.terminate()
                    process.join(timeout=2.0)
                    if process.is_alive():
                        process.kill()
                        process.join()
                    del running[index]
                    requeue(job, now)
            zombies = [p for p in zombies if p.is_alive()]
    finally:
        for process, _deadline, _job in running.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join()
        for process in zombies:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join()
        result_queue.close()
        result_queue.cancel_join_thread()
    return results


# ----------------------------------------------------------------------
# Long-lived supervised workers (the service's warm pool)
# ----------------------------------------------------------------------


class SupervisedWorker:
    """One long-lived worker process with replayable in-flight work.

    The campaign supervisor above launches a disposable process per
    attempt; the service instead keeps workers warm (decoder tiers are
    materialised once per process from a
    :class:`~repro.pipeline.handle.DecoderHandle`) and replays in-flight
    batches onto a fresh process when one crashes or hangs.  This class
    owns exactly the process-lifecycle part: spawn, liveness, kill,
    respawn, and the ledger of batches currently on the worker.

    Both queues are private to one incarnation and recreated on every
    :meth:`spawn`.  A shared result queue would be a trap: terminating a
    worker that still holds the queue's cross-process write lock (it may
    not have been scheduled between flushing a result and releasing the
    lock) would deadlock every other writer forever.  A per-incarnation
    queue dies with its process, so a kill can never poison anyone else.

    Args:
        target: Worker main, called as ``target(request_queue,
            result_queue, payload)`` in the child process.
        payload: Picklable bootstrap payload (e.g. decoder handles).
        ctx: Multiprocessing context (``fork`` keeps warm pipeline caches
            copy-on-write where available).
    """

    def __init__(self, target, payload, ctx=None) -> None:
        self._target = target
        self._payload = payload
        self._ctx = ctx if ctx is not None else multiprocessing.get_context()
        self.request_queue = None
        self.result_queue = None
        self.process = None
        #: batch_id -> opaque in-flight record, owned by the caller.
        self.inflight: dict[int, Any] = {}

    def spawn(self) -> None:
        """Start (or restart) the worker with fresh queues.

        Fresh queues per incarnation guarantee a respawned worker never
        sees stale requests half-consumed by its dead predecessor and
        never blocks on a lock its predecessor died holding; the caller
        replays :attr:`inflight` explicitly instead.
        """
        self.request_queue = self._ctx.Queue()
        self.result_queue = self._ctx.Queue()
        self.process = self._ctx.Process(
            target=self._target,
            args=(self.request_queue, self.result_queue, self._payload),
            daemon=True,
        )
        self.process.start()

    def is_alive(self) -> bool:
        """Whether the current incarnation is running."""
        return self.process is not None and self.process.is_alive()

    def submit(self, request: Any) -> None:
        """Enqueue one request onto the current incarnation."""
        self.request_queue.put(request)

    def kill(self) -> None:
        """Tear the current incarnation down (terminate, then kill)."""
        if self.process is None:
            return
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        else:
            self.process.join(timeout=1.0)
        for queue in (self.request_queue, self.result_queue):
            if queue is not None:
                queue.close()
                queue.cancel_join_thread()

    def shutdown(self, sentinel: Any = None) -> None:
        """Ask the worker to exit cleanly, then reap it."""
        if self.process is None:
            return
        if self.process.is_alive() and self.request_queue is not None:
            try:
                self.request_queue.put(sentinel)
            except (ValueError, OSError):
                pass
            self.process.join(timeout=2.0)
        self.kill()
