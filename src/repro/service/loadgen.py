"""Deterministic load generator for the streaming decode service.

:func:`run_load` stands up a :class:`~repro.service.server.DecodeService`,
opens ``streams`` concurrent stream sessions, and feeds each a
deterministic sequence of sampled episodes (one full memory experiment
streamed round by round).  It is both the service's demo driver
(``python -m repro serve``) and the measurement harness of the service
bench and CI smoke job:

* **Correctness.**  Every round is accounted: the report records rounds
  fed vs rounds committed, and (optionally) replays every episode's full
  syndrome through the in-process
  :meth:`~repro.decoders.windowed.SlidingWindowDecoder.decode_batch`
  reference -- episodes decoded entirely on the primary tier must match
  bit-for-bit; degraded episodes are scored against the sampled
  observables instead (their accuracy is the degradation ladder's price,
  reported separately).
* **Robustness.**  A :class:`~repro.testing.faults.FaultInjector` can be
  threaded into the workers (crash/hang/poison chaos), and ``burst``
  streams run with the tightest legal queue bound so a round burst
  overloads them deterministically -- exercising backpressure and the
  degradation ladder under load.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from ..experiments.setup import DecodingSetup
from ..pipeline.stages import PipelineConfig
from ..sim.pauli_frame import PauliFrameSimulator
from .server import DecodeService, ServiceConfig

__all__ = ["LoadReport", "run_load", "run_load_async"]


@dataclass
class LoadReport:
    """What one load-generation run did and measured.

    Attributes:
        streams: Concurrent stream sessions driven.
        episodes_per_stream: Episodes fed to each stream.
        rounds_fed: Rounds submitted across all streams.
        rounds_committed: Rounds the service committed (must equal
            ``rounds_fed`` -- nothing lost, nothing dropped).
        wall_seconds: End-to-end wall time of the feeding phase.
        rounds_per_second: Aggregate committed-round throughput.
        solve_p50_ms: Median window-solve latency (submit to resolution,
            including batching, retries and fallbacks), milliseconds.
        solve_p99_ms: 99th-percentile window-solve latency, milliseconds.
        episodes_primary: Episodes decoded entirely on the primary tier.
        episodes_degraded: Episodes with at least one degraded solve.
        reference_mismatches: Primary-tier episodes whose prediction
            differed from the in-process ``decode_batch`` reference
            (always 0; a nonzero value is a service correctness bug).
        logical_errors_primary: Primary-tier episodes whose prediction
            missed the sampled observable flip.
        logical_errors_degraded: Degraded episodes whose prediction
            missed the sampled observable flip.
        service: The service's :meth:`~repro.service.server.DecodeService.report`
            snapshot (recovery counters, per-stream stats, queue events).
    """

    streams: int
    episodes_per_stream: int
    rounds_fed: int
    rounds_committed: int
    wall_seconds: float
    rounds_per_second: float
    solve_p50_ms: float
    solve_p99_ms: float
    episodes_primary: int
    episodes_degraded: int
    reference_mismatches: int
    logical_errors_primary: int
    logical_errors_degraded: int
    service: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """The report as a JSON-ready dict."""
        return {
            "streams": self.streams,
            "episodes_per_stream": self.episodes_per_stream,
            "rounds_fed": self.rounds_fed,
            "rounds_committed": self.rounds_committed,
            "wall_seconds": self.wall_seconds,
            "rounds_per_second": self.rounds_per_second,
            "solve_p50_ms": self.solve_p50_ms,
            "solve_p99_ms": self.solve_p99_ms,
            "episodes_primary": self.episodes_primary,
            "episodes_degraded": self.episodes_degraded,
            "reference_mismatches": self.reference_mismatches,
            "logical_errors_primary": self.logical_errors_primary,
            "logical_errors_degraded": self.logical_errors_degraded,
            "service": self.service,
        }


def _episode_layers(decoder, syndrome: np.ndarray) -> list[np.ndarray]:
    """Split one shot's detector vector into per-round bit vectors."""
    return [
        syndrome[decoder.layer_detectors(t)]
        for t in range(decoder.num_layers)
    ]


async def _feed_stream(
    session, decoder, syndromes: np.ndarray
) -> list[tuple[bool, bool]]:
    """Feed every episode through a session; returns (prediction, degraded)."""
    outcomes: list[tuple[bool, bool]] = []
    for syndrome in syndromes:
        degraded_before = session.stats.degraded_solves
        for bits in _episode_layers(decoder, syndrome):
            await session.submit_round(bits)
        result = await session.finish_episode()
        outcomes.append(
            (
                bool(result.prediction),
                session.stats.degraded_solves > degraded_before,
            )
        )
    return outcomes


async def run_load_async(
    config: PipelineConfig,
    service: ServiceConfig | None = None,
    *,
    streams: int = 4,
    episodes: int = 8,
    seed: int = 2024,
    injector=None,
    burst_streams: int = 0,
    compare_reference: bool = True,
) -> LoadReport:
    """Drive a decode service with deterministic sampled stream load.

    Args:
        config: Decoding-stack configuration (distance, error rate...).
        service: Service tunables; None uses :class:`ServiceConfig`
            defaults.
        streams: Concurrent stream sessions.
        episodes: Episodes (full memory experiments) per stream.
        seed: Sampling seed; the full load sequence is a pure function of
            ``(config, seed, streams, episodes)``.
        injector: Optional :class:`~repro.testing.faults.FaultInjector`
            threaded into every worker (chaos testing).
        burst_streams: How many of the streams run with the tightest
            legal queue bound (one window), so the feeding burst
            overloads them and exercises backpressure plus the
            degradation ladder.
        compare_reference: Replay every episode through the in-process
            ``decode_batch`` reference and count mismatches of
            primary-tier episodes (bit-identity check).

    Returns:
        A :class:`LoadReport`.
    """
    if streams < 1:
        raise ValueError("streams must be >= 1")
    if episodes < 1:
        raise ValueError("episodes must be >= 1")
    if not 0 <= burst_streams <= streams:
        raise ValueError("burst_streams must lie in [0, streams]")
    svc = DecodeService(config, service, injector=injector)
    async with svc:
        decoder = svc.decoder
        setup = DecodingSetup.from_config(
            config, store_root=svc.service.store_root
        )
        sampled = PauliFrameSimulator(
            setup.experiment.circuit, seed=seed
        ).sample(streams * episodes)
        per_stream = [
            sampled.detectors[s * episodes : (s + 1) * episodes]
            for s in range(streams)
        ]
        sessions = [
            svc.open_stream(
                f"stream-{s}",
                queue_limit=(
                    decoder.window if s < burst_streams else None
                ),
            )
            for s in range(streams)
        ]
        start = time.monotonic()
        outcomes = await asyncio.gather(
            *(
                _feed_stream(session, decoder, shots)
                for session, shots in zip(sessions, per_stream)
            )
        )
        wall = time.monotonic() - start
        report = svc.report()

    rounds_fed = streams * episodes * decoder.num_layers
    episodes_primary = episodes_degraded = 0
    reference_mismatches = 0
    errors_primary = errors_degraded = 0
    for s in range(streams):
        reference = (
            decoder.decode_batch(per_stream[s])
            if compare_reference
            else None
        )
        for e, (prediction, degraded) in enumerate(outcomes[s]):
            observed = bool(sampled.observables[s * episodes + e, 0])
            if degraded:
                episodes_degraded += 1
                errors_degraded += prediction != observed
            else:
                episodes_primary += 1
                errors_primary += prediction != observed
                if reference is not None:
                    reference_mismatches += (
                        prediction != bool(reference[e].prediction)
                    )
    stats = report["service"]
    return LoadReport(
        streams=streams,
        episodes_per_stream=episodes,
        rounds_fed=rounds_fed,
        rounds_committed=stats["rounds_committed"],
        wall_seconds=wall,
        rounds_per_second=(
            stats["rounds_committed"] / wall if wall > 0 else 0.0
        ),
        solve_p50_ms=stats["solve_latency"]["p50_s"] * 1e3,
        solve_p99_ms=stats["solve_latency"]["p99_s"] * 1e3,
        episodes_primary=episodes_primary,
        episodes_degraded=episodes_degraded,
        reference_mismatches=reference_mismatches,
        logical_errors_primary=errors_primary,
        logical_errors_degraded=errors_degraded,
        service=report,
    )


def run_load(
    config: PipelineConfig,
    service: ServiceConfig | None = None,
    **kwargs,
) -> LoadReport:
    """Synchronous wrapper of :func:`run_load_async` (own event loop)."""
    return asyncio.run(run_load_async(config, service, **kwargs))
