"""The asyncio decode server: sessions, cross-batching, supervision.

:class:`DecodeService` is the hub the streaming pieces plug into:

* **Sessions.**  Each logical qubit is a long-lived
  :class:`~repro.service.session.StreamSession` opened on the service;
  sessions run sliding-window commit bookkeeping locally and await the
  service for window solves.
* **Cross-batching.**  Solve requests arriving within ``batch_window``
  seconds on the same worker shard are folded into one
  :class:`~repro.service.worker.SolveRequest`, so the warm workers hit
  the batched matching kernels across streams instead of solving one
  window at a time.
* **Warm worker pool.**  Workers are long-lived processes bootstrapped
  from picklable :class:`~repro.pipeline.handle.DecoderHandle` recipes;
  the service resolves the same handles in-process first, so (on fork
  platforms) workers inherit the warm pipeline caches copy-on-write.
* **Supervision.**  Per-batch deadlines (:class:`RetryPolicy.timeout`),
  bounded exponential-backoff retries, crash/hang detection with
  automatic respawn and in-flight replay, and -- when a batch exhausts
  its retries -- a serial in-process fallback on the same tier, so the
  answer stays bit-identical and nothing is dropped.  Every event lands
  in :class:`~repro.service.stats.ServiceStats`.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field

from ..decoders.cascade import CascadeStats
from ..decoders.registry import get_decoder_spec
from ..pipeline.handle import DecoderHandle
from ..pipeline.stages import PipelineConfig
from .session import StreamSession
from .stats import ServiceStats
from .supervisor import RetryPolicy, SupervisedWorker
from .worker import PRIMARY_TIER, SolveRequest, build_tier_solvers, service_worker_main

__all__ = ["DecodeService", "ServiceConfig"]

#: Supervision poll period (crash/hang detection granularity), seconds.
_SUPERVISION_POLL = 0.01


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`DecodeService`.

    Attributes:
        window: Sliding-window span (layers) of every stream.
        commit: Layers committed per window step.
        workers: Warm worker processes (streams are sharded over them).
            0 runs *inline*: solves execute in the server process on the
            same batched kernels with no IPC and no supervision -- the
            "equivalent batch path" baseline, also handy for debugging.
        batch_window: Seconds a shard dispatcher waits to cross-batch
            concurrent solve requests (0 batches only what is already
            queued).
        max_batch: Cap on requests folded into one worker batch.
        policy: Deadline/retry/backoff policy of every solve batch.
        degrade_tier: Registry tier overloaded streams shed onto (must
            carry the ``"service-tier"`` capability); None disables the
            ladder.  Shorthand for a two-rung ``tiers`` ladder.
        tiers: Full multi-rung degradation ladder, cheapest last (each
            rung must carry ``"service-tier"``).  Overrides
            ``degrade_tier`` when given; streams shed one rung per
            backpressure event and promote one rung per drained commit
            (see :class:`~repro.decoders.cascade.TierLadder`).
        queue_limit: Default per-stream bound on buffered uncommitted
            layers.
        store_root: Artifact-store root for worker warm-starts (None:
            environment default).
    """

    window: int = 6
    commit: int = 2
    workers: int = 2
    batch_window: float = 0.002
    max_batch: int = 64
    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_retries=3, backoff=0.05, timeout=30.0)
    )
    degrade_tier: str | None = "union-find"
    tiers: tuple[str, ...] | None = None
    queue_limit: int = 32
    store_root: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 solves inline)")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        for tier in self.tier_ladder()[1:]:
            spec = get_decoder_spec(tier)
            if "service-tier" not in spec.capabilities:
                raise ValueError(
                    f"degrade tier {tier!r} lacks the "
                    "'service-tier' capability; eligible tiers are "
                    "registry decoders tagged 'service-tier'"
                )

    def tier_ladder(self) -> tuple[str, ...]:
        """The ordered shed ladder every stream runs, primary first."""
        if self.tiers is not None:
            return (PRIMARY_TIER, *self.tiers)
        if self.degrade_tier is not None:
            return (PRIMARY_TIER, self.degrade_tier)
        return (PRIMARY_TIER,)


@dataclass
class _PendingSolve:
    """One stream's window-solve request awaiting resolution."""

    active: tuple[int, ...]
    tier: str
    future: asyncio.Future
    submitted: float


@dataclass
class _Batch:
    """One dispatched worker batch and its retry state."""

    batch_id: int
    shard: int
    tier: str
    requests: list[_PendingSolve]
    attempt: int = 0
    deadline: float = float("inf")


_STOP = object()


class DecodeService:
    """Always-on streaming decode service over a warm worker pool.

    Args:
        config: Decoding-stack configuration all streams decode under.
        service: Service tunables (:class:`ServiceConfig`).
        injector: Optional deterministic
            :class:`~repro.testing.faults.FaultInjector` threaded into
            every worker (chaos testing; None in production).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly::

        service = DecodeService(config, ServiceConfig(workers=2))
        async with service:
            stream = service.open_stream("q0")
            ...
    """

    def __init__(
        self,
        config: PipelineConfig,
        service: ServiceConfig | None = None,
        *,
        injector=None,
    ) -> None:
        self.config = config
        self.service = service if service is not None else ServiceConfig()
        self.injector = injector
        self.stats = ServiceStats()
        #: Per-tier routed/solved/escalated/latency counters -- the same
        #: schema the decoder cascade reports (escalations here are
        #: backpressure sheds off the tier).
        self.tier_stats = CascadeStats()
        self.decoder = None
        self._handles: dict[str, DecoderHandle] = {}
        self._serial_solvers = {}
        self._workers: list[SupervisedWorker] = []
        self._dispatch: list[asyncio.Queue] = []
        self._sessions: dict[str, StreamSession] = {}
        self._inflight: dict[int, _Batch] = {}
        self._batch_ids = itertools.count()
        self._tasks: list[asyncio.Task] = []
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Materialise decoders, spawn the pool, start the event loops."""
        if self._running:
            raise RuntimeError("service already started")
        cfg = self.service
        self._handles = {
            PRIMARY_TIER: DecoderHandle.create(
                self.config,
                PRIMARY_TIER,
                store_root=cfg.store_root,
                window=cfg.window,
                commit=cfg.commit,
            )
        }
        for tier in cfg.tier_ladder()[1:]:
            self._handles[tier] = DecoderHandle.create(
                self.config, tier, store_root=cfg.store_root
            )
        # Resolve in-process first: sessions and the serial fallback use
        # these objects, and forked workers inherit the warm caches.
        self._serial_solvers = build_tier_solvers(self._handles)
        self.decoder = self._serial_solvers[PRIMARY_TIER].windowed
        if cfg.workers == 0:
            # Inline mode: one dispatch shard, solves run in-process on
            # the serial tier solvers; no pool, no pump, no supervision.
            self._dispatch = [asyncio.Queue()]
            self._running = True
            self.stats.mark_started()
            self._tasks = [asyncio.ensure_future(self._dispatch_loop(0))]
            return
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context()
        self._ctx = ctx
        bootstrap = (self._handles, self.injector)
        self._workers = [
            SupervisedWorker(service_worker_main, bootstrap, ctx)
            for _ in range(cfg.workers)
        ]
        for worker in self._workers:
            worker.spawn()
        self._dispatch = [asyncio.Queue() for _ in range(cfg.workers)]
        self._running = True
        self.stats.mark_started()
        self._tasks = [
            asyncio.ensure_future(self._dispatch_loop(shard))
            for shard in range(cfg.workers)
        ]
        self._tasks.extend(
            asyncio.ensure_future(self._pump_results(shard))
            for shard in range(cfg.workers)
        )
        self._tasks.append(asyncio.ensure_future(self._supervise()))

    async def stop(self) -> None:
        """Stop the loops and tear the worker pool down."""
        if not self._running:
            return
        self._running = False
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        for worker in self._workers:
            worker.shutdown()
        self._workers = []

    async def __aenter__(self) -> "DecodeService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------

    def open_stream(
        self, stream_id: str, *, queue_limit: int | None = None
    ) -> StreamSession:
        """Open a long-lived stream session, sharded onto a worker.

        Args:
            stream_id: Unique stream name.
            queue_limit: Override of the service-default bounded queue.

        Raises:
            RuntimeError: Before :meth:`start` or on a duplicate id.
        """
        if not self._running:
            raise RuntimeError("start the service before opening streams")
        if stream_id in self._sessions:
            raise RuntimeError(f"stream {stream_id!r} is already open")
        shard = len(self._sessions) % max(1, self.service.workers)
        session = StreamSession(
            stream_id,
            self,
            self.decoder,
            shard=shard,
            queue_limit=(
                queue_limit if queue_limit is not None
                else self.service.queue_limit
            ),
            tiers=self.service.tier_ladder(),
        )
        self._sessions[stream_id] = session
        return session

    def note_committed(self, layers: int) -> None:
        """Account committed layers into the service throughput stats."""
        self.stats.rounds_committed += layers

    def note_shed(self, tier: str) -> None:
        """Count one backpressure shed off ``tier`` in the tier stats."""
        self.tier_stats.tier(tier).escalated += 1

    def report(self) -> dict:
        """Service- plus per-stream counters as a JSON-ready dict."""
        return {
            "service": self.stats.as_dict(),
            "tiers": self.tier_stats.as_dict(),
            "streams": {
                stream_id: session.stats.as_dict()
                for stream_id, session in self._sessions.items()
            },
            "degradations": sum(
                s.stats.degradations for s in self._sessions.values()
            ),
            "promotions": sum(
                s.stats.promotions for s in self._sessions.values()
            ),
            "backpressure_events": sum(
                s.stats.backpressure_events for s in self._sessions.values()
            ),
        }

    # ------------------------------------------------------------------
    # Solve dispatch
    # ------------------------------------------------------------------

    async def solve(
        self, session: StreamSession, tier: str, active: list[int]
    ) -> list[tuple[int, int]]:
        """Solve one window on the pool; resolves after retries/fallback."""
        loop = asyncio.get_running_loop()
        pending = _PendingSolve(
            active=tuple(int(i) for i in active),
            tier=tier,
            future=loop.create_future(),
            submitted=time.monotonic(),
        )
        tier_stats = self.tier_stats.tier(tier)
        tier_stats.routed += 1
        await self._dispatch[session.shard].put(pending)
        edges = await pending.future
        elapsed = time.monotonic() - pending.submitted
        self.stats.solve_latency.record(elapsed)
        tier_stats.solved += 1
        tier_stats.latency.record(elapsed)
        return edges

    async def _dispatch_loop(self, shard: int) -> None:
        cfg = self.service
        queue = self._dispatch[shard]
        while True:
            first = await queue.get()
            batch = [first]
            if cfg.batch_window > 0 and queue.qsize() < cfg.max_batch - 1:
                # One timer per batch: let the window elapse, then drain
                # whatever arrived (cheaper than a wait_for per request).
                await asyncio.sleep(cfg.batch_window)
            while len(batch) < cfg.max_batch and not queue.empty():
                batch.append(queue.get_nowait())
            by_tier: dict[str, list[_PendingSolve]] = {}
            for pending in batch:
                by_tier.setdefault(pending.tier, []).append(pending)
            for tier, requests in by_tier.items():
                self.stats.batches += 1
                self.stats.batched_requests += len(requests)
                if not self._workers:
                    edge_lists = self._serial_solvers[tier].solve_batch(
                        [list(p.active) for p in requests]
                    )
                    for pending, edges in zip(requests, edge_lists):
                        if not pending.future.done():
                            pending.future.set_result(
                                [(int(u), int(v)) for u, v in edges]
                            )
                    continue
                record = _Batch(
                    batch_id=next(self._batch_ids),
                    shard=shard,
                    tier=tier,
                    requests=requests,
                )
                self._submit_batch(record)

    def _submit_batch(self, record: _Batch) -> None:
        worker = self._workers[record.shard]
        record.deadline = self.service.policy.deadline(time.monotonic())
        self._inflight[record.batch_id] = record
        worker.inflight[record.batch_id] = record
        worker.submit(
            SolveRequest(
                batch_id=record.batch_id,
                attempt=record.attempt,
                tier=record.tier,
                actives=tuple(p.active for p in record.requests),
            )
        )

    def _resolve(self, record: _Batch, edge_lists) -> None:
        for pending, edges in zip(record.requests, edge_lists):
            if not pending.future.done():
                pending.future.set_result(
                    [(int(u), int(v)) for u, v in edges]
                )

    def _retry(self, record: _Batch) -> None:
        record.attempt += 1
        policy = self.service.policy
        if policy.exhausted(record.attempt):
            # Terminal for the pool: solve in the server's own process on
            # the same tier (bit-identical), so nothing is ever dropped.
            self.stats.recovery.serial_fallbacks += 1
            solver = self._serial_solvers[record.tier]
            edge_lists = solver.solve_batch(
                [list(p.active) for p in record.requests]
            )
            self._resolve(record, edge_lists)
            return
        self.stats.recovery.retries += 1
        task = asyncio.ensure_future(
            self._replay_later(record, policy.delay(record.attempt))
        )
        self._tasks.append(task)

    async def _replay_later(self, record: _Batch, delay: float) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        if self._running:
            self._submit_batch(record)

    # ------------------------------------------------------------------
    # Results and supervision
    # ------------------------------------------------------------------

    def _result_get(self, shard: int):
        """Block for one result, then drain extras: one executor
        round-trip can carry a whole burst of completions.

        Re-reads the worker's queue each round so a respawned incarnation
        (which brings a fresh queue) is picked up within one timeout; a
        queue torn down mid-``get`` surfaces as OSError/ValueError and is
        retried the same way.
        """
        while True:
            if not self._running or shard >= len(self._workers):
                return _STOP
            queue = self._workers[shard].result_queue
            if queue is None:
                time.sleep(0.01)
                continue
            try:
                messages = [queue.get(timeout=0.1)]
            except queue_module.Empty:
                continue
            except (OSError, ValueError):
                time.sleep(0.01)
                continue
            while True:
                try:
                    messages.append(queue.get_nowait())
                except (queue_module.Empty, OSError, ValueError):
                    return messages

    async def _pump_results(self, shard: int) -> None:
        loop = asyncio.get_running_loop()
        while self._running:
            messages = await loop.run_in_executor(
                None, self._result_get, shard
            )
            if messages is _STOP:
                return
            for batch_id, status, payload in messages:
                record = self._inflight.pop(batch_id, None)
                if record is None:
                    continue  # late result of a batch already replayed
                self._workers[record.shard].inflight.pop(batch_id, None)
                if status == "ok":
                    self._resolve(record, payload)
                else:
                    self.stats.recovery.worker_errors += 1
                    self._retry(record)

    def _reclaim_worker(self, shard: int, *, hang: bool) -> None:
        """Respawn a dead/hung worker and replay its in-flight batches."""
        worker = self._workers[shard]
        stranded = list(worker.inflight.values())
        for record in stranded:
            self._inflight.pop(record.batch_id, None)
        worker.inflight.clear()
        worker.kill()
        worker.spawn()
        self.stats.recovery.respawns += 1
        if hang:
            self.stats.recovery.hangs += 1
        else:
            self.stats.recovery.crashes += 1
        for record in stranded:
            self._retry(record)

    async def _supervise(self) -> None:
        while self._running:
            await asyncio.sleep(_SUPERVISION_POLL)
            now = time.monotonic()
            for shard, worker in enumerate(self._workers):
                if not worker.is_alive():
                    self._reclaim_worker(shard, hang=False)
                    continue
                if any(
                    now > record.deadline
                    for record in worker.inflight.values()
                ):
                    self._reclaim_worker(shard, hang=True)
