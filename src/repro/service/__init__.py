"""The always-on streaming decode service.

Batch experiments (:mod:`repro.experiments`) run to completion or die; a
decoder that keeps up with the hardware must instead run as a long-lived
*service*: per-logical-qubit stream sessions with sliding-window
semantics, cross-batched window solves on a warm worker pool, and the
robustness machinery -- deadlines, retries, respawn, backpressure,
degradation -- to survive real traffic.  See DESIGN.md ("Streaming
decode service") for the architecture.

Modules:

* :mod:`repro.service.supervisor` -- the retry/backoff/hang-timeout
  policy and the supervised execution primitives shared with the
  resilient campaign runner.
* :mod:`repro.service.stats` -- latency/throughput/queue-depth counters
  at stream and service scope.
* :mod:`repro.service.worker` -- the long-lived worker process: decoder
  tiers materialised once from a
  :class:`~repro.pipeline.handle.DecoderHandle`.
* :mod:`repro.service.session` -- one stream session: bounded round
  queue, window assembly, commit bookkeeping, degradation ladder.
* :mod:`repro.service.server` -- the asyncio :class:`DecodeService`.
* :mod:`repro.service.loadgen` -- the deterministic load generator the
  CLI, CI smoke job and ``bench_ext_service.py`` drive.

The supervisor and stats layers are dependency-free and imported
eagerly (the campaign runner pulls them in); the server stack -- which
depends on the decoder/pipeline layers -- resolves lazily to keep
``import repro.experiments`` cycle-free.
"""

from .stats import LatencyRecorder, ServiceStats, StreamStats
from .supervisor import (
    RecoveryStats,
    RetryPolicy,
    SupervisedWorker,
    supervised_map,
)

__all__ = [
    "DecodeService",
    "LatencyRecorder",
    "LoadReport",
    "RecoveryStats",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceStats",
    "StreamBackpressure",
    "StreamSession",
    "StreamStats",
    "SupervisedWorker",
    "run_load",
    "supervised_map",
]

_LAZY = {
    "DecodeService": ("repro.service.server", "DecodeService"),
    "ServiceConfig": ("repro.service.server", "ServiceConfig"),
    "StreamBackpressure": ("repro.service.session", "StreamBackpressure"),
    "StreamSession": ("repro.service.session", "StreamSession"),
    "LoadReport": ("repro.service.loadgen", "LoadReport"),
    "run_load": ("repro.service.loadgen", "run_load"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
