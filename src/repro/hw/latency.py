"""FPGA timing model shared by the hardware decoders (paper section 5.4).

Both Astrea and Astrea-G target a 250 MHz implementation on a Xilinx Zynq
UltraScale+ FPGA, i.e. a 4 ns clock period.  The real-time budget is the
1 us syndrome-extraction cadence of Google Sycamore, or 250 cycles.

Astrea's latency decomposes into:

* ``HW + 1`` cycles to stream the active weights from the Global Weight
  Table into the Active Weight Array, and
* a decode phase whose cycle count depends only on the Hamming weight:
  0 cycles for the trivial weights 0-2, 1 cycle for 3-6 (a single
  HW6Decoder evaluation), 11 cycles for 7-8 (7 pre-match iterations), and
  103 cycles for 9-10 (63 pre-match iterations),

for a worst case of ``103 + 11 = 114`` cycles = 456 ns at Hamming
weight 10 -- the numbers reported in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FpgaTiming", "astrea_decode_cycles", "astrea_total_cycles"]


@dataclass(frozen=True)
class FpgaTiming:
    """Clocking parameters of the FPGA implementation.

    Attributes:
        clock_mhz: Clock frequency in MHz (paper: 250 MHz).
        realtime_budget_ns: Real-time decoding deadline in nanoseconds
            (paper: 1 us, the Sycamore syndrome cadence).
    """

    clock_mhz: float = 250.0
    realtime_budget_ns: float = 1000.0

    @property
    def cycle_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1000.0 / self.clock_mhz

    @property
    def budget_cycles(self) -> int:
        """Real-time budget expressed in clock cycles."""
        return int(self.realtime_budget_ns / self.cycle_ns)

    def to_ns(self, cycles: int) -> float:
        """Convert a cycle count to nanoseconds."""
        return cycles * self.cycle_ns


def astrea_decode_cycles(hamming_weight: int) -> int:
    """Astrea's decode-phase cycle count for a given Hamming weight.

    Args:
        hamming_weight: Number of non-zero syndrome bits (0..10).

    Returns:
        Decode cycles per the paper's section 5.4 breakdown.
    """
    if hamming_weight < 0:
        raise ValueError("hamming_weight must be non-negative")
    if hamming_weight <= 2:
        return 0
    if hamming_weight <= 6:
        return 1
    if hamming_weight <= 8:
        return 11
    if hamming_weight <= 10:
        return 103
    raise ValueError(
        f"Astrea cannot decode Hamming weight {hamming_weight} (max 10)"
    )


def astrea_total_cycles(hamming_weight: int) -> int:
    """Astrea's total latency in cycles, including the GWT transfer.

    Hamming weights 0-2 are handled inline (0 cycles, per Figure 9);
    otherwise the ``HW + 1``-cycle weight transfer is added to the decode
    phase.
    """
    if hamming_weight <= 2:
        return 0
    return (hamming_weight + 1) + astrea_decode_cycles(hamming_weight)
