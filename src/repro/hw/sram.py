"""SRAM storage model for Astrea-G (paper section 7.5, Table 6).

The paper reports the on-chip storage of each Astrea-G component for one
basis (X or Z) of distance 7 and 9 codes.  The dominant term is the Global
Weight Table -- exactly one byte per pair of syndrome bits, so ``l^2``
bytes for a syndrome-vector length ``l`` (36 KB at d = 7, ~156 KB at
d = 9).  The remaining structures scale with the maximum Hamming weight the
design must buffer:

* the Local Weight Table holds the filtered active-pair weights;
* each priority-queue entry stores one pre-matching: up to ``HW_max / 2``
  pairs of syndrome-bit indices plus an 8-bit weight each, and a score;
* the pipeline latches hold one pre-matching per stage and fetch lane;
* the MWPM register stores the best complete matching found so far.

The structure-level formulas below reproduce the paper's table to within
rounding; exact RTL packing details (ECC bits, alignment) are out of scope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AstreaGStorageModel"]


def _index_bits(syndrome_length: int) -> int:
    """Bits needed to address one syndrome bit."""
    return max(1, math.ceil(math.log2(syndrome_length)))


@dataclass(frozen=True)
class AstreaGStorageModel:
    """Parametric SRAM model of one Astrea-G instance (one basis).

    Args:
        distance: Code distance.
        max_hamming_weight: Largest Hamming weight buffered by the design
            (the paper's d = 7 analysis tops out near 16, d = 9 near 20).
        fetch_width: ``F`` priority queues (paper default 2).
        queue_capacity: ``E`` entries per queue (paper default 8).
        pipeline_stages: Fetch/Sort/Commit stages (3).
        weight_bits: Bits per stored weight (8).
        score_bits: Bits per priority-queue score (16).
    """

    distance: int
    max_hamming_weight: int = 20
    fetch_width: int = 2
    queue_capacity: int = 8
    pipeline_stages: int = 3
    weight_bits: int = 8
    score_bits: int = 16

    @property
    def syndrome_length(self) -> int:
        """Per-basis syndrome-vector length ``l = (d+1)(d^2-1)/2``."""
        d = self.distance
        return (d + 1) * (d * d - 1) // 2

    def gwt_bytes(self) -> int:
        """Global Weight Table: one byte per syndrome-bit pair."""
        return self.syndrome_length**2

    def lwt_bytes(self) -> int:
        """Local Weight Table: pairwise weights of the active bits.

        A ``HW_max x HW_max`` array of 8-bit weights, double-buffered so a
        new syndrome can stream in while the previous one decodes.
        """
        return 2 * self.max_hamming_weight**2 * self.weight_bits // 8

    def prematching_bits(self) -> int:
        """Bits of one pre-matching as buffered by the pipeline.

        Besides the committed pairs (two syndrome-bit indices and an 8-bit
        weight each) and the score, each buffered pre-matching carries its
        sorted candidate-pair array -- the Sort-stage output it was created
        from -- so the Fetch stage can resume expansion without re-reading
        the LWT.  That array (one index + weight per possible partner)
        dominates the entry size, which is what pushes the paper's queue
        storage into the multi-KB range.
        """
        pairs = self.max_hamming_weight // 2
        pair_bits = 2 * _index_bits(self.syndrome_length) + self.weight_bits
        candidate_bits = self.max_hamming_weight * (
            _index_bits(self.syndrome_length) + self.weight_bits
        )
        matched_mask_bits = self.max_hamming_weight
        return (
            pairs * pair_bits
            + candidate_bits
            + matched_mask_bits
            + self.score_bits
        )

    def priority_queue_bytes(self) -> int:
        """All ``F`` priority queues of ``E`` pre-matchings each."""
        entries = self.fetch_width * self.queue_capacity
        return math.ceil(entries * self.prematching_bits() / 8)

    def pipeline_latch_bytes(self) -> int:
        """Latches: one pre-matching per stage per fetch lane, plus the
        sorted candidate-pair array in the Sort stage."""
        lanes = self.fetch_width * self.pipeline_stages
        sort_array = self.max_hamming_weight * (
            _index_bits(self.syndrome_length) + self.weight_bits
        )
        return math.ceil((lanes * self.prematching_bits() + sort_array) / 8)

    def mwpm_register_bytes(self) -> int:
        """The best complete matching: HW_max/2 pairs + total weight."""
        pairs = self.max_hamming_weight // 2
        bits = pairs * 2 * _index_bits(self.syndrome_length) + self.weight_bits
        return math.ceil(bits / 8)

    def total_bytes(self) -> int:
        """Aggregate SRAM footprint (the Table 6 "Total" row)."""
        return (
            self.gwt_bytes()
            + self.lwt_bytes()
            + self.priority_queue_bytes()
            + self.pipeline_latch_bytes()
            + self.mwpm_register_bytes()
        )

    def table_rows(self) -> list[tuple[str, int]]:
        """The component rows of paper Table 6, in bytes."""
        return [
            ("Global Weight Table (GWT)", self.gwt_bytes()),
            ("Local Weight Table (LWT)", self.lwt_bytes()),
            ("Priority Queues", self.priority_queue_bytes()),
            ("Pipeline Latches", self.pipeline_latch_bytes()),
            ("MWPM Register", self.mwpm_register_bytes()),
            ("Total", self.total_bytes()),
        ]
