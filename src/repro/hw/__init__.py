"""Hardware models: FPGA timing, SRAM, bandwidth, syndrome compression."""

from .bandwidth import BandwidthModel
from .compression import (
    CompressionReport,
    RunLengthCompressor,
    SparseIndexCompressor,
    SyndromeCompressor,
    compression_census,
)
from .latency import FpgaTiming, astrea_decode_cycles, astrea_total_cycles
from .sram import AstreaGStorageModel

__all__ = [
    "AstreaGStorageModel",
    "BandwidthModel",
    "CompressionReport",
    "FpgaTiming",
    "RunLengthCompressor",
    "SparseIndexCompressor",
    "SyndromeCompressor",
    "astrea_decode_cycles",
    "astrea_total_cycles",
    "compression_census",
]
