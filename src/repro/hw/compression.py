"""Syndrome compression (paper section 7.6).

Astrea-G needs each round's syndrome across the fridge boundary fast
enough to leave decode time inside the 1 us budget.  The paper notes that
"as syndromes are typically compressible, we can further employ Syndrome
Compression to reduce bandwidth requirement" (citing the AFS paper's
scheme).  This module implements two lossless codecs exploiting syndrome
sparsity and quantifies their payoff:

* :class:`SparseIndexCompressor` -- a count header followed by the indices
  of the set bits; near-optimal for the low-Hamming-weight syndromes that
  dominate (Table 2);
* :class:`RunLengthCompressor` -- Golomb-style unary-terminated run
  lengths of zeros; robust when defects cluster.

Both fall back to transmitting the raw bitmap (plus a one-bit mode flag)
whenever encoding would expand the syndrome, so the compressed size is
never more than ``length + 1`` bits.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..circuits.memory import MemoryExperiment
from ..sim.pauli_frame import PauliFrameSimulator

__all__ = [
    "SyndromeCompressor",
    "SparseIndexCompressor",
    "RunLengthCompressor",
    "CompressionReport",
    "compression_census",
]


class SyndromeCompressor(ABC):
    """A lossless codec for fixed-length syndrome bit vectors.

    Args:
        length: Number of bits per syndrome.
    """

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ValueError("length must be positive")
        self.length = length

    # -- abstract core --------------------------------------------------

    @abstractmethod
    def _encode_bits(self, active: list[int]) -> list[int]:
        """Encode the active-bit indices as a bit list (no fallback)."""

    @abstractmethod
    def _decode_bits(self, bits: list[int]) -> list[int]:
        """Inverse of :meth:`_encode_bits`."""

    # -- public API with raw-bitmap fallback -----------------------------

    def encode(self, syndrome: np.ndarray) -> list[int]:
        """Encode a syndrome; first bit flags compressed (1) vs raw (0)."""
        syndrome = np.asarray(syndrome).astype(bool)
        if syndrome.shape != (self.length,):
            raise ValueError(
                f"expected a {self.length}-bit syndrome, got {syndrome.shape}"
            )
        active = [int(i) for i in np.nonzero(syndrome)[0]]
        payload = self._encode_bits(active)
        if len(payload) >= self.length:
            return [0] + [int(b) for b in syndrome]
        return [1] + payload

    def decode(self, bits: list[int]) -> np.ndarray:
        """Decode an :meth:`encode` output back to the syndrome vector."""
        if not bits:
            raise ValueError("empty payload")
        mode, payload = bits[0], bits[1:]
        syndrome = np.zeros(self.length, dtype=bool)
        if mode == 0:
            if len(payload) != self.length:
                raise ValueError("raw payload has the wrong length")
            syndrome[:] = [bool(b) for b in payload]
            return syndrome
        for index in self._decode_bits(payload):
            if not 0 <= index < self.length:
                raise ValueError(f"decoded index {index} out of range")
            syndrome[index] = True
        return syndrome

    def encoded_bits(self, syndrome: np.ndarray) -> int:
        """Number of bits :meth:`encode` produces for a syndrome."""
        return len(self.encode(syndrome))

    # -- helpers ----------------------------------------------------------

    @property
    def index_bits(self) -> int:
        """Bits needed to address one syndrome position."""
        return max(1, math.ceil(math.log2(self.length)))

    @staticmethod
    def _to_bits(value: int, width: int) -> list[int]:
        return [(value >> k) & 1 for k in reversed(range(width))]

    @staticmethod
    def _from_bits(bits: list[int]) -> int:
        value = 0
        for b in bits:
            value = (value << 1) | int(b)
        return value


class SparseIndexCompressor(SyndromeCompressor):
    """Count header + explicit set-bit indices.

    Encoded size: ``index_bits * (1 + hamming_weight)`` bits, i.e. ~9 bits
    per defect for a d = 9 syndrome -- a 10-40x round-trip saving at the
    Hamming weights that dominate Table 2.
    """

    @property
    def _count_bits(self) -> int:
        """Header width: must represent counts 0..length inclusive."""
        return max(1, math.ceil(math.log2(self.length + 1)))

    def _encode_bits(self, active: list[int]) -> list[int]:
        bits = self._to_bits(len(active), self._count_bits)
        for index in active:
            bits.extend(self._to_bits(index, self.index_bits))
        return bits

    def _decode_bits(self, bits: list[int]) -> list[int]:
        header = self._count_bits
        w = self.index_bits
        if len(bits) < header:
            raise ValueError("payload too short for the count header")
        count = self._from_bits(bits[:header])
        if len(bits) != header + w * count:
            raise ValueError("payload length disagrees with the count header")
        return [
            self._from_bits(bits[header + w * k : header + w * (k + 1)])
            for k in range(count)
        ]


class RunLengthCompressor(SyndromeCompressor):
    """Zero-run lengths in fixed-width chunks with unary continuation.

    Each run of zeros before a set bit is emitted as ``chunk`` bits; a run
    longer than a chunk can express is continued with an all-ones escape
    chunk.  A final escape-terminated tail covers trailing zeros.
    """

    def __init__(self, length: int, chunk: int = 5) -> None:
        super().__init__(length)
        if chunk < 2:
            raise ValueError("chunk must be >= 2")
        self.chunk = chunk
        self._escape = (1 << chunk) - 1

    def _encode_bits(self, active: list[int]) -> list[int]:
        bits: list[int] = []
        previous = -1
        for index in active:
            run = index - previous - 1
            while run >= self._escape:
                bits.extend(self._to_bits(self._escape, self.chunk))
                run -= self._escape
            bits.extend(self._to_bits(run, self.chunk))
            previous = index
        # Terminator: an escape chunk marks "no more set bits".
        bits.extend(self._to_bits(self._escape, self.chunk))
        return bits

    def _decode_bits(self, bits: list[int]) -> list[int]:
        if len(bits) % self.chunk:
            raise ValueError("payload is not chunk-aligned")
        active: list[int] = []
        position = 0
        run = 0
        cursor = 0
        terminated = False
        while cursor < len(bits):
            value = self._from_bits(bits[cursor : cursor + self.chunk])
            cursor += self.chunk
            if value == self._escape:
                if cursor == len(bits):
                    terminated = True
                    break
                run += self._escape
                continue
            position += run + value
            active.append(position)
            position += 1
            run = 0
        if not terminated:
            raise ValueError("payload missing its terminator chunk")
        return active


@dataclass
class CompressionReport:
    """Aggregate compression statistics over sampled syndromes.

    Attributes:
        shots: Number of syndromes measured.
        raw_bits: Bits per uncompressed syndrome.
        mean_bits: Mean encoded size in bits.
        max_bits: Largest encoded size observed.
        mean_ratio: ``raw_bits / mean_bits``.
    """

    shots: int
    raw_bits: int
    mean_bits: float
    max_bits: int

    @property
    def mean_ratio(self) -> float:
        """Average compression factor."""
        return self.raw_bits / self.mean_bits if self.mean_bits else float("inf")


def compression_census(
    experiment: MemoryExperiment,
    compressor: SyndromeCompressor,
    shots: int,
    *,
    seed: int | None = None,
) -> CompressionReport:
    """Measure a codec's compression on sampled memory-experiment syndromes.

    Args:
        experiment: The memory-experiment circuit bundle.
        compressor: Codec sized for the experiment's detector count.
        shots: Syndromes to sample.
        seed: Sampler seed.

    Returns:
        The aggregate :class:`CompressionReport`.
    """
    if compressor.length != experiment.num_detectors:
        raise ValueError(
            "compressor length must equal the experiment's detector count"
        )
    sample = PauliFrameSimulator(experiment.circuit, seed=seed).sample(shots)
    sizes = [compressor.encoded_bits(det) for det in sample.detectors]
    return CompressionReport(
        shots=shots,
        raw_bits=compressor.length,
        mean_bits=float(np.mean(sizes)),
        max_bits=int(np.max(sizes)),
    )
