"""Syndrome-bandwidth model (paper section 7.6, Table 7).

Every round, the ``d^2 - 1`` parity qubits produce one syndrome bit each
that must cross the fridge boundary to the decoder.  With a 1 us round
cadence, time spent transmitting is time the decoder cannot spend
searching: at 20 MBps half the period is gone and Astrea-G's logical error
rate degrades by ~33% (Table 7), while 50 MBps is already indistinguishable
from infinite bandwidth.

The model converts a link bandwidth into a transmission time and hence a
residual decode budget; the Table 7 bench then re-runs Astrea-G with that
shrunken budget to measure the LER impact.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BandwidthModel"]


@dataclass(frozen=True)
class BandwidthModel:
    """Syndrome-transmission timing for one code distance.

    Args:
        distance: Code distance (sets the per-round bit count).
        round_ns: Syndrome-extraction cadence (paper: 1 us on Sycamore).
    """

    distance: int
    round_ns: float = 1000.0

    @property
    def bits_per_round(self) -> int:
        """Syndrome bits produced per round (all parity qubits)."""
        return self.distance**2 - 1

    def transmission_ns(self, bandwidth_mbps: float) -> float:
        """Time to ship one round's syndrome at a given bandwidth.

        Args:
            bandwidth_mbps: Link bandwidth in megabytes per second.

        Returns:
            Transmission time in nanoseconds.
        """
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        bytes_per_round = self.bits_per_round / 8.0
        return bytes_per_round / bandwidth_mbps * 1000.0

    def decode_budget_ns(self, bandwidth_mbps: float) -> float:
        """Decode time left in the round after transmission."""
        return max(0.0, self.round_ns - self.transmission_ns(bandwidth_mbps))

    def bandwidth_for_transmission(self, transmission_ns: float) -> float:
        """Bandwidth (MBps) that yields a given transmission time.

        Inverse of :meth:`transmission_ns`; reproduces the paper's Table 7
        mapping ``bandwidth = bits / (8 * transmission_ns)`` in MBps.
        """
        if transmission_ns <= 0:
            return float("inf")
        bytes_per_round = self.bits_per_round / 8.0
        return bytes_per_round / transmission_ns * 1000.0
