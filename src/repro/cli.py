"""Command-line experiment runner.

The paper's artifact drives everything through one binary
(``mpirun -np <X> ./astrea <output-file> <experiment-no> <args...>``); this
module reproduces that workflow with named subcommands::

    python -m repro info      --distance 7
    python -m repro census    --distance 7 --p 1e-4 --shots 100000
    python -m repro ler       --distance 5 --p 1e-3 --decoder astrea --shots 50000
    python -m repro sweep     --distance 7 --p-min 5e-4 --p-max 2e-3 --points 4
    python -m repro latency   --distance 7 --p 1e-3 --shots 20000
    python -m repro campaign  --distance 5 --p 1e-3 --shots 200000 \
                              --checkpoint-dir runs/d5 --resume
    python -m repro bandwidth --distance 9 --p 1.5e-3 --budget-min 500
    python -m repro stratified --distance 7 --p 1e-4 --trials 1000
    python -m repro cascade-tune --distance 5 --p 2e-3 --shots 20000

Every command prints human-readable rows and, with ``--output FILE``,
appends machine-readable lines to a file (the artifact's convention).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .decoders import registry as decoder_registry
from .decoders.base import Decoder
from .experiments.hamming import hamming_weight_census
from .experiments.importance import estimate_ler_stratified
from .experiments.memory import run_memory_experiment
from .experiments.setup import DecodingSetup
from .hw.bandwidth import BandwidthModel

__all__ = ["main", "build_parser", "make_decoder", "DECODER_NAMES"]

#: Decoder names accepted by ``--decoder`` -- the registry decoders
#: carrying the ``"cli"`` capability, in registration order.
DECODER_NAMES = decoder_registry.decoder_names("cli")


def make_decoder(
    name: str,
    setup: DecodingSetup,
    *,
    weight_threshold: float = 7.0,
    budget_ns: float = 1000.0,
) -> Decoder:
    """Instantiate a decoder by CLI name against a built setup.

    Thin wrapper over :func:`repro.decoders.registry.make_decoder` with
    the CLI's uniform knobs; factories that do not declare a knob simply
    do not receive it.

    Args:
        name: One of :data:`DECODER_NAMES`.
        setup: The decoding stack to attach to.
        weight_threshold: Astrea-G's ``W_th``.
        budget_ns: Real-time budget for Astrea-G.

    Returns:
        A ready-to-use decoder.
    """
    return decoder_registry.make_decoder(
        name, setup, weight_threshold=weight_threshold, budget_ns=budget_ns
    )


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------


def _emit(args: argparse.Namespace, human: list[str], machine: list[str]) -> None:
    """Print rows; append machine rows to --output if given."""
    print("\n".join(human))
    if args.output:
        with open(args.output, "a", encoding="utf-8") as handle:
            for line in machine:
                handle.write(line + "\n")


def cmd_info(args: argparse.Namespace) -> int:
    """Code resources and storage footprint (paper Tables 1 and 6)."""
    from .pipeline import default_artifact_store, stage_cache

    setup = DecodingSetup.build(args.distance, args.p)
    code = setup.experiment.code
    human = [
        f"distance             : {code.distance}",
        f"data qubits          : {code.num_data_qubits}",
        f"parity qubits        : {code.num_parity_qubits}",
        f"total qubits         : {code.num_qubits}",
        f"syndrome length      : {code.syndrome_vector_length()}",
        f"DEM fault mechanisms : {len(setup.dem)}",
        f"decoding-graph edges : {len(setup.graph.edges)}",
        f"GWT footprint        : {setup.gwt.storage_bytes()} bytes",
        "matching engines     : sparse table engine + graph-local "
        "sparse-blossom (O(E), d >= 15 capable); fallbacks tracked by "
        "reason: unsafe_pair / unsolvable / engine_error",
    ]
    cache = stage_cache().stats
    human.append(
        f"stage cache          : {cache.hits} hits, {cache.misses} misses, "
        f"{cache.evictions} evicted, {cache.size}/{cache.capacity} entries"
    )
    store = default_artifact_store()
    if store is not None:
        stats = store.stats
        human.append(
            f"artifact store       : {store.root} "
            f"({stats.disk_hits} disk hits, {stats.disk_misses} misses, "
            f"{stats.saves} saves, {stats.invalidated} invalidated)"
        )
    human.append("registered decoders  :")
    for name in decoder_registry.decoder_names():
        spec = decoder_registry.get_decoder_spec(name)
        human.append(
            f"  {name:<16} [{', '.join(spec.capabilities)}]"
            + (f"  {spec.description}" if spec.description else "")
        )
    from .backend import backend_info

    info = backend_info()
    human.append(
        f"array backend        : {info.name} (device: {info.device}, "
        f"native numpy: {info.native_numpy})"
    )
    human.append(
        "importable backends  : "
        + ", ".join(
            name if ok else f"{name} (not installed)"
            for name, ok in sorted(info.importable.items())
        )
    )
    machine = [
        f"{code.distance} {code.num_data_qubits} {code.num_parity_qubits} "
        f"{code.num_qubits} {code.syndrome_vector_length()} "
        f"{setup.gwt.storage_bytes()}"
    ]
    _emit(args, human, machine)
    return 0


def cmd_census(args: argparse.Namespace) -> int:
    """Hamming-weight census (artifact experiment 6, paper Tables 2/5)."""
    setup = DecodingSetup.build(args.distance, args.p)
    census = hamming_weight_census(setup.experiment, args.shots, seed=args.seed)
    human = [f"d={args.distance} p={args.p} shots={args.shots}"]
    machine = []
    for weight in sorted(census.counts):
        count = census.counts[weight]
        human.append(f"HW {weight:3d}: {count:9d}  ({count / args.shots:.3e})")
        machine.append(f"{weight}, {count}")
    _emit(args, human, machine)
    return 0


def cmd_ler(args: argparse.Namespace) -> int:
    """Logical error rate of one decoder at one operating point."""
    setup = DecodingSetup.build(args.distance, args.p)
    decoder = make_decoder(
        args.decoder, setup, weight_threshold=args.weight_threshold
    )
    result = run_memory_experiment(
        setup.experiment, decoder, args.shots, seed=args.seed
    )
    low, high = result.confidence_interval
    human = [
        f"d={args.distance} p={args.p} decoder={args.decoder} shots={args.shots}",
        f"logical error rate : {result.logical_error_rate:.3e} "
        f"(95% CI [{low:.3e}, {high:.3e}])",
        f"errors/declined    : {result.errors}/{result.declined}",
        f"latency mean/max   : {result.mean_latency_ns:.1f}/"
        f"{result.max_latency_ns:.0f} ns",
    ]
    fallbacks = int(getattr(decoder, "fallback_events", 0) or 0)
    if fallbacks:
        stats = getattr(decoder, "sparse_stats", None)
        breakdown = (
            " (" + ", ".join(
                f"{reason}: {count}"
                for reason, count in sorted(stats.fallback_events.items())
                if count
            ) + ")"
            if stats is not None and any(stats.fallback_events.values())
            else ""
        )
        human.append(
            f"[WARN] fallbacks   : {fallbacks} decode(s) degraded to the "
            f"dense reference path{breakdown}"
        )
    machine = [
        f"{args.distance} {args.p} {args.decoder} {args.shots} "
        f"{result.errors} {result.logical_error_rate:.6e} "
        f"{result.mean_latency_ns:.3f} {result.max_latency_ns:.3f}"
    ]
    _emit(args, human, machine)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """LER sweep over physical error rates (artifact experiment 1)."""
    if args.points < 2:
        raise SystemExit("--points must be >= 2")
    human = [
        f"d={args.distance} decoder={args.decoder} shots={args.shots}/point",
        f"{'p':>10} {'LER':>12} {'errors':>7}",
    ]
    machine = []
    for index in range(args.points):
        frac = index / (args.points - 1)
        p = args.p_min * (args.p_max / args.p_min) ** frac
        setup = DecodingSetup.build(args.distance, p)
        decoder = make_decoder(
            args.decoder, setup, weight_threshold=args.weight_threshold
        )
        result = run_memory_experiment(
            setup.experiment, decoder, args.shots, seed=args.seed + index
        )
        human.append(
            f"{p:>10.3e} {result.logical_error_rate:>12.3e} {result.errors:>7}"
        )
        machine.append(
            f"{args.distance} {p:.6e} {args.decoder} {args.shots} "
            f"{result.errors} {result.logical_error_rate:.6e}"
        )
    _emit(args, human, machine)
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Supervised long campaign: checkpoint/resume, retries, timeouts."""
    from .experiments.resilient import run_memory_experiment_resilient
    from .pipeline import DecoderHandle
    from .service import RetryPolicy

    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    setup = DecodingSetup.build(
        args.distance, args.p, store_root=args.artifact_dir
    )
    if args.artifact_dir:
        # Publish every persistable stage before workers launch so they
        # warm-start from the store instead of recompiling per process.
        setup.warm()
    decoder = DecoderHandle.create(
        setup.config,
        args.decoder,
        store_root=args.artifact_dir,
        weight_threshold=args.weight_threshold,
    )
    outcome = run_memory_experiment_resilient(
        setup.experiment,
        decoder,
        args.shots,
        seed=args.seed,
        workers=args.workers,
        chunks_per_worker=args.chunks_per_worker,
        block_shots=args.block_shots,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        policy=RetryPolicy(
            max_retries=args.max_retries, timeout=args.chunk_timeout
        ),
    )
    result, recovery = outcome.result, outcome.recovery
    low, high = result.confidence_interval
    human = [
        f"d={args.distance} p={args.p} decoder={args.decoder} "
        f"shots={args.shots} workers={args.workers}",
        f"logical error rate : {result.logical_error_rate:.3e} "
        f"(95% CI [{low:.3e}, {high:.3e}])",
        f"errors/declined    : {result.errors}/{result.declined}",
        f"chunks             : {recovery.chunks_total} total, "
        f"{recovery.chunks_resumed} resumed, "
        f"{recovery.dropped_chunks} dropped",
        f"recovery           : {recovery.crashes} crashes, "
        f"{recovery.hangs} hangs, {recovery.worker_errors} errors, "
        f"{recovery.retries} retries, "
        f"{recovery.serial_fallbacks} serial fallbacks, "
        f"{recovery.corrupted_checkpoints} corrupted checkpoints",
    ]
    machine = [
        f"{args.distance} {args.p} {args.decoder} {result.shots} "
        f"{result.errors} {result.logical_error_rate:.6e} "
        f"{recovery.chunks_resumed} {recovery.retries} "
        f"{recovery.dropped_chunks}"
    ]
    _emit(args, human, machine)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Streaming decode service under deterministic generated load."""
    import json

    from .pipeline.stages import PipelineConfig
    from .service import RetryPolicy
    from .service.loadgen import run_load
    from .service.server import ServiceConfig
    from .testing.faults import SERVICE_SOLVE_PHASE, FaultInjector

    injector = None
    if args.inject_crash or args.inject_hang:
        injector = FaultInjector(
            crashes={
                (SERVICE_SOLVE_PHASE, batch): 1 for batch in args.inject_crash
            },
            hangs={
                (SERVICE_SOLVE_PHASE, batch): 1 for batch in args.inject_hang
            },
            hang_seconds=max(5.0, 4.0 * args.deadline),
        )
    config = PipelineConfig(distance=args.distance, physical_error_rate=args.p)
    service = ServiceConfig(
        window=args.window,
        commit=args.commit,
        workers=args.workers,
        batch_window=args.batch_window,
        policy=RetryPolicy(
            max_retries=args.max_retries,
            backoff=args.retry_backoff,
            timeout=args.deadline,
        ),
        degrade_tier=(
            None if args.degrade_tier == "none" else args.degrade_tier
        ),
        queue_limit=args.queue_limit,
    )
    report = run_load(
        config,
        service,
        streams=args.streams,
        episodes=args.episodes,
        seed=args.seed,
        injector=injector,
        burst_streams=args.burst_streams,
    )
    recovery = report.service["service"]["recovery"]
    human = [
        f"d={args.distance} p={args.p} streams={args.streams} "
        f"episodes/stream={args.episodes} workers={args.workers}",
        f"rounds             : {report.rounds_fed} fed, "
        f"{report.rounds_committed} committed",
        f"throughput         : {report.rounds_per_second:.0f} rounds/s "
        f"(wall {report.wall_seconds:.2f} s)",
        f"solve latency      : p50 {report.solve_p50_ms:.2f} ms, "
        f"p99 {report.solve_p99_ms:.2f} ms",
        f"episodes           : {report.episodes_primary} primary "
        f"({report.logical_errors_primary} logical errors, "
        f"{report.reference_mismatches} reference mismatches), "
        f"{report.episodes_degraded} degraded "
        f"({report.logical_errors_degraded} logical errors)",
        f"recovery           : {recovery['crashes']} crashes, "
        f"{recovery['hangs']} hangs, {recovery['respawns']} respawns, "
        f"{recovery['retries']} retries, "
        f"{recovery['serial_fallbacks']} serial fallbacks",
        f"load shedding      : "
        f"{report.service['degradations']} degradations, "
        f"{report.service['promotions']} promotions, "
        f"{report.service['backpressure_events']} backpressure events",
    ]
    machine = [
        f"{args.distance} {args.p} {args.streams} {args.episodes} "
        f"{report.rounds_committed} {report.rounds_per_second:.1f} "
        f"{report.solve_p99_ms:.3f} {recovery['respawns']} "
        f"{report.service['degradations']} {report.reference_mismatches}"
    ]
    _emit(args, human, machine)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2)
    return 0 if report.reference_mismatches == 0 else 1


def cmd_cascade_tune(args: argparse.Namespace) -> int:
    """Fit cascade routing thresholds from a sampled syndrome census."""
    from .decoders.cascade import cascade_tune, load_or_tune_routing_table
    from .pipeline import artifact_store_for, default_artifact_store

    setup = DecodingSetup.build(
        args.distance, args.p, store_root=args.artifact_dir
    )
    store = (
        artifact_store_for(args.artifact_dir)
        if args.artifact_dir
        else default_artifact_store()
    )
    if store is None or args.no_cache:
        table = cascade_tune(
            setup,
            shots=args.shots,
            seed=args.seed,
            min_accept=args.min_accept,
        )
        cached = "uncached (no artifact store configured)"
        if store is not None:
            store.save(setup.fingerprint, "routing_table", table)
            cached = f"re-tuned, saved to {store.root}"
    else:
        before = store.disk_hits
        table = load_or_tune_routing_table(
            setup,
            store,
            shots=args.shots,
            seed=args.seed,
            min_accept=args.min_accept,
        )
        cached = (
            f"loaded from {store.root}"
            if store.disk_hits > before
            else f"tuned, saved to {store.root}"
        )
    human = [
        f"d={args.distance} p={args.p} shots={args.shots} seed={args.seed}",
        f"routing table        : {cached}",
        f"max local weight     : {table.max_local_weight}",
        f"local fraction       : {table.local_fraction:.4f}",
        f"escalation rate      : {table.escalation_rate:.4f}",
        "per-weight acceptance:",
    ]
    for weight, fraction in zip(table.accept_weights, table.accept_fractions):
        human.append(f"  HW {weight:3d}: {fraction:.4f}")
    machine = [
        f"{args.distance} {args.p} {args.shots} {args.seed} "
        f"{table.max_local_weight} {table.local_fraction:.6f} "
        f"{table.escalation_rate:.6f}"
    ]
    _emit(args, human, machine)
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    """Latency profile of the real-time decoders (paper Figure 9)."""
    setup = DecodingSetup.build(args.distance, args.p)
    human = [f"d={args.distance} p={args.p} shots={args.shots}"]
    machine = []
    for name in ("astrea", "astrea-g"):
        decoder = make_decoder(name, setup)
        result = run_memory_experiment(
            setup.experiment, decoder, args.shots, seed=args.seed
        )
        human.append(
            f"{name:9s} mean {result.mean_latency_ns:7.2f} ns | "
            f"mean(HW>2) {result.mean_latency_nontrivial_ns:7.1f} ns | "
            f"max {result.max_latency_ns:6.0f} ns | declined {result.declined}"
        )
        machine.append(
            f"{args.distance} {args.p} {name} {result.mean_latency_ns:.4f} "
            f"{result.mean_latency_nontrivial_ns:.4f} {result.max_latency_ns:.1f}"
        )
    _emit(args, human, machine)
    return 0


def cmd_bandwidth(args: argparse.Namespace) -> int:
    """Decode-budget sweep (artifact experiment 12, paper Table 7)."""
    setup = DecodingSetup.build(args.distance, args.p)
    model = BandwidthModel(args.distance)
    budgets = list(range(args.budget_min, args.budget_max + 1, args.budget_step))
    human = [
        f"d={args.distance} p={args.p} shots={args.shots}",
        f"{'budget(ns)':>10} {'tx(ns)':>7} {'MBps':>8} {'LER':>12} {'timeouts':>8}",
    ]
    machine = []
    for budget in budgets:
        transmission = 1000 - budget
        decoder = make_decoder(
            "astrea-g",
            setup,
            weight_threshold=args.weight_threshold,
            budget_ns=float(budget),
        )
        result = run_memory_experiment(
            setup.experiment, decoder, args.shots, seed=args.seed
        )
        mbps = (
            float("inf")
            if transmission <= 0
            else model.bandwidth_for_transmission(transmission)
        )
        human.append(
            f"{budget:>10} {transmission:>7} {mbps:>8.0f} "
            f"{result.logical_error_rate:>12.3e} {result.timed_out:>8}"
        )
        machine.append(
            f"{args.distance} {args.p} {result.logical_error_rate:.6e} "
            f"{result.timed_out} {budget}"
        )
    _emit(args, human, machine)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Condensed headline-results report (see experiments.report)."""
    from .experiments.report import run_headline_report

    report = run_headline_report(
        distance=args.distance,
        physical_error_rate=args.p,
        shots=args.shots,
        seed=args.seed,
    )
    machine = [
        f"{args.distance} {args.p} {name} {run.errors} "
        f"{run.logical_error_rate:.6e}"
        for name, run in report.runs.items()
    ]
    _emit(args, report.lines, machine)
    return 0 if (report.astrea_matches_mwpm and report.realtime_ok) else 1


def cmd_compress(args: argparse.Namespace) -> int:
    """Syndrome-compression census (section 7.6)."""
    from .hw.compression import (
        RunLengthCompressor,
        SparseIndexCompressor,
        compression_census,
    )

    setup = DecodingSetup.build(args.distance, args.p)
    length = setup.experiment.num_detectors
    human = [f"d={args.distance} p={args.p} shots={args.shots} bits={length}"]
    machine = []
    for name, codec in (
        ("sparse-index", SparseIndexCompressor(length)),
        ("run-length", RunLengthCompressor(length)),
    ):
        report = compression_census(
            setup.experiment, codec, args.shots, seed=args.seed
        )
        human.append(
            f"{name:>13}: mean {report.mean_bits:7.1f} bits, "
            f"max {report.max_bits}, ratio {report.mean_ratio:.1f}x"
        )
        machine.append(
            f"{args.distance} {args.p} {name} {report.mean_bits:.3f} "
            f"{report.max_bits} {report.mean_ratio:.3f}"
        )
    _emit(args, human, machine)
    return 0


def cmd_threshold(args: argparse.Namespace) -> int:
    """Threshold estimation as the d-small/d-large LER crossing."""
    from .analysis.threshold import estimate_crossing, log_spaced

    estimate = estimate_crossing(
        args.d_small,
        args.d_large,
        lambda setup: make_decoder(args.decoder, setup),
        grid=log_spaced(args.p_min, args.p_max, args.points),
        shots=args.shots,
        seed=args.seed,
    )
    human = [
        f"decoder={args.decoder} d={args.d_small} vs d={args.d_large}",
        f"{'p':>10} {'LER small':>11} {'LER large':>11}",
    ]
    for p, s, l in zip(estimate.grid, estimate.ler_small, estimate.ler_large):
        human.append(f"{p:>10.3e} {s:>11.3e} {l:>11.3e}")
    human.append(
        f"threshold: {estimate.crossing:.3e}"
        if estimate.found
        else "threshold: not bracketed by the grid"
    )
    machine = [
        f"{args.d_small} {args.d_large} {args.decoder} "
        f"{estimate.crossing if estimate.found else 'nan'}"
    ]
    _emit(args, human, machine)
    return 0


def cmd_stratified(args: argparse.Namespace) -> int:
    """Appendix-A stratified LER estimate (Eq. 3)."""
    setup = DecodingSetup.build(args.distance, args.p)
    decoder = make_decoder(
        args.decoder, setup, weight_threshold=args.weight_threshold
    )
    estimate = estimate_ler_stratified(
        setup.dem,
        decoder,
        max_faults=args.max_faults,
        trials_per_stratum=args.trials,
        seed=args.seed,
    )
    human = [
        f"d={args.distance} p={args.p} decoder={args.decoder} "
        f"trials/stratum={args.trials}",
        f"stratified LER : {estimate.logical_error_rate:.3e}",
        f"mean faults    : {estimate.mean_faults:.3f}",
    ]
    for k in sorted(estimate.failure):
        human.append(
            f"  k={k:2d}  P_occ {estimate.occurrence[k]:.3e}  "
            f"P_fail {estimate.failure[k]:.3e}"
        )
    machine = [
        f"{args.distance} {args.p} {args.decoder} "
        f"{estimate.logical_error_rate:.6e}"
    ]
    _emit(args, human, machine)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def _common(sub: argparse.ArgumentParser, *, shots: int = 10_000) -> None:
    sub.add_argument("--distance", "-d", type=int, default=5, help="code distance")
    sub.add_argument("--p", type=float, default=1e-3, help="physical error rate")
    sub.add_argument("--shots", type=int, default=shots, help="Monte-Carlo trials")
    sub.add_argument("--seed", type=int, default=2023, help="PRNG seed")
    sub.add_argument("--output", "-o", help="append machine-readable rows here")
    sub.add_argument(
        "--weight-threshold",
        type=float,
        default=7.0,
        help="Astrea-G weight threshold W_th",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Astrea (ISCA 2023) reproduction experiment runner",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    handlers: dict[str, Callable[[argparse.Namespace], int]] = {}

    def register(name, handler, help_text, **kwargs):
        sub = subparsers.add_parser(name, help=help_text)
        _common(sub, **kwargs)
        handlers[name] = handler
        return sub

    register("info", cmd_info, "code resources and storage (Tables 1/6)")
    register("census", cmd_census, "Hamming-weight census (Tables 2/5)", shots=100_000)
    ler = register("ler", cmd_ler, "logical error rate of one decoder")
    ler.add_argument("--decoder", choices=DECODER_NAMES, default="astrea")
    sweep = register("sweep", cmd_sweep, "LER sweep over p (Figures 12/14)")
    sweep.add_argument("--decoder", choices=DECODER_NAMES, default="astrea-g")
    sweep.add_argument("--p-min", type=float, default=5e-4)
    sweep.add_argument("--p-max", type=float, default=2e-3)
    sweep.add_argument("--points", type=int, default=4)
    campaign = register(
        "campaign",
        cmd_campaign,
        "supervised campaign with checkpoint/resume",
        shots=50_000,
    )
    campaign.add_argument("--decoder", choices=DECODER_NAMES, default="astrea")
    campaign.add_argument(
        "--workers", type=int, default=2, help="worker processes"
    )
    campaign.add_argument(
        "--chunks-per-worker",
        type=int,
        default=2,
        help="chunks per worker (finer checkpoints, cheaper retries)",
    )
    campaign.add_argument(
        "--block-shots",
        type=int,
        default=4096,
        help="shots per sampling block (fixes the RNG contract)",
    )
    campaign.add_argument(
        "--checkpoint-dir", help="directory for chunk checkpoints"
    )
    campaign.add_argument(
        "--artifact-dir",
        help="artifact-store root workers warm-start the decoding stack "
        "from (default: $REPRO_ARTIFACT_DIR when set)",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip chunks already checkpointed by an identical campaign",
    )
    campaign.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="supervised retries per chunk before the serial fallback",
    )
    campaign.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        help="seconds before a running chunk is declared hung",
    )
    serve = register(
        "serve",
        cmd_serve,
        "streaming decode service under generated load",
    )
    serve.add_argument(
        "--streams", type=int, default=4, help="concurrent stream sessions"
    )
    serve.add_argument(
        "--episodes", type=int, default=8, help="episodes fed per stream"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="warm worker processes"
    )
    serve.add_argument(
        "--window", type=int, default=3, help="sliding-window span (layers)"
    )
    serve.add_argument(
        "--commit", type=int, default=1, help="layers committed per step"
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="seconds to wait for cross-stream batching",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=5.0,
        help="per-batch solve deadline in seconds",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="solve retries before the in-process serial fallback",
    )
    serve.add_argument(
        "--retry-backoff",
        type=float,
        default=0.02,
        help="base seconds of the exponential retry backoff",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="buffered uncommitted rounds per stream before backpressure",
    )
    serve.add_argument(
        "--degrade-tier",
        choices=(*decoder_registry.decoder_names("service-tier"), "none"),
        default="union-find",
        help="tier overloaded streams shed onto ('none' disables)",
    )
    serve.add_argument(
        "--burst-streams",
        type=int,
        default=0,
        help="streams driven with the tightest queue bound (overload)",
    )
    serve.add_argument(
        "--inject-crash",
        type=int,
        action="append",
        default=[],
        metavar="BATCH",
        help="hard-crash the worker solving this batch id (repeatable)",
    )
    serve.add_argument(
        "--inject-hang",
        type=int,
        action="append",
        default=[],
        metavar="BATCH",
        help="hang the worker solving this batch id (repeatable)",
    )
    serve.add_argument(
        "--json", help="write the full load report as JSON here"
    )
    tune = register(
        "cascade-tune",
        cmd_cascade_tune,
        "fit cascade routing thresholds from a syndrome census",
        shots=20_000,
    )
    tune.add_argument(
        "--min-accept",
        type=float,
        default=0.05,
        help="minimum per-weight acceptance fraction kept on the front tier",
    )
    tune.add_argument(
        "--artifact-dir",
        help="artifact-store root the routing table is cached in "
        "(default: $REPRO_ARTIFACT_DIR when set)",
    )
    tune.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-tune, overwriting any cached routing table",
    )
    register("latency", cmd_latency, "real-time latency profile (Figure 9)")
    bandwidth = register(
        "bandwidth", cmd_bandwidth, "decode-budget sweep (Table 7)", shots=5_000
    )
    bandwidth.add_argument("--budget-min", type=int, default=500)
    bandwidth.add_argument("--budget-max", type=int, default=1000)
    bandwidth.add_argument("--budget-step", type=int, default=100)
    stratified = register(
        "stratified", cmd_stratified, "Appendix-A stratified LER (Table 9)"
    )
    stratified.add_argument("--decoder", choices=DECODER_NAMES, default="mwpm")
    stratified.add_argument("--max-faults", type=int, default=8)
    stratified.add_argument("--trials", type=int, default=500)
    register(
        "report", cmd_report, "condensed headline-results report",
        shots=20_000,
    )
    register(
        "compress", cmd_compress, "syndrome-compression census (section 7.6)",
        shots=5_000,
    )
    threshold = register(
        "threshold", cmd_threshold, "threshold estimate (d-crossing)",
        shots=10_000,
    )
    threshold.add_argument("--decoder", choices=DECODER_NAMES, default="mwpm")
    threshold.add_argument("--d-small", type=int, default=3)
    threshold.add_argument("--d-large", type=int, default=5)
    threshold.add_argument("--p-min", type=float, default=2e-3)
    threshold.add_argument("--p-max", type=float, default=3e-2)
    threshold.add_argument("--points", type=int, default=5)

    parser.set_defaults(_handlers=handlers)
    return parser


#: Artifact experiment numbers (paper Appendix B.6) -> our subcommands.
#: The artifact runs ``./astrea <output-file> <experiment-no> <args...>``;
#: experiment 1 is the LER sweep, 6 the Hamming census, 12 the bandwidth
#: sweep.  ``python -m repro artifact <out> <no> [args...]`` accepts the
#: same shape.
ARTIFACT_EXPERIMENTS = {1: "sweep", 6: "census", 12: "bandwidth"}


def _translate_artifact(argv: Sequence[str]) -> list[str]:
    """Rewrite an artifact-style invocation into subcommand arguments."""
    if len(argv) < 3:
        raise SystemExit(
            "usage: repro artifact <output-file> <experiment-no> [distance] [p]"
        )
    output, number = argv[1], int(argv[2])
    if number not in ARTIFACT_EXPERIMENTS:
        raise SystemExit(
            f"unknown artifact experiment {number}; "
            f"supported: {sorted(ARTIFACT_EXPERIMENTS)}"
        )
    translated = [ARTIFACT_EXPERIMENTS[number], "--output", output]
    rest = list(argv[3:])
    if rest:
        translated += ["--distance", rest[0]]
    if len(rest) > 1 and ARTIFACT_EXPERIMENTS[number] != "sweep":
        translated += ["--p", rest[1]]
    return translated


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "artifact":
        argv = _translate_artifact(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = args._handlers[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
