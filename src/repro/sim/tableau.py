"""A CHP-style stabilizer tableau simulator (Aaronson-Gottesman).

This is the *reference* simulator of the reproduction: a direct,
state-tracking implementation of the stabilizer formalism.  It is orders of
magnitude slower than the Pauli-frame sampler but makes no shortcuts --
measurements are performed on an explicit stabilizer tableau, including the
random outcomes of non-deterministic measurements.  The test suite uses it
to cross-validate the frame sampler:

* a noiseless memory circuit must fire no detectors in either simulator;
* deterministically injected Paulis (noise channels with ``p = 1``) must
  produce identical detector patterns in both simulators;
* marginal detector statistics under random noise must agree within
  Monte-Carlo tolerance.

The tableau layout follows Aaronson & Gottesman (2004): rows ``0..n-1`` are
destabilizers, rows ``n..2n-1`` are stabilizers; each row stores x-bits,
z-bits and a sign bit.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit

__all__ = ["TableauSimulator", "run_tableau_shot"]


class TableauSimulator:
    """Stabilizer state of ``n`` qubits, initialised to ``|0...0>``.

    Args:
        num_qubits: Number of qubits to track.
        rng: PRNG used for random measurement outcomes (and by callers for
            noise sampling); defaults to a fresh unseeded generator.
    """

    def __init__(
        self, num_qubits: int, rng: np.random.Generator | None = None
    ) -> None:
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.n = num_qubits
        self.rng = rng if rng is not None else np.random.default_rng()
        n = num_qubits
        # x/z: (2n, n) bit matrices; r: (2n,) sign bits.
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        for i in range(n):
            self.x[i, i] = 1  # destabilizer i = X_i
            self.z[n + i, i] = 1  # stabilizer i = Z_i

    # ------------------------------------------------------------------
    # Clifford gates
    # ------------------------------------------------------------------

    def h(self, q: int) -> None:
        """Apply a Hadamard to qubit ``q``."""
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def cx(self, control: int, target: int) -> None:
        """Apply a controlled-X with the given control and target."""
        xc, zc = self.x[:, control], self.z[:, control]
        xt, zt = self.x[:, target], self.z[:, target]
        self.r ^= xc & zt & (xt ^ zc ^ 1)
        self.x[:, target] = xt ^ xc
        self.z[:, control] = zc ^ zt

    def pauli_x(self, q: int) -> None:
        """Apply a Pauli X to qubit ``q``."""
        self.r ^= self.z[:, q]

    def pauli_z(self, q: int) -> None:
        """Apply a Pauli Z to qubit ``q``."""
        self.r ^= self.x[:, q]

    def pauli_y(self, q: int) -> None:
        """Apply a Pauli Y to qubit ``q``."""
        self.r ^= self.x[:, q] ^ self.z[:, q]

    # ------------------------------------------------------------------
    # Measurement and reset
    # ------------------------------------------------------------------

    def measure_z(self, q: int) -> int:
        """Measure qubit ``q`` in the Z basis; return 0 or 1."""
        n = self.n
        stab_rows = np.nonzero(self.x[n:, q])[0]
        if stab_rows.size:
            # Non-deterministic outcome.
            p = int(stab_rows[0]) + n
            for i in range(2 * n):
                if i != p and self.x[i, q]:
                    self._rowsum(i, p)
            # Destabilizer takes the old stabilizer row.
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            # New stabilizer row is +/- Z_q with a random sign.
            outcome = int(self.rng.integers(0, 2))
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, q] = 1
            self.r[p] = outcome
            return outcome
        # Deterministic outcome: accumulate into a scratch row.
        sx = np.zeros(n, dtype=np.uint8)
        sz = np.zeros(n, dtype=np.uint8)
        sr = 0
        for i in range(n):
            if self.x[i, q]:
                sx, sz, sr = self._rowsum_into(sx, sz, sr, i + n)
        return int(sr)

    def reset_z(self, q: int) -> None:
        """Reset qubit ``q`` to ``|0>``."""
        if self.measure_z(q):
            self.pauli_x(q)

    # ------------------------------------------------------------------
    # Internals: Pauli row products with sign tracking
    # ------------------------------------------------------------------

    @staticmethod
    def _g(x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray):
        """Per-qubit phase exponents (mod 4) of multiplying Pauli terms."""
        # Aaronson-Gottesman g function, vectorised over qubits.
        g = np.zeros(x1.shape, dtype=np.int64)
        # case x1=1, z1=0 (X): g = z2 * (2*x2 - 1)
        mask = (x1 == 1) & (z1 == 0)
        g[mask] = (z2[mask].astype(np.int64)) * (2 * x2[mask].astype(np.int64) - 1)
        # case x1=0, z1=1 (Z): g = x2 * (1 - 2*z2)
        mask = (x1 == 0) & (z1 == 1)
        g[mask] = (x2[mask].astype(np.int64)) * (1 - 2 * z2[mask].astype(np.int64))
        # case x1=1, z1=1 (Y): g = z2 - x2
        mask = (x1 == 1) & (z1 == 1)
        g[mask] = z2[mask].astype(np.int64) - x2[mask].astype(np.int64)
        return g

    def _rowsum(self, h: int, i: int) -> None:
        """Row h *= row i (left multiply by row i), updating signs."""
        phase = (
            2 * int(self.r[h])
            + 2 * int(self.r[i])
            + int(self._g(self.x[i], self.z[i], self.x[h], self.z[h]).sum())
        ) % 4
        self.r[h] = 0 if phase == 0 else 1
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    def _rowsum_into(self, sx: np.ndarray, sz: np.ndarray, sr: int, i: int):
        """Scratch-row variant of :meth:`_rowsum`; returns the new row."""
        phase = (
            2 * sr
            + 2 * int(self.r[i])
            + int(self._g(self.x[i], self.z[i], sx, sz).sum())
        ) % 4
        return sx ^ self.x[i], sz ^ self.z[i], 0 if phase == 0 else 1


def run_tableau_shot(
    circuit: Circuit, rng: np.random.Generator | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Execute one noisy shot of a circuit on the tableau simulator.

    Noise channels are sampled with the provided PRNG and applied as explicit
    Pauli gates; measurements are genuine stabilizer measurements.

    Args:
        circuit: The circuit to execute.
        rng: PRNG for noise and random measurement outcomes.

    Returns:
        Tuple ``(measurements, detectors, observable_parities)``:
        raw measurement outcomes (0/1), detector parities and observable
        parities.  Observable parities are raw (not flips relative to a
        reference), so callers comparing against the frame sampler should
        compare detectors, which are reference-free.
    """
    rng = rng if rng is not None else np.random.default_rng()
    sim = TableauSimulator(circuit.num_qubits, rng)
    record: list[int] = []
    for inst in circuit.instructions:
        name = inst.name
        if name == "TICK" or name == "DETECTOR" or name == "OBSERVABLE_INCLUDE":
            continue
        if name == "H":
            for q in inst.targets:
                sim.h(q)
        elif name == "CX":
            for c, t in inst.target_pairs:
                sim.cx(c, t)
        elif name == "R":
            for q in inst.targets:
                sim.reset_z(q)
        elif name == "M" or name == "MR":
            for q in inst.targets:
                outcome = sim.measure_z(q)
                if inst.arg > 0.0 and rng.random() < inst.arg:
                    outcome ^= 1
                record.append(outcome)
                if name == "MR":
                    if outcome:
                        # The recorded outcome may be a lie (readout error);
                        # reset acts on the true post-measurement state.
                        pass
                    sim.reset_z(q)
        elif name == "X_ERROR":
            for q in inst.targets:
                if rng.random() < inst.arg:
                    sim.pauli_x(q)
        elif name == "Z_ERROR":
            for q in inst.targets:
                if rng.random() < inst.arg:
                    sim.pauli_z(q)
        elif name == "DEPOLARIZE1":
            for q in inst.targets:
                if rng.random() < inst.arg:
                    which = int(rng.integers(0, 3))
                    (sim.pauli_x, sim.pauli_y, sim.pauli_z)[which](q)
        elif name == "DEPOLARIZE2":
            for a, b in inst.target_pairs:
                if rng.random() < inst.arg:
                    code = int(rng.integers(1, 16))
                    _apply_two_qubit_pauli(sim, a, b, code)
        else:
            raise AssertionError(f"unhandled instruction: {name}")
    measurements = np.array(record, dtype=np.uint8)
    detectors = np.array(
        [
            int(np.bitwise_xor.reduce(measurements[list(idx)])) if idx else 0
            for idx in circuit.detectors()
        ],
        dtype=np.uint8,
    )
    observables = np.array(
        [
            int(np.bitwise_xor.reduce(measurements[list(idx)])) if idx else 0
            for idx in circuit.observables()
        ],
        dtype=np.uint8,
    )
    return measurements, detectors, observables


def _apply_two_qubit_pauli(sim: TableauSimulator, a: int, b: int, code: int) -> None:
    """Apply the two-qubit Pauli encoded as 4 bits (xa, za, xb, zb)."""
    xa, za = code >> 3 & 1, code >> 2 & 1
    xb, zb = code >> 1 & 1, code & 1
    for qubit, fx, fz in ((a, xa, za), (b, xb, zb)):
        if fx and fz:
            sim.pauli_y(qubit)
        elif fx:
            sim.pauli_x(qubit)
        elif fz:
            sim.pauli_z(qubit)
