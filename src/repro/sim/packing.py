"""Bit-packing utilities: 64 shots per machine word, packed syndrome keys.

Two packing layouts appear in the sampling pipeline:

* **Shot-packed rows** (:func:`pack_rows` / :func:`unpack_rows`): a
  ``(rows, shots)`` boolean matrix stored as ``(rows, ceil(shots/64))``
  ``uint64`` words, bit ``b`` of word ``w`` holding shot ``64 * w + b``.
  This is the layout the packed frame backend computes in; it is defined
  arithmetically (shift + OR-reduce) so it is endian-independent.
* **Syndrome keys** (:func:`pack_row_keys`): each ``(shots, detectors)``
  row compressed to a tuple of little-endian ``uint64`` words via
  :func:`numpy.packbits`.  Deduplicating syndromes then sorts narrow
  integer keys instead of wide boolean rows, which is what makes
  :func:`unique_rows` fast at scale.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "num_words",
    "pack_rows",
    "unpack_rows",
    "pack_row_keys",
    "unique_rows",
]

#: Bits per packed machine word.
WORD_BITS = 64

_SHIFTS = np.arange(WORD_BITS, dtype=np.uint64)


def num_words(bits: int) -> int:
    """Number of ``uint64`` words needed to hold ``bits`` bits."""
    return (bits + WORD_BITS - 1) // WORD_BITS


def pack_rows(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, n)`` boolean matrix along its second axis.

    Returns:
        ``(rows, num_words(n))`` ``uint64`` matrix; bit ``b`` of word ``w``
        is column ``64 * w + b`` (zero-padded past ``n``).
    """
    rows, n = bits.shape
    words = num_words(n)
    padded = np.zeros((rows, words * WORD_BITS), dtype=np.uint64)
    padded[:, :n] = bits
    return np.bitwise_or.reduce(
        padded.reshape(rows, words, WORD_BITS) << _SHIFTS, axis=-1
    )


def unpack_rows(words: np.ndarray, count: int) -> np.ndarray:
    """Invert :func:`pack_rows`, keeping the first ``count`` columns."""
    rows = words.shape[0]
    if rows == 0 or words.shape[1] == 0:
        return np.zeros((rows, count), dtype=bool)
    bits = ((words[:, :, None] >> _SHIFTS) & np.uint64(1)).astype(bool)
    return bits.reshape(rows, -1)[:, :count]


def pack_row_keys(bits: np.ndarray) -> np.ndarray:
    """Compress each boolean row to a key of little-endian ``uint64`` words.

    Args:
        bits: ``(shots, n)`` boolean matrix (``n >= 1``).

    Returns:
        ``(shots, num_words(n))`` array of dtype ``<u8``.  Equal rows map
        to equal keys and distinct rows to distinct keys, so the keys are a
        drop-in replacement for the rows in any dedup/sort.
    """
    shots, n = bits.shape
    packed8 = np.packbits(
        np.ascontiguousarray(bits, dtype=bool), axis=1, bitorder="little"
    )
    key_bytes = num_words(n) * (WORD_BITS // 8)
    if packed8.shape[1] != key_bytes:
        padded = np.zeros((shots, key_bytes), dtype=np.uint8)
        padded[:, : packed8.shape[1]] = packed8
        packed8 = padded
    return np.ascontiguousarray(packed8).view("<u8")


def unique_rows(bits: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate boolean rows by sorting their packed ``uint64`` keys.

    Args:
        bits: ``(shots, n)`` boolean matrix.

    Returns:
        ``(unique, inverse, counts)``: the distinct rows (in packed-key
        lexicographic order -- deterministic, though different from the
        boolean-row lexicographic order of :func:`numpy.unique`), the index
        of each input row into ``unique``, and each distinct row's
        multiplicity.
    """
    shots, n = bits.shape
    if shots == 0 or n == 0:
        unique = np.zeros((min(shots, 1), n), dtype=bool)
        inverse = np.zeros(shots, dtype=np.int64)
        counts = (
            np.array([shots], dtype=np.int64)
            if len(unique)
            else np.zeros(0, dtype=np.int64)
        )
        return unique, inverse, counts
    keys = pack_row_keys(bits)
    _, first, inverse, counts = np.unique(
        keys, axis=0, return_index=True, return_inverse=True, return_counts=True
    )
    return (
        np.ascontiguousarray(bits[first]),
        inverse.reshape(-1).astype(np.int64),
        counts.astype(np.int64),
    )
