"""Tableau-backed reference sampler (API parity with the frame sampler).

:class:`ReferenceSampler` exposes the same ``sample(shots)`` interface as
:class:`~repro.sim.pauli_frame.PauliFrameSimulator` but executes every shot
on the CHP tableau simulator -- genuine stabilizer states, genuine
measurements, no frame shortcut.  It is orders of magnitude slower and
exists for *validation*: any statistically significant disagreement
between the two samplers on detector or observable marginals indicates a
bug in the frame propagation rules (or a circuit whose detectors are not
noiseless-deterministic, which the frame technique does not support).

Observable values need care: the tableau reports raw logical measurement
outcomes, while the frame sampler reports flips relative to the noiseless
reference.  The sampler therefore computes the noiseless reference once
per circuit and XORs it out, so both samplers return the same quantity.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from .pauli_frame import SampleResult
from .tableau import run_tableau_shot

__all__ = ["ReferenceSampler"]


class ReferenceSampler:
    """Shot-by-shot tableau sampling of a noisy circuit.

    Args:
        circuit: The circuit to sample (detectors must be deterministic in
            the noiseless circuit -- true for every builder in this
            package).
        seed: PRNG seed for noise and random measurement outcomes.
    """

    def __init__(self, circuit: Circuit, seed: int | None = None) -> None:
        self.circuit = circuit
        self._rng = np.random.default_rng(seed)
        # Noiseless reference observables, computed once.  Detectors are
        # deterministic (all zero) by construction; observables may be
        # deterministic yet non-zero in principle, so XOR them out.
        clean = circuit.without_noise()
        _m, det, obs = run_tableau_shot(clean, np.random.default_rng(0))
        if det.any():
            raise ValueError(
                "circuit detectors are not noiseless-deterministic; the "
                "reference sampler (and the frame sampler) cannot be used"
            )
        self._reference_observables = obs.astype(bool)

    def sample(self, shots: int) -> SampleResult:
        """Sample ``shots`` noisy executions on the tableau simulator.

        Args:
            shots: Number of Monte-Carlo shots (keep modest: each shot is
                a full stabilizer simulation).

        Returns:
            A :class:`~repro.sim.pauli_frame.SampleResult` whose detector
            and observable flips are directly comparable with the frame
            sampler's.
        """
        if shots < 0:
            raise ValueError("shots must be non-negative")
        num_det = self.circuit.num_detectors
        num_obs = self.circuit.num_observables
        detectors = np.zeros((shots, num_det), dtype=bool)
        observables = np.zeros((shots, num_obs), dtype=bool)
        for shot in range(shots):
            _m, det, obs = run_tableau_shot(self.circuit, self._rng)
            detectors[shot] = det.astype(bool)
            observables[shot] = obs.astype(bool) ^ self._reference_observables
        return SampleResult(detectors=detectors, observables=observables)
