"""Detector error model (DEM) extraction from noisy circuits.

The decoding graph that MWPM-style decoders operate on is derived from the
*detector error model*: the list of elementary fault mechanisms in the
circuit, each annotated with the set of detectors it flips, the logical
observables it flips, and its probability.  Stim builds this structure
internally; here it is rebuilt from scratch.

The extraction technique mirrors Stim's: every possible single fault (one
Pauli term of one noise channel, or one measurement-record flip) is assigned
a row in a batched Pauli-frame propagation, injected at its circuit
location, and propagated *deterministically* (no random noise) through the
remainder of the circuit.  A single vectorised pass therefore yields the
detector/observable signature of every fault mechanism simultaneously.

Mechanisms with identical signatures are merged by XOR-combining their
probabilities (``p = p1 (1 - p2) + p2 (1 - p1)``), which is exact for
independent faults.  The individual Pauli terms of one depolarizing channel
are treated as independent -- the standard O(p^2) approximation that both
Stim's graph-like DEMs and the paper's weight tables rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import Circuit, Instruction
from .parity import ParityTransfer

__all__ = ["FaultMechanism", "DetectorErrorModel", "build_detector_error_model"]


@dataclass(frozen=True)
class FaultMechanism:
    """One merged elementary fault of the circuit.

    Attributes:
        probability: Probability that this mechanism fires in one shot.
        detectors: Sorted indices of detectors flipped when it fires.
        observables: Sorted indices of logical observables flipped.
    """

    probability: float
    detectors: tuple[int, ...]
    observables: tuple[int, ...]

    @property
    def is_graphlike(self) -> bool:
        """True when the mechanism flips at most two detectors.

        Graph-like mechanisms map directly onto decoding-graph edges
        (two detectors) or boundary edges (one detector).
        """
        return len(self.detectors) <= 2


@dataclass
class DetectorErrorModel:
    """The full set of merged fault mechanisms of a circuit.

    Attributes:
        num_detectors: Detector count of the originating circuit.
        num_observables: Observable count of the originating circuit.
        mechanisms: Merged mechanisms, sorted by detector signature.
    """

    num_detectors: int
    num_observables: int
    mechanisms: list[FaultMechanism] = field(default_factory=list)

    def graphlike_mechanisms(self) -> list[FaultMechanism]:
        """Mechanisms usable as decoding-graph edges (<= 2 detectors)."""
        return [m for m in self.mechanisms if m.is_graphlike]

    def non_graphlike_mechanisms(self) -> list[FaultMechanism]:
        """Mechanisms flipping three or more detectors."""
        return [m for m in self.mechanisms if not m.is_graphlike]

    @property
    def expected_fault_count(self) -> float:
        """Mean number of mechanisms firing per shot (sum of probabilities).

        Used by the Appendix-A stratified LER estimator, where the number of
        fired mechanisms is approximately Poisson with this mean.
        """
        return float(sum(m.probability for m in self.mechanisms))

    def __len__(self) -> int:
        return len(self.mechanisms)


def build_detector_error_model(circuit: Circuit) -> DetectorErrorModel:
    """Extract the detector error model of a noisy circuit.

    Args:
        circuit: A circuit with noise channels, detectors and observables.

    Returns:
        The merged :class:`DetectorErrorModel`.
    """
    injections, probabilities = _enumerate_faults(circuit)
    num_faults = len(probabilities)
    det_t, obs_t = _propagate_faults(circuit, injections, num_faults)
    det_ids, det_bounds = _signature_stream(det_t, num_faults)
    obs_ids, obs_bounds = _signature_stream(obs_t, num_faults)
    merged: dict[tuple[tuple[int, ...], tuple[int, ...]], float] = {}
    for row in range(num_faults):
        detectors = tuple(det_ids[det_bounds[row] : det_bounds[row + 1]])
        observables = tuple(obs_ids[obs_bounds[row] : obs_bounds[row + 1]])
        if not detectors and not observables:
            continue  # invisible fault; cannot affect decoding or logicals
        key = (detectors, observables)
        p_new = probabilities[row]
        p_old = merged.get(key, 0.0)
        merged[key] = p_old * (1.0 - p_new) + p_new * (1.0 - p_old)
    mechanisms = [
        FaultMechanism(probability=p, detectors=dets, observables=obs)
        for (dets, obs), p in sorted(merged.items())
    ]
    return DetectorErrorModel(
        num_detectors=circuit.num_detectors,
        num_observables=circuit.num_observables,
        mechanisms=mechanisms,
    )


# ----------------------------------------------------------------------
# Fault enumeration
# ----------------------------------------------------------------------

# A Pauli injection is a list of (qubit, flip_x, flip_z) triples.
_PauliInjection = list[tuple[int, bool, bool]]

#: Single-qubit depolarizing terms: X, Y, Z.
_DEP1_TERMS: list[tuple[bool, bool]] = [(True, False), (True, True), (False, True)]


@dataclass
class _Injections:
    """Fault injections grouped by the instruction index they act at."""

    # instruction index -> list of (fault row, pauli injection)
    paulis: dict[int, list[tuple[int, _PauliInjection]]] = field(
        default_factory=dict
    )
    # instruction index -> list of (fault row, target offset within M/MR)
    record_flips: dict[int, list[tuple[int, int]]] = field(default_factory=dict)


def _enumerate_faults(circuit: Circuit) -> tuple[_Injections, list[float]]:
    """Assign one batch row to every elementary fault in the circuit."""
    injections = _Injections()
    probabilities: list[float] = []

    def new_row(p: float) -> int:
        probabilities.append(p)
        return len(probabilities) - 1

    for index, inst in enumerate(circuit.instructions):
        name = inst.name
        p = inst.arg
        if p <= 0.0:
            continue
        if name == "X_ERROR" or name == "Z_ERROR":
            as_x = name == "X_ERROR"
            for q in inst.targets:
                row = new_row(p)
                injections.paulis.setdefault(index, []).append(
                    (row, [(q, as_x, not as_x)])
                )
        elif name == "DEPOLARIZE1":
            for q in inst.targets:
                for fx, fz in _DEP1_TERMS:
                    row = new_row(p / 3.0)
                    injections.paulis.setdefault(index, []).append(
                        (row, [(q, fx, fz)])
                    )
        elif name == "DEPOLARIZE2":
            for a, b in inst.target_pairs:
                for code in range(1, 16):
                    row = new_row(p / 15.0)
                    pauli: _PauliInjection = []
                    xa, za = bool(code >> 3 & 1), bool(code >> 2 & 1)
                    xb, zb = bool(code >> 1 & 1), bool(code & 1)
                    if xa or za:
                        pauli.append((a, xa, za))
                    if xb or zb:
                        pauli.append((b, xb, zb))
                    injections.paulis.setdefault(index, []).append((row, pauli))
        elif name == "M" or name == "MR":
            for offset in range(len(inst.targets)):
                row = new_row(p)
                injections.record_flips.setdefault(index, []).append((row, offset))
    return injections, probabilities


# ----------------------------------------------------------------------
# Deterministic batched propagation
# ----------------------------------------------------------------------


def _propagate_faults(
    circuit: Circuit, injections: _Injections, num_faults: int
) -> tuple[np.ndarray, np.ndarray]:
    """Propagate every fault; return record-major signature matrices.

    Frames are kept *qubit-major* -- ``x``/``z`` are ``(qubits, faults)``
    and the record matrix ``(records, faults)`` -- so every gate acts on
    whole contiguous rows instead of strided columns.  At large distance
    this layout is what keeps extraction linear-time in practice: the
    d = 15 circuit propagates a few hundred thousand fault columns, and
    column-sliced updates spend their time striding the batch axis.

    Returns:
        ``(detectors, faults)`` and ``(observables, faults)`` bool
        matrices.
    """
    num_qubits = circuit.num_qubits
    x = np.zeros((num_qubits, num_faults), dtype=bool)
    z = np.zeros((num_qubits, num_faults), dtype=bool)
    rec = np.zeros((circuit.num_measurements, num_faults), dtype=bool)
    cursor = 0
    for index, inst in enumerate(circuit.instructions):
        for row, pauli in injections.paulis.get(index, ()):
            for qubit, flip_x, flip_z in pauli:
                x[qubit, row] ^= flip_x
                z[qubit, row] ^= flip_z
        cursor = _apply_deterministic(inst, x, z, rec, cursor)
        for row, offset in injections.record_flips.get(index, ()):
            rec[cursor - len(inst.targets) + offset, row] ^= True
    num_records = circuit.num_measurements
    det = ParityTransfer.from_groups(
        circuit.detectors(), num_records
    ).apply_bool_t(rec)
    obs = ParityTransfer.from_groups(
        circuit.observables(), num_records
    ).apply_bool_t(rec)
    return det, obs


def _signature_stream(
    matrix_t: np.ndarray, num_faults: int
) -> tuple[list[int], list[int]]:
    """Flatten a record-major signature matrix to per-fault index slices.

    Args:
        matrix_t: ``(groups, faults)`` bool matrix.
        num_faults: Number of fault columns.

    Returns:
        ``(ids, bounds)``: fault ``row``'s sorted group indices are
        ``ids[bounds[row]:bounds[row + 1]]``.
    """
    ids, faults = np.nonzero(matrix_t)
    order = np.argsort(faults, kind="stable")
    bounds = np.searchsorted(faults[order], np.arange(num_faults + 1))
    return ids[order].tolist(), bounds.tolist()


def _apply_deterministic(
    inst: Instruction,
    x: np.ndarray,
    z: np.ndarray,
    rec: np.ndarray,
    cursor: int,
) -> int:
    """Apply one instruction with all noise suppressed; return new cursor.

    ``x``/``z``/``rec`` are qubit-/record-major (batch on the last axis),
    so each update below touches whole contiguous rows.
    """
    name = inst.name
    ts = list(inst.targets)
    if name == "H":
        tmp = x[ts].copy()
        x[ts] = z[ts]
        z[ts] = tmp
    elif name == "CX":
        controls = ts[0::2]
        targets = ts[1::2]
        x[targets] ^= x[controls]
        z[controls] ^= z[targets]
    elif name == "R":
        x[ts] = False
        z[ts] = False
    elif name == "M" or name == "MR":
        n = len(ts)
        rec[cursor : cursor + n] = x[ts]
        z[ts] = False
        if name == "MR":
            x[ts] = False
        return cursor + n
    return cursor
