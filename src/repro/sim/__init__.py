"""Simulators: Pauli-frame sampler, CHP tableau, detector error models."""

from .dem import DetectorErrorModel, FaultMechanism, build_detector_error_model
from .frame_program import FrameOp, FrameProgram, compile_frame_program
from .packing import pack_row_keys, pack_rows, unique_rows, unpack_rows
from .parity import ParityTransfer
from .pauli_frame import RNG_BLOCK_SHOTS, PauliFrameSimulator, SampleResult
from .reference import ReferenceSampler
from .tableau import TableauSimulator, run_tableau_shot

__all__ = [
    "DetectorErrorModel",
    "FaultMechanism",
    "FrameOp",
    "FrameProgram",
    "ParityTransfer",
    "PauliFrameSimulator",
    "RNG_BLOCK_SHOTS",
    "ReferenceSampler",
    "SampleResult",
    "TableauSimulator",
    "build_detector_error_model",
    "compile_frame_program",
    "pack_row_keys",
    "pack_rows",
    "run_tableau_shot",
    "unique_rows",
    "unpack_rows",
]
