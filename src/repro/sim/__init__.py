"""Simulators: Pauli-frame sampler, CHP tableau, detector error models."""

from .dem import DetectorErrorModel, FaultMechanism, build_detector_error_model
from .pauli_frame import PauliFrameSimulator, SampleResult
from .reference import ReferenceSampler
from .tableau import TableauSimulator, run_tableau_shot

__all__ = [
    "DetectorErrorModel",
    "FaultMechanism",
    "PauliFrameSimulator",
    "ReferenceSampler",
    "SampleResult",
    "TableauSimulator",
    "build_detector_error_model",
    "run_tableau_shot",
]
