"""Batched Pauli-frame Monte-Carlo sampling of noisy stabilizer circuits.

This is the workhorse simulator of the reproduction, standing in for the
(heavily modified) Stim build the paper's artifact uses.  It exploits the
standard *Pauli frame* trick: instead of simulating quantum states, it
tracks -- for each Monte-Carlo shot -- the Pauli operator by which the
noisy run differs from a noiseless reference run.  Clifford gates
conjugate the frame, noise channels XOR random Paulis into it, and a
Z-basis measurement outcome is flipped relative to the reference exactly
when the frame has an X component on the measured qubit.

Because detectors are (by construction) deterministic parities of
measurement outcomes in the noiseless circuit, the sampled detector values
are simply parities of the *flips*, and the reference run never needs to
be computed.  Correctness of this shortcut is cross-validated against the
CHP tableau simulator in the test suite.

The circuit is compiled once (:mod:`repro.sim.frame_program`) and executed
by one of two backends:

* ``"packed"`` (default): frames and records are bit-packed ``uint64``
  words, 64 shots per word, with sparse packed noise generation
  (:mod:`repro.sim.packed_backend`) -- the fast path.
* ``"boolean"``: one NumPy bool per (shot, qubit) -- the legacy reference
  path, retained for cross-validation.

Both backends reduce record flips to detector/observable parities through
the program's shared sparse parity-transfer operators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit
from .frame_program import (
    OP_CX,
    OP_DEPOLARIZE1,
    OP_DEPOLARIZE2,
    OP_H,
    OP_M,
    OP_R,
    OP_X_ERROR,
    OP_Z_ERROR,
    FrameProgram,
    compile_frame_program,
)
from .packed_backend import run_block_packed
from .packing import unpack_rows

__all__ = ["SampleResult", "PauliFrameSimulator", "RNG_BLOCK_SHOTS"]

#: Shots per independently seeded RNG block.  The block layout -- not the
#: chunk size -- determines every random draw, so sampled results are
#: invariant to ``chunk_size``.  Matches the parallel runner's default
#: sampling-block size.
RNG_BLOCK_SHOTS = 4096


@dataclass
class SampleResult:
    """Outcome of sampling a circuit.

    Attributes:
        detectors: Boolean array of shape ``(shots, num_detectors)``; entry
            ``[s, k]`` is True when detector ``k`` fired in shot ``s``.
        observables: Boolean array of shape ``(shots, num_observables)``;
            entry ``[s, k]`` is True when logical observable ``k`` was
            flipped relative to the noiseless reference in shot ``s``.
        measurement_flips: Boolean array ``(shots, num_measurements)`` of raw
            record flips, or None when not retained (the default, to save
            memory).
    """

    detectors: np.ndarray
    observables: np.ndarray
    measurement_flips: np.ndarray | None = None

    @property
    def shots(self) -> int:
        """Number of Monte-Carlo shots in this result."""
        return self.detectors.shape[0]


class PauliFrameSimulator:
    """Samples detector and observable flips of a noisy Clifford circuit.

    The circuit is lowered once to a :class:`FrameProgram` at construction;
    sampling replays the compiled ops, never the IR.

    **RNG-stream contract.**  Shots are produced in fixed blocks of
    :data:`RNG_BLOCK_SHOTS`; the ``k``-th block consumed over the
    simulator's lifetime is driven by its own PRNG, spawned
    deterministically from the constructor seed (``SeedSequence(seed)``
    child ``k``).  Consequences:

    * A given ``sample(shots)`` call's output is a pure function of
      ``(circuit, seed, backend, shots)`` and how many blocks previous
      calls on the same instance consumed -- it is **invariant to
      ``chunk_size``** and to how the work is split internally.
    * Partial trailing blocks are simulated at full block width and
      sliced, so ``sample(n)`` returns a prefix of what ``sample(m)``,
      ``m >= n``, would return from the same fresh instance whenever ``n``
      is a multiple of the block size (and for the packed backend, always).
    * The two backends draw different random streams and therefore produce
      different (equally distributed) samples from the same seed; they
      coincide bit-for-bit only on deterministic (p in {0, 1}) circuits.

    Args:
        circuit: The circuit to sample.  Two-qubit instructions must use
            disjoint targets (enforced by :class:`~repro.circuits.circuit.
            Instruction`), which permits fully vectorised application.
        seed: Seed for the internal PRNG; None draws entropy from the OS
            (once, at construction -- sampling stays self-deterministic).
        backend: ``"packed"`` (bit-packed ``uint64`` fast path, default)
            or ``"boolean"`` (legacy NumPy bool reference path).
        fuse: Fuse adjacent compatible ops at compile time.
        program: A :class:`FrameProgram` already compiled from ``circuit``
            (e.g. the pipeline's cached ``frame_program`` stage); skips
            recompilation.  The caller guarantees it matches ``circuit``
            and ``fuse``.
    """

    def __init__(
        self,
        circuit: Circuit,
        seed: int | None = None,
        *,
        backend: str = "packed",
        fuse: bool = True,
        program: FrameProgram | None = None,
    ) -> None:
        if backend not in ("packed", "boolean"):
            raise ValueError(f"unknown backend: {backend!r}")
        self.circuit = circuit
        self.backend = backend
        self._program: FrameProgram = (
            program
            if program is not None
            else compile_frame_program(circuit, fuse=fuse)
        )
        self._seed_seq = np.random.SeedSequence(seed)

    @property
    def program(self) -> FrameProgram:
        """The compiled frame program (compiled once, at construction)."""
        return self._program

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def sample(
        self,
        shots: int,
        *,
        chunk_size: int = 32_768,
        keep_measurement_flips: bool = False,
    ) -> SampleResult:
        """Sample ``shots`` independent noisy executions.

        Args:
            shots: Number of Monte-Carlo shots.
            chunk_size: Retained for API compatibility; results are
                invariant to it (see the RNG-stream contract above).
                Memory is bounded by the fixed RNG block size.
            keep_measurement_flips: Retain the raw record-flip matrix
                (memory-hungry for large circuits).

        Returns:
            A :class:`SampleResult` with detector and observable flips.
        """
        if shots < 0:
            raise ValueError("shots must be non-negative")
        del chunk_size  # the fixed block layout governs both RNG and memory
        program = self._program
        det_parts: list[np.ndarray] = []
        obs_parts: list[np.ndarray] = []
        rec_parts: list[np.ndarray] = []
        remaining = shots
        while remaining > 0:
            size = min(RNG_BLOCK_SHOTS, remaining)
            rng = np.random.default_rng(self._seed_seq.spawn(1)[0])
            if self.backend == "packed":
                rec_words = run_block_packed(program, RNG_BLOCK_SHOTS, rng)
                det_parts.append(
                    unpack_rows(
                        program.detector_transfer.apply_packed(rec_words),
                        RNG_BLOCK_SHOTS,
                    ).T[:size]
                )
                obs_parts.append(
                    unpack_rows(
                        program.observable_transfer.apply_packed(rec_words),
                        RNG_BLOCK_SHOTS,
                    ).T[:size]
                )
                if keep_measurement_flips:
                    from ..backend import from_device

                    raw = np.asarray(from_device(rec_words))
                    if raw.dtype == np.int64:
                        raw = raw.view(np.uint64)
                    rec_parts.append(
                        unpack_rows(raw, RNG_BLOCK_SHOTS).T[:size]
                    )
            else:
                rec = _run_block_bool(program, RNG_BLOCK_SHOTS, rng)[:size]
                det_parts.append(program.detector_transfer.apply_bool(rec))
                obs_parts.append(program.observable_transfer.apply_bool(rec))
                if keep_measurement_flips:
                    rec_parts.append(rec)
            remaining -= size
        detectors = (
            np.concatenate(det_parts)
            if det_parts
            else np.zeros((0, program.num_detectors), dtype=bool)
        )
        observables = (
            np.concatenate(obs_parts)
            if obs_parts
            else np.zeros((0, program.num_observables), dtype=bool)
        )
        flips = np.concatenate(rec_parts) if rec_parts else None
        return SampleResult(detectors, observables, flips)


# ----------------------------------------------------------------------
# Boolean (legacy reference) backend
# ----------------------------------------------------------------------


def _run_block_bool(
    program: FrameProgram, lanes: int, rng: np.random.Generator
) -> np.ndarray:
    """Propagate one boolean block; return the record-flip matrix."""
    x = np.zeros((lanes, program.num_qubits), dtype=bool)
    z = np.zeros_like(x)
    rec = np.zeros((lanes, program.num_measurements), dtype=bool)
    for op in program.ops:
        kind = op.kind
        if kind == OP_H:
            q = op.targets
            tmp = x[:, q].copy()
            x[:, q] = z[:, q]
            z[:, q] = tmp
        elif kind == OP_CX:
            c, t = op.targets, op.partners
            x[:, t] ^= x[:, c]
            z[:, c] ^= z[:, t]
        elif kind == OP_R:
            x[:, op.targets] = False
            z[:, op.targets] = False
        elif kind == OP_M:
            ts = op.targets
            n = len(ts)
            outcome_flips = x[:, ts].copy()
            if op.arg > 0.0:
                outcome_flips ^= rng.random((lanes, n)) < op.arg
            rec[:, op.rec_start : op.rec_start + n] = outcome_flips
            # Measurement collapse: Z frame components become irrelevant.
            z[:, ts] = False
            if op.reset:
                x[:, ts] = False
        elif kind == OP_X_ERROR:
            x[:, op.targets] ^= rng.random((lanes, len(op.targets))) < op.arg
        elif kind == OP_Z_ERROR:
            z[:, op.targets] ^= rng.random((lanes, len(op.targets))) < op.arg
        elif kind == OP_DEPOLARIZE1:
            shape = (lanes, len(op.targets))
            hit = rng.random(shape) < op.arg
            which = rng.integers(0, 3, size=shape)  # 0: X, 1: Y, 2: Z
            x[:, op.targets] ^= hit & (which != 2)
            z[:, op.targets] ^= hit & (which != 0)
        elif kind == OP_DEPOLARIZE2:
            c, t = op.targets, op.partners
            shape = (lanes, len(c))
            hit = rng.random(shape) < op.arg
            # Uniform over the 15 non-identity two-qubit Paulis, encoded
            # as 4 bits (xc, zc, xt, zt) with value 0 excluded.
            which = rng.integers(1, 16, size=shape)
            x[:, c] ^= hit & ((which >> 3) & 1).astype(bool)
            z[:, c] ^= hit & ((which >> 2) & 1).astype(bool)
            x[:, t] ^= hit & ((which >> 1) & 1).astype(bool)
            z[:, t] ^= hit & (which & 1).astype(bool)
        else:  # pragma: no cover - compiler emits only the kinds above
            raise AssertionError(f"unhandled opcode: {kind}")
    return rec
