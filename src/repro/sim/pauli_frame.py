"""Batched Pauli-frame Monte-Carlo sampling of noisy stabilizer circuits.

This is the workhorse simulator of the reproduction, standing in for the
(heavily modified) Stim build the paper's artifact uses.  It exploits the
standard *Pauli frame* trick: instead of simulating quantum states, it tracks
-- for each Monte-Carlo shot -- the Pauli operator by which the noisy run
differs from a noiseless reference run.  Clifford gates conjugate the frame,
noise channels XOR random Paulis into it, and a Z-basis measurement outcome
is flipped relative to the reference exactly when the frame has an X
component on the measured qubit.

Because detectors are (by construction) deterministic parities of
measurement outcomes in the noiseless circuit, the sampled detector values
are simply parities of the *flips*, and the reference run never needs to be
computed.  Correctness of this shortcut is cross-validated against the CHP
tableau simulator in the test suite.

All shots are simulated simultaneously with NumPy boolean arrays, giving
throughput of millions of measurement layers per second -- enough to run
laptop-scale versions of the paper's Monte-Carlo memory experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit, Instruction

__all__ = ["SampleResult", "PauliFrameSimulator"]


@dataclass
class SampleResult:
    """Outcome of sampling a circuit.

    Attributes:
        detectors: Boolean array of shape ``(shots, num_detectors)``; entry
            ``[s, k]`` is True when detector ``k`` fired in shot ``s``.
        observables: Boolean array of shape ``(shots, num_observables)``;
            entry ``[s, k]`` is True when logical observable ``k`` was
            flipped relative to the noiseless reference in shot ``s``.
        measurement_flips: Boolean array ``(shots, num_measurements)`` of raw
            record flips, or None when not retained (the default, to save
            memory).
    """

    detectors: np.ndarray
    observables: np.ndarray
    measurement_flips: np.ndarray | None = None

    @property
    def shots(self) -> int:
        """Number of Monte-Carlo shots in this result."""
        return self.detectors.shape[0]


class PauliFrameSimulator:
    """Samples detector and observable flips of a noisy Clifford circuit.

    Args:
        circuit: The circuit to sample.  Two-qubit instructions must use
            disjoint targets (enforced by :class:`~repro.circuits.circuit.
            Instruction`), which permits fully vectorised application.
        seed: Seed for the internal PRNG; None draws entropy from the OS.
    """

    def __init__(self, circuit: Circuit, seed: int | None = None) -> None:
        self.circuit = circuit
        self._rng = np.random.default_rng(seed)
        # Precompute static lookups so that sampling loops stay tight.
        self._detector_records = circuit.detectors()
        self._observable_records = circuit.observables()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def sample(
        self,
        shots: int,
        *,
        chunk_size: int = 32_768,
        keep_measurement_flips: bool = False,
    ) -> SampleResult:
        """Sample ``shots`` independent noisy executions.

        Args:
            shots: Number of Monte-Carlo shots.
            chunk_size: Shots simulated per NumPy batch; bounds peak memory.
            keep_measurement_flips: Retain the raw record-flip matrix
                (memory-hungry for large circuits).

        Returns:
            A :class:`SampleResult` with detector and observable flips.
        """
        if shots < 0:
            raise ValueError("shots must be non-negative")
        det_parts: list[np.ndarray] = []
        obs_parts: list[np.ndarray] = []
        rec_parts: list[np.ndarray] = []
        remaining = shots
        while remaining > 0:
            batch = min(remaining, chunk_size)
            rec = self._run_batch(batch)
            det_parts.append(self._records_to_parities(rec, self._detector_records))
            obs_parts.append(self._records_to_parities(rec, self._observable_records))
            if keep_measurement_flips:
                rec_parts.append(rec)
            remaining -= batch
        num_det = self.circuit.num_detectors
        num_obs = self.circuit.num_observables
        detectors = (
            np.concatenate(det_parts)
            if det_parts
            else np.zeros((0, num_det), dtype=bool)
        )
        observables = (
            np.concatenate(obs_parts)
            if obs_parts
            else np.zeros((0, num_obs), dtype=bool)
        )
        flips = np.concatenate(rec_parts) if rec_parts else None
        return SampleResult(detectors, observables, flips)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _records_to_parities(
        rec: np.ndarray, index_groups: list[tuple[int, ...]]
    ) -> np.ndarray:
        """XOR selected record columns into one parity column per group."""
        out = np.zeros((rec.shape[0], len(index_groups)), dtype=bool)
        for k, indices in enumerate(index_groups):
            for idx in indices:
                out[:, k] ^= rec[:, idx]
        return out

    def _run_batch(self, batch: int) -> np.ndarray:
        """Propagate Pauli frames for one batch; return record flips."""
        num_qubits = self.circuit.num_qubits
        x = np.zeros((batch, num_qubits), dtype=bool)
        z = np.zeros((batch, num_qubits), dtype=bool)
        rec = np.zeros((batch, self.circuit.num_measurements), dtype=bool)
        cursor = 0  # next measurement-record column
        rng = self._rng
        for inst in self.circuit.instructions:
            cursor = self._apply(inst, x, z, rec, cursor, rng)
        return rec

    def _apply(
        self,
        inst: Instruction,
        x: np.ndarray,
        z: np.ndarray,
        rec: np.ndarray,
        cursor: int,
        rng: np.random.Generator,
    ) -> int:
        """Apply one instruction to the frame batch; return new cursor."""
        name = inst.name
        ts = list(inst.targets)
        if name == "TICK" or name == "DETECTOR" or name == "OBSERVABLE_INCLUDE":
            return cursor
        if name == "H":
            tmp = x[:, ts].copy()
            x[:, ts] = z[:, ts]
            z[:, ts] = tmp
            return cursor
        if name == "CX":
            controls = ts[0::2]
            targets = ts[1::2]
            x[:, targets] ^= x[:, controls]
            z[:, controls] ^= z[:, targets]
            return cursor
        if name == "R":
            x[:, ts] = False
            z[:, ts] = False
            return cursor
        if name == "M" or name == "MR":
            n = len(ts)
            outcome_flips = x[:, ts].copy()
            if inst.arg > 0.0:
                outcome_flips ^= rng.random((x.shape[0], n)) < inst.arg
            rec[:, cursor : cursor + n] = outcome_flips
            # Measurement collapses the state: a Z frame component on the
            # measured qubit becomes irrelevant (the post-measurement state
            # is a Z eigenstate).
            z[:, ts] = False
            if name == "MR":
                x[:, ts] = False
            return cursor + n
        if name == "X_ERROR":
            x[:, ts] ^= rng.random((x.shape[0], len(ts))) < inst.arg
            return cursor
        if name == "Z_ERROR":
            z[:, ts] ^= rng.random((z.shape[0], len(ts))) < inst.arg
            return cursor
        if name == "DEPOLARIZE1":
            shape = (x.shape[0], len(ts))
            hit = rng.random(shape) < inst.arg
            which = rng.integers(0, 3, size=shape)  # 0: X, 1: Y, 2: Z
            x[:, ts] ^= hit & (which != 2)
            z[:, ts] ^= hit & (which != 0)
            return cursor
        if name == "DEPOLARIZE2":
            controls = ts[0::2]
            targets = ts[1::2]
            shape = (x.shape[0], len(controls))
            hit = rng.random(shape) < inst.arg
            # Uniform over the 15 non-identity two-qubit Paulis, encoded as
            # 4 bits (xc, zc, xt, zt) with value 0 excluded.
            which = rng.integers(1, 16, size=shape)
            x[:, controls] ^= hit & ((which >> 3) & 1).astype(bool)
            z[:, controls] ^= hit & ((which >> 2) & 1).astype(bool)
            x[:, targets] ^= hit & ((which >> 1) & 1).astype(bool)
            z[:, targets] ^= hit & (which & 1).astype(bool)
            return cursor
        raise AssertionError(f"unhandled instruction: {name}")
