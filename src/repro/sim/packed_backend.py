"""Bit-packed execution of frame programs: 64 Monte-Carlo shots per word.

This backend stores the X/Z Pauli frames and the measurement record as
``uint64`` words -- bit ``b`` of word ``w`` is shot ``64 * w + b`` (the
:mod:`repro.sim.packing` layout) -- so Clifford conjugation becomes a
handful of word-wise XOR/swap/clear operations per op regardless of the
shot count, the trick Stim-class samplers get their bulk throughput from.

Noise channels toggle random frame bits.  Each channel is an independent
Bernoulli(p) process over a ``(targets, lanes)`` bit grid, realised one of
two ways (both exact):

* **Sparse** (the common case at physical error rates): hit offsets are
  generated directly by geometric-gap skipping -- consecutive hits of a
  Bernoulli(p) scan are separated by Geometric(p) gaps -- and scattered
  into the packed words with ``np.bitwise_xor.at``.  Work is O(hits), not
  O(bits).
* **Dense** (``p`` above :data:`DENSE_NOISE_THRESHOLD`): a boolean hit
  matrix is drawn directly and packed with a shift/OR reduction.

Both paths consume the block's own ``Generator``, so a block's output is a
pure function of (program, lanes, seed).
"""

from __future__ import annotations

import numpy as np

from ..backend import get_backend, to_device
from .frame_program import (
    OP_CX,
    OP_DEPOLARIZE1,
    OP_DEPOLARIZE2,
    OP_H,
    OP_M,
    OP_R,
    OP_X_ERROR,
    OP_Z_ERROR,
    FrameProgram,
)
from .packing import WORD_BITS, num_words, pack_rows

__all__ = ["run_block_packed", "bernoulli_positions", "DENSE_NOISE_THRESHOLD"]

#: Above this probability the dense (draw-every-bit) path is used; below
#: it, geometric-gap skipping generates only the hits.
DENSE_NOISE_THRESHOLD = 0.05


def bernoulli_positions(
    rng: np.random.Generator, n: int, p: float
) -> np.ndarray:
    """Offsets of the hits of an n-bit Bernoulli(p) scan, in order.

    Exact: position gaps between consecutive hits are Geometric(p), which
    is how the scan is generated -- in vectorised batches -- without ever
    materialising the non-hits.

    Args:
        rng: Source of randomness (consumed).
        n: Number of bits scanned.
        p: Per-bit hit probability.

    Returns:
        Sorted ``int64`` array of hit offsets in ``[0, n)``.
    """
    if n <= 0 or p <= 0.0:
        return np.zeros(0, dtype=np.int64)
    if p >= 1.0:
        return np.arange(n, dtype=np.int64)
    parts: list[np.ndarray] = []
    last = -1
    while True:
        expected = (n - 1 - last) * p
        batch = int(expected + 6.0 * np.sqrt(expected + 1.0) + 16.0)
        gaps = rng.geometric(p, size=batch)
        steps = np.cumsum(gaps) + last
        beyond = steps >= n
        if beyond.any():
            parts.append(steps[: int(np.argmax(beyond))])
            break
        parts.append(steps)
        last = int(steps[-1])
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)


def _scatter_toggle(
    words: np.ndarray, rows: np.ndarray, shots: np.ndarray
) -> None:
    """XOR single bits into packed rows: ``words[rows] ^= bit(shots)``."""
    if len(rows) == 0:
        return
    word = shots >> 6
    bit = np.uint64(1) << (shots & 63).astype(np.uint64)
    np.bitwise_xor.at(words, (rows, word), bit)


def _toggle_bernoulli(
    words: np.ndarray,
    rows: np.ndarray,
    p: float,
    lanes: int,
    rng: np.random.Generator,
) -> None:
    """Flip each bit of ``words[rows, :lanes]`` independently with prob p."""
    m = len(rows)
    if m == 0 or p <= 0.0:
        return
    if p < DENSE_NOISE_THRESHOLD:
        pos = bernoulli_positions(rng, m * lanes, p)
        _scatter_toggle(words, rows[pos // lanes], pos % lanes)
    else:
        hits = rng.random((m, lanes)) < p
        words[rows] ^= pack_rows(hits)


def _apply_depolarize1(
    x: np.ndarray,
    z: np.ndarray,
    rows: np.ndarray,
    p: float,
    lanes: int,
    rng: np.random.Generator,
) -> None:
    m = len(rows)
    if m == 0 or p <= 0.0:
        return
    if p < DENSE_NOISE_THRESHOLD:
        pos = bernoulli_positions(rng, m * lanes, p)
        if len(pos) == 0:
            return
        which = rng.integers(0, 3, size=len(pos))  # 0: X, 1: Y, 2: Z
        hit_rows = rows[pos // lanes]
        hit_shots = pos % lanes
        flips_x = which != 2
        flips_z = which != 0
        _scatter_toggle(x, hit_rows[flips_x], hit_shots[flips_x])
        _scatter_toggle(z, hit_rows[flips_z], hit_shots[flips_z])
    else:
        hits = rng.random((m, lanes)) < p
        which = rng.integers(0, 3, size=(m, lanes))
        x[rows] ^= pack_rows(hits & (which != 2))
        z[rows] ^= pack_rows(hits & (which != 0))


def _apply_depolarize2(
    x: np.ndarray,
    z: np.ndarray,
    controls: np.ndarray,
    targets: np.ndarray,
    p: float,
    lanes: int,
    rng: np.random.Generator,
) -> None:
    m = len(controls)
    if m == 0 or p <= 0.0:
        return
    if p < DENSE_NOISE_THRESHOLD:
        pos = bernoulli_positions(rng, m * lanes, p)
        if len(pos) == 0:
            return
        # Uniform over the 15 non-identity two-qubit Paulis, encoded as
        # 4 bits (xc, zc, xt, zt) with value 0 excluded.
        which = rng.integers(1, 16, size=len(pos))
        pair = pos // lanes
        shot = pos % lanes
        for words, rows, bit in (
            (x, controls, 3),
            (z, controls, 2),
            (x, targets, 1),
            (z, targets, 0),
        ):
            mask = ((which >> bit) & 1).astype(bool)
            _scatter_toggle(words, rows[pair[mask]], shot[mask])
    else:
        hits = rng.random((m, lanes)) < p
        which = rng.integers(1, 16, size=(m, lanes))
        for words, rows, bit in (
            (x, controls, 3),
            (z, controls, 2),
            (x, targets, 1),
            (z, targets, 0),
        ):
            words[rows] ^= pack_rows(hits & ((which >> bit) & 1).astype(bool))


def run_block_packed(
    program: FrameProgram, lanes: int, rng: np.random.Generator
) -> np.ndarray:
    """Propagate one bit-packed block of Pauli frames.

    Args:
        program: The compiled frame program.
        lanes: Number of shot lanes (rounded up to whole words; lanes past
            the requested shot count are simulated and later sliced away --
            frame operations never mix lanes, so padding is harmless).
        rng: The block's dedicated PRNG.

    Returns:
        ``(num_measurements, num_words(lanes))`` packed record-flip matrix.
        On the (default) NumPy backend this is a host ``uint64`` array;
        on a non-native array backend the finished record is shipped to
        the device with :func:`repro.backend.to_device` -- the ``uint64``
        scatter-XOR kernels and the block-seeded PRNG contract are
        host-only, so portable backends pay a transfer instead of a
        kernel (bit-identical by construction; torch stores the words as
        ``int64``, re-viewed losslessly on the way back).
    """
    backend = get_backend()
    words = num_words(lanes)
    padded_lanes = words * WORD_BITS
    x = np.zeros((program.num_qubits, words), dtype=np.uint64)
    z = np.zeros_like(x)
    rec = np.zeros((program.num_measurements, words), dtype=np.uint64)
    for op in program.ops:
        kind = op.kind
        if kind == OP_H:
            q = op.targets
            tmp = x[q].copy()
            x[q] = z[q]
            z[q] = tmp
        elif kind == OP_CX:
            c, t = op.targets, op.partners
            x[t] ^= x[c]
            z[c] ^= z[t]
        elif kind == OP_R:
            x[op.targets] = 0
            z[op.targets] = 0
        elif kind == OP_M:
            ts = op.targets
            start = op.rec_start
            span = np.arange(start, start + len(ts))
            rec[span] = x[ts]
            if op.arg > 0.0:
                _toggle_bernoulli(rec, span, op.arg, padded_lanes, rng)
            # Measurement collapse: Z frame components become irrelevant.
            z[ts] = 0
            if op.reset:
                x[ts] = 0
        elif kind == OP_X_ERROR:
            _toggle_bernoulli(x, op.targets, op.arg, padded_lanes, rng)
        elif kind == OP_Z_ERROR:
            _toggle_bernoulli(z, op.targets, op.arg, padded_lanes, rng)
        elif kind == OP_DEPOLARIZE1:
            _apply_depolarize1(x, z, op.targets, op.arg, padded_lanes, rng)
        elif kind == OP_DEPOLARIZE2:
            _apply_depolarize2(
                x, z, op.targets, op.partners, op.arg, padded_lanes, rng
            )
        else:  # pragma: no cover - compiler emits only the kinds above
            raise AssertionError(f"unhandled opcode: {kind}")
    if backend.native_numpy:
        return rec
    return to_device(rec, backend)
