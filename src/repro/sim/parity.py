"""Sparse record-to-parity transfer: detectors/observables from records.

Detectors and logical observables are parities of measurement-record bits.
Both the Pauli-frame sampler and the detector-error-model builder need to
reduce a sampled record matrix to those parities; historically each carried
its own double Python loop over ``(group, index)``.  This module provides
the shared, vectorised replacement: a CSR-layout sparse operator applied as
one gather + segmented-reduction per batch (boolean backend) or one
XOR-scatter of whole ``uint64`` words (bit-packed backend).

The boolean apply exploits that a ``uint8`` sum wraps modulo 256 -- an even
modulus -- so overflow cannot corrupt a parity; no widening is needed.

Both apply methods resolve the active array backend (:mod:`repro.backend`)
at call time.  On the native NumPy backend they take the historical fast
paths (``reduceat`` / ``bitwise_xor.at``); on portable backends
:meth:`ParityTransfer.apply_bool` runs a restricted array-API program
(flat ``take`` gather + ``cumulative_sum`` segment differences) on the
device, while :meth:`ParityTransfer.apply_packed` -- a ``uint64``
scatter-XOR with no portable equivalent -- computes on the host and is
documented as such.  Results are bit-identical across backends.
"""

from __future__ import annotations

import numpy as np

from ..backend import from_device, get_backend

__all__ = ["ParityTransfer"]


class ParityTransfer:
    """A sparse GF(2) matrix mapping record columns to parity groups.

    The operator is stored in CSR form (``indptr``/``indices`` over the
    record axis) and applied to batches of measurement records:

    * :meth:`apply_bool` -- ``(shots, num_records)`` bool rows in, one
      parity column per group out.
    * :meth:`apply_packed` -- ``(num_records, words)`` bit-packed ``uint64``
      rows in (64 shots per word), packed parity rows out.

    Args:
        num_records: Width of the record matrices this operator accepts.
        indptr: ``(num_groups + 1,)`` CSR row pointer.
        indices: ``(nnz,)`` record indices, concatenated per group.
    """

    def __init__(
        self, num_records: int, indptr: np.ndarray, indices: np.ndarray
    ) -> None:
        self.num_records = int(num_records)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.num_groups = len(self.indptr) - 1
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_records
        ):
            raise ValueError("parity-transfer index out of record range")
        sizes = np.diff(self.indptr)
        if (sizes < 0).any():
            raise ValueError("indptr must be non-decreasing")
        # Empty groups (an observable with no includes) contribute no
        # indices; reduceat segments are laid out over the non-empty ones.
        self._nonempty = np.nonzero(sizes > 0)[0]
        self._seg_starts = self.indptr[:-1][self._nonempty]
        self._group_per_index = np.repeat(
            np.arange(self.num_groups, dtype=np.int64), sizes
        )

    @classmethod
    def from_groups(
        cls, groups: list[tuple[int, ...]], num_records: int
    ) -> "ParityTransfer":
        """Build the operator from one index tuple per parity group."""
        indptr = np.zeros(len(groups) + 1, dtype=np.int64)
        for k, group in enumerate(groups):
            indptr[k + 1] = indptr[k] + len(group)
        flat = [idx for group in groups for idx in group]
        indices = np.asarray(flat, dtype=np.int64)
        return cls(num_records, indptr, indices)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply_bool(self, rec: np.ndarray) -> np.ndarray:
        """Reduce ``(shots, num_records)`` bool records to group parities.

        The array namespace is resolved at call time: native NumPy keeps
        the gather + ``reduceat`` fast path; portable backends compute the
        same parities from flat gathers and ``cumulative_sum`` segment
        differences on the device.  The result is always returned as a
        host array (downstream census accounting is host-side).

        Returns:
            ``(shots, num_groups)`` bool parity matrix.
        """
        backend = get_backend()
        rec = np.asarray(from_device(rec))
        if backend.native_numpy:
            shots = rec.shape[0]
            out = np.zeros((shots, self.num_groups), dtype=bool)
            if self.indices.size and self._seg_starts.size:
                gathered = rec[:, self.indices].astype(np.uint8)
                sums = np.add.reduceat(gathered, self._seg_starts, axis=1)
                out[:, self._nonempty] = (sums & 1).astype(bool)
            return out
        return self._apply_bool_portable(backend, rec)

    def _apply_bool_portable(self, backend, rec: np.ndarray) -> np.ndarray:
        """Array-API parity reduction: gather + cumulative-sum segments.

        Uses only portable operations -- ``take`` along an axis,
        ``cumulative_sum`` with ``include_initial`` and basic indexing --
        so the same program runs on CuPy/torch/array-api-strict.  Empty
        groups fall out naturally: their segment start equals their end,
        so the difference (hence the parity) is zero.
        """
        xp = backend.xp
        shots = rec.shape[0]
        if not self.indices.size:
            return np.zeros((shots, self.num_groups), dtype=bool)
        dev = backend.asarray(rec)
        idx = backend.asarray(self.indices)
        gathered = xp.astype(xp.take(dev, idx, axis=1), xp.int32)
        # (shots, nnz + 1) prefix sums; segment k's hit count is
        # prefix[indptr[k + 1]] - prefix[indptr[k]].
        prefix = xp.cumulative_sum(gathered, axis=1, include_initial=True)
        starts = xp.take(prefix, backend.asarray(self.indptr[:-1]), axis=1)
        ends = xp.take(prefix, backend.asarray(self.indptr[1:]), axis=1)
        parity = (ends - starts) % 2
        host = np.asarray(backend.to_numpy(parity))
        return host.astype(bool)

    def apply_bool_t(self, rec_t: np.ndarray) -> np.ndarray:
        """Reduce record-major ``(num_records, shots)`` bools to parities.

        The transposed twin of :meth:`apply_bool` for pipelines that keep
        batches record-major (one contiguous row per record): each group
        XORs whole rows, so no gather/reduceat over strided columns is
        needed.  Groups are small (detectors are parities of a handful of
        records), so the per-group Python loop is negligible next to the
        row-sized XORs it issues.

        Returns:
            ``(num_groups, shots)`` bool parity matrix.
        """
        out = np.zeros((self.num_groups, rec_t.shape[1]), dtype=bool)
        indices = self.indices.tolist()
        indptr = self.indptr.tolist()
        for group in range(self.num_groups):
            row = out[group]
            for k in range(indptr[group], indptr[group + 1]):
                row ^= rec_t[indices[k]]
        return out

    def apply_packed(self, rec_words: np.ndarray) -> np.ndarray:
        """Reduce bit-packed ``(num_records, words)`` records to parities.

        Accepts host arrays or device arrays from the active backend
        (``uint64`` words a backend stored as ``int64`` -- the torch
        caveat -- are re-viewed losslessly).  The scatter-XOR itself has
        no portable array-API primitive, so this kernel always computes
        on the host; see :mod:`repro.backend` for the packed-layout
        caveats.

        Returns:
            ``(num_groups, words)`` packed ``uint64`` parity matrix.
        """
        rec_words = np.asarray(from_device(rec_words))
        if rec_words.dtype == np.int64:
            rec_words = rec_words.view(np.uint64)
        words = rec_words.shape[1] if rec_words.ndim == 2 else 0
        out = np.zeros((self.num_groups, words), dtype=np.uint64)
        if self.indices.size:
            np.bitwise_xor.at(out, self._group_per_index, rec_words[self.indices])
        return out
