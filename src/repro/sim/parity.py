"""Sparse record-to-parity transfer: detectors/observables from records.

Detectors and logical observables are parities of measurement-record bits.
Both the Pauli-frame sampler and the detector-error-model builder need to
reduce a sampled record matrix to those parities; historically each carried
its own double Python loop over ``(group, index)``.  This module provides
the shared, vectorised replacement: a CSR-layout sparse operator applied as
one gather + segmented-reduction per batch (boolean backend) or one
XOR-scatter of whole ``uint64`` words (bit-packed backend).

The boolean apply exploits that a ``uint8`` sum wraps modulo 256 -- an even
modulus -- so overflow cannot corrupt a parity; no widening is needed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ParityTransfer"]


class ParityTransfer:
    """A sparse GF(2) matrix mapping record columns to parity groups.

    The operator is stored in CSR form (``indptr``/``indices`` over the
    record axis) and applied to batches of measurement records:

    * :meth:`apply_bool` -- ``(shots, num_records)`` bool rows in, one
      parity column per group out.
    * :meth:`apply_packed` -- ``(num_records, words)`` bit-packed ``uint64``
      rows in (64 shots per word), packed parity rows out.

    Args:
        num_records: Width of the record matrices this operator accepts.
        indptr: ``(num_groups + 1,)`` CSR row pointer.
        indices: ``(nnz,)`` record indices, concatenated per group.
    """

    def __init__(
        self, num_records: int, indptr: np.ndarray, indices: np.ndarray
    ) -> None:
        self.num_records = int(num_records)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.num_groups = len(self.indptr) - 1
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_records
        ):
            raise ValueError("parity-transfer index out of record range")
        sizes = np.diff(self.indptr)
        if (sizes < 0).any():
            raise ValueError("indptr must be non-decreasing")
        # Empty groups (an observable with no includes) contribute no
        # indices; reduceat segments are laid out over the non-empty ones.
        self._nonempty = np.nonzero(sizes > 0)[0]
        self._seg_starts = self.indptr[:-1][self._nonempty]
        self._group_per_index = np.repeat(
            np.arange(self.num_groups, dtype=np.int64), sizes
        )

    @classmethod
    def from_groups(
        cls, groups: list[tuple[int, ...]], num_records: int
    ) -> "ParityTransfer":
        """Build the operator from one index tuple per parity group."""
        indptr = np.zeros(len(groups) + 1, dtype=np.int64)
        for k, group in enumerate(groups):
            indptr[k + 1] = indptr[k] + len(group)
        flat = [idx for group in groups for idx in group]
        indices = np.asarray(flat, dtype=np.int64)
        return cls(num_records, indptr, indices)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply_bool(self, rec: np.ndarray) -> np.ndarray:
        """Reduce ``(shots, num_records)`` bool records to group parities.

        Returns:
            ``(shots, num_groups)`` bool parity matrix.
        """
        shots = rec.shape[0]
        out = np.zeros((shots, self.num_groups), dtype=bool)
        if self.indices.size and self._seg_starts.size:
            gathered = rec[:, self.indices].astype(np.uint8)
            sums = np.add.reduceat(gathered, self._seg_starts, axis=1)
            out[:, self._nonempty] = (sums & 1).astype(bool)
        return out

    def apply_bool_t(self, rec_t: np.ndarray) -> np.ndarray:
        """Reduce record-major ``(num_records, shots)`` bools to parities.

        The transposed twin of :meth:`apply_bool` for pipelines that keep
        batches record-major (one contiguous row per record): each group
        XORs whole rows, so no gather/reduceat over strided columns is
        needed.  Groups are small (detectors are parities of a handful of
        records), so the per-group Python loop is negligible next to the
        row-sized XORs it issues.

        Returns:
            ``(num_groups, shots)`` bool parity matrix.
        """
        out = np.zeros((self.num_groups, rec_t.shape[1]), dtype=bool)
        indices = self.indices.tolist()
        indptr = self.indptr.tolist()
        for group in range(self.num_groups):
            row = out[group]
            for k in range(indptr[group], indptr[group + 1]):
                row ^= rec_t[indices[k]]
        return out

    def apply_packed(self, rec_words: np.ndarray) -> np.ndarray:
        """Reduce bit-packed ``(num_records, words)`` records to parities.

        Returns:
            ``(num_groups, words)`` packed ``uint64`` parity matrix.
        """
        words = rec_words.shape[1] if rec_words.ndim == 2 else 0
        out = np.zeros((self.num_groups, words), dtype=np.uint64)
        if self.indices.size:
            np.bitwise_xor.at(out, self._group_per_index, rec_words[self.indices])
        return out
