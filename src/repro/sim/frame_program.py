"""One-time compilation of circuits into flat frame programs.

The Pauli-frame sampler used to re-interpret the :class:`Circuit` IR on
every chunk: string dispatch on instruction names, ``list(inst.targets)``
rebuilt per instruction per chunk, and a running measurement cursor.  The
compiler here lowers a circuit **once** into a :class:`FrameProgram` -- a
flat list of :class:`FrameOp` with precomputed NumPy index arrays, integer
opcodes, statically resolved record offsets, and adjacent compatible
operations fused -- which both the boolean and the bit-packed backends
then replay with no per-chunk interpretation work.

Annotations (``TICK`` / ``DETECTOR`` / ``OBSERVABLE_INCLUDE``) never touch
the frame; they are dropped from the op stream and folded into the
program's two :class:`~repro.sim.parity.ParityTransfer` operators, and
zero-probability noise channels are eliminated outright.

Fusion is deliberately conservative: two adjacent ops merge only when they
have the same opcode, the same probability argument, and disjoint qubit
sets (plus, for measurements, the same reset flag and contiguous record
columns), which makes the fused op exactly equivalent to the sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import Circuit
from .parity import ParityTransfer

__all__ = [
    "OP_H",
    "OP_CX",
    "OP_R",
    "OP_M",
    "OP_X_ERROR",
    "OP_Z_ERROR",
    "OP_DEPOLARIZE1",
    "OP_DEPOLARIZE2",
    "FrameOp",
    "FrameProgram",
    "compile_frame_program",
]

OP_H = 0
OP_CX = 1
OP_R = 2
OP_M = 3
OP_X_ERROR = 4
OP_Z_ERROR = 5
OP_DEPOLARIZE1 = 6
OP_DEPOLARIZE2 = 7

#: Opcodes whose ``arg`` is a probability that must match for fusion.
_ARG_KINDS = frozenset(
    {OP_M, OP_X_ERROR, OP_Z_ERROR, OP_DEPOLARIZE1, OP_DEPOLARIZE2}
)

_KIND_BY_NAME = {
    "H": OP_H,
    "CX": OP_CX,
    "R": OP_R,
    "M": OP_M,
    "MR": OP_M,
    "X_ERROR": OP_X_ERROR,
    "Z_ERROR": OP_Z_ERROR,
    "DEPOLARIZE1": OP_DEPOLARIZE1,
    "DEPOLARIZE2": OP_DEPOLARIZE2,
}


@dataclass
class FrameOp:
    """One lowered frame operation.

    Attributes:
        kind: Integer opcode (one of the ``OP_*`` constants).
        targets: Qubit indices; for two-qubit ops, the *control* qubits.
        partners: Target qubits of two-qubit ops (``CX`` / ``DEPOLARIZE2``),
            aligned with ``targets``; None otherwise.
        arg: Noise probability (noise ops) or record-flip probability
            (``OP_M``); 0.0 otherwise.
        rec_start: First measurement-record column written by ``OP_M``
            (statically resolved at compile time); -1 otherwise.
        reset: Whether an ``OP_M`` also resets (the ``MR`` variant).
    """

    kind: int
    targets: np.ndarray
    partners: np.ndarray | None = None
    arg: float = 0.0
    rec_start: int = -1
    reset: bool = False

    def qubit_set(self) -> set[int]:
        """All qubits this op touches (controls and partners)."""
        qubits = set(self.targets.tolist())
        if self.partners is not None:
            qubits.update(self.partners.tolist())
        return qubits


@dataclass
class FrameProgram:
    """A compiled circuit, ready for repeated block execution.

    Attributes:
        num_qubits: Frame width.
        num_measurements: Record width.
        ops: The lowered (and fused) op stream.
        detector_transfer: Record-to-detector parity operator.
        observable_transfer: Record-to-observable parity operator.
        source_instructions: Instruction count of the source circuit
            (annotation and no-op instructions included), for diagnostics.
    """

    num_qubits: int
    num_measurements: int
    ops: list[FrameOp] = field(default_factory=list)
    detector_transfer: ParityTransfer | None = None
    observable_transfer: ParityTransfer | None = None
    source_instructions: int = 0

    @property
    def num_detectors(self) -> int:
        """Number of detector parity groups."""
        return self.detector_transfer.num_groups if self.detector_transfer else 0

    @property
    def num_observables(self) -> int:
        """Number of logical-observable parity groups."""
        return (
            self.observable_transfer.num_groups if self.observable_transfer else 0
        )

    def __len__(self) -> int:
        return len(self.ops)


def _can_fuse(prev: FrameOp, op: FrameOp) -> bool:
    """Whether ``op`` may be merged into ``prev`` without changing semantics."""
    if prev.kind != op.kind:
        return False
    if op.kind in _ARG_KINDS and prev.arg != op.arg:
        return False
    if op.kind == OP_M:
        if prev.reset != op.reset:
            return False
        if op.rec_start != prev.rec_start + len(prev.targets):
            return False
    # Disjoint qubit sets make simultaneous (vectorised) application
    # exactly equivalent to sequential application.
    return not (prev.qubit_set() & op.qubit_set())


def _fuse_into(prev: FrameOp, op: FrameOp) -> None:
    prev.targets = np.concatenate([prev.targets, op.targets])
    if prev.partners is not None:
        prev.partners = np.concatenate([prev.partners, op.partners])


def compile_frame_program(circuit: Circuit, *, fuse: bool = True) -> FrameProgram:
    """Lower a circuit to a :class:`FrameProgram`.

    Args:
        circuit: The circuit to compile.
        fuse: Merge adjacent compatible ops (same opcode and argument,
            disjoint qubits).  Disable to keep a 1:1 instruction/op
            correspondence.

    Returns:
        The compiled program.
    """
    ops: list[FrameOp] = []
    cursor = 0
    for inst in circuit.instructions:
        name = inst.name
        if name in ("TICK", "DETECTOR", "OBSERVABLE_INCLUDE"):
            continue
        ts = np.asarray(inst.targets, dtype=np.int64)
        kind = _KIND_BY_NAME[name]
        if kind == OP_M:
            op = FrameOp(
                kind,
                ts,
                arg=inst.arg,
                rec_start=cursor,
                reset=(name == "MR"),
            )
            cursor += len(ts)
        elif kind in (OP_CX, OP_DEPOLARIZE2):
            op = FrameOp(
                kind, ts[0::2].copy(), partners=ts[1::2].copy(), arg=inst.arg
            )
        else:
            op = FrameOp(kind, ts, arg=inst.arg)
        if kind != OP_M and kind in _ARG_KINDS and op.arg <= 0.0:
            continue  # dead noise channel
        if len(op.targets) == 0:
            continue
        if fuse and ops and _can_fuse(ops[-1], op):
            _fuse_into(ops[-1], op)
            continue
        ops.append(op)
    return FrameProgram(
        num_qubits=circuit.num_qubits,
        num_measurements=circuit.num_measurements,
        ops=ops,
        detector_transfer=ParityTransfer.from_groups(
            circuit.detectors(), circuit.num_measurements
        ),
        observable_transfer=ParityTransfer.from_groups(
            circuit.observables(), circuit.num_measurements
        ),
        source_instructions=len(circuit.instructions),
    )
