"""Memory (state-preservation) experiment circuits (paper section 3.4).

A memory experiment prepares a logical basis state, runs ``d`` rounds of
syndrome extraction under circuit-level noise, and finally measures every
data qubit to read out the logical state.  Decoding succeeds when the
decoder's predicted logical flip matches the actual one.

The generated circuit annotates one detector per parity check per layer:
``rounds`` measured layers plus a final layer reconstructed from the data
measurement, giving the per-basis syndrome-vector lengths of paper Table 1
(``(d+1)(d^2-1)/2`` for ``rounds = d``).

Only the detectors of the memory basis are annotated (Z-basis experiments
decode the Z decoding graph), mirroring the paper's evaluation methodology:
"X syndromes and Z syndromes are decoded independently" and the two bases
are functionally equivalent under this noise model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codes.rotated import RotatedSurfaceCode
from .circuit import Circuit
from .noise import NoiseParams

__all__ = ["MemoryExperiment", "build_memory_circuit"]


@dataclass
class MemoryExperiment:
    """A memory-experiment circuit plus the metadata decoders need.

    Attributes:
        circuit: The annotated noisy circuit.
        code: The underlying rotated surface code.
        noise: Noise parameters used to build the circuit.
        basis: ``"z"`` or ``"x"`` memory basis.
        rounds: Number of measured syndrome-extraction rounds.
        detector_coords: Per-detector ``(x, y, t)`` coordinates, where
            ``(x, y)`` is the parity qubit's lattice position and ``t`` the
            detector layer (``0..rounds``).
        qubit_noise_scale: Per-qubit noise multipliers used in the build
            (empty for the paper's uniform model).
    """

    circuit: Circuit
    code: RotatedSurfaceCode
    noise: NoiseParams
    basis: str
    rounds: int
    detector_coords: list[tuple[int, int, int]] = field(default_factory=list)
    qubit_noise_scale: dict[int, float] = field(default_factory=dict)

    @property
    def detectors_per_layer(self) -> int:
        """Parity checks annotated per detector layer."""
        return (self.code.distance ** 2 - 1) // 2

    @property
    def num_detectors(self) -> int:
        """Total detector count (``(rounds + 1)`` layers)."""
        return self.circuit.num_detectors


def build_memory_circuit(
    distance: int,
    noise: NoiseParams,
    *,
    rounds: int | None = None,
    basis: str = "z",
    qubit_noise_scale: dict[int, float] | None = None,
) -> MemoryExperiment:
    """Build a noisy memory-experiment circuit for a rotated surface code.

    Args:
        distance: Odd code distance >= 3.
        noise: Circuit-level noise parameters (see :class:`NoiseParams`).
        rounds: Measured syndrome-extraction rounds; defaults to ``distance``
            as the paper requires for tolerating measurement errors.
        basis: ``"z"`` (prepare/measure logical ``|0>``) or ``"x"``.
        qubit_noise_scale: Optional per-qubit multipliers on every error
            probability touching that qubit (two-qubit channels use the
            larger of the pair's multipliers; probabilities are clipped to
            1).  Models the non-uniform error rates and drift of paper
            section 8.2, which Astrea absorbs by reprogramming the Global
            Weight Table built from this circuit.

    Returns:
        The :class:`MemoryExperiment` bundle.
    """
    if basis not in ("z", "x"):
        raise ValueError(f"basis must be 'z' or 'x', got {basis!r}")
    code = RotatedSurfaceCode(distance)
    if rounds is None:
        rounds = distance
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    scale = _NoiseScale(qubit_noise_scale)

    circuit = Circuit()
    data = list(code.data_qubits)
    x_anc = list(code.x_ancillas)
    z_anc = list(code.z_ancillas)
    all_anc = x_anc + z_anc
    basis_stabs = code.z_stabilizers() if basis == "z" else code.x_stabilizers()
    basis_anc = [s.ancilla for s in basis_stabs]
    detector_coords: list[tuple[int, int, int]] = []

    # --- State preparation (noiseless, per the paper's model) -------------
    circuit.add("R", data + all_anc)
    if basis == "x":
        circuit.add("H", data)

    # Measurement-record bookkeeping: ancillas are measured once per round
    # in the order x_anc + z_anc, then every data qubit is measured once.
    anc_pos = {q: i for i, q in enumerate(all_anc)}
    data_pos = {q: i for i, q in enumerate(data)}

    def anc_record(round_index: int, ancilla: int) -> int:
        return round_index * len(all_anc) + anc_pos[ancilla]

    def data_record(qubit: int) -> int:
        return rounds * len(all_anc) + data_pos[qubit]

    # --- Syndrome-extraction rounds ---------------------------------------
    for r in range(rounds):
        circuit.add("TICK")
        for targets, p in scale.groups(data, noise.data_depolarization):
            circuit.add("DEPOLARIZE1", targets, p)
        _extraction_cycle(circuit, code, noise, scale)
        for targets, p in scale.runs(all_anc, noise.measurement_flip):
            circuit.add("MR", targets, p)
        for targets, p in scale.groups(all_anc, noise.reset_flip):
            circuit.add("X_ERROR", targets, p)
        for stab in basis_stabs:
            if r == 0:
                records = (anc_record(0, stab.ancilla),)
            else:
                records = (
                    anc_record(r, stab.ancilla),
                    anc_record(r - 1, stab.ancilla),
                )
            circuit.add("DETECTOR", records)
            cx, cy = code.coords[stab.ancilla]
            detector_coords.append((cx, cy, r))

    # --- Final transversal data measurement --------------------------------
    circuit.add("TICK")
    if basis == "x":
        circuit.add("H", data)
        for targets, p in scale.groups(data, noise.gate1_depolarization):
            circuit.add("DEPOLARIZE1", targets, p)
    for targets, p in scale.runs(data, noise.measurement_flip):
        circuit.add("M", targets, p)
    for stab in basis_stabs:
        records = tuple(data_record(q) for q in stab.data) + (
            anc_record(rounds - 1, stab.ancilla),
        )
        circuit.add("DETECTOR", records)
        cx, cy = code.coords[stab.ancilla]
        detector_coords.append((cx, cy, rounds))

    logical = code.logical_z if basis == "z" else code.logical_x
    circuit.add("OBSERVABLE_INCLUDE", tuple(data_record(q) for q in logical), 0.0)

    return MemoryExperiment(
        circuit=circuit,
        code=code,
        noise=noise,
        basis=basis,
        rounds=rounds,
        detector_coords=detector_coords,
        qubit_noise_scale=dict(scale.multipliers),
    )


def _extraction_cycle(
    circuit: Circuit,
    code: RotatedSurfaceCode,
    noise: NoiseParams,
    scale: "_NoiseScale",
) -> None:
    """Append one syndrome-extraction cycle (H / 4 CX layers / H)."""
    x_anc = list(code.x_ancillas)
    circuit.add("H", x_anc)
    for targets, p in scale.groups(x_anc, noise.gate1_depolarization):
        circuit.add("DEPOLARIZE1", targets, p)
    for layer in range(4):
        pairs: list[int] = []
        for stab in code.stabilizers:
            partner = stab.schedule[layer]
            if partner is None:
                continue
            if stab.kind == "X":
                pairs.extend((stab.ancilla, partner))
            else:
                pairs.extend((partner, stab.ancilla))
        if pairs:
            circuit.add("CX", pairs)
            for targets, p in scale.pair_groups(pairs, noise.gate2_depolarization):
                circuit.add("DEPOLARIZE2", targets, p)
    circuit.add("H", x_anc)
    for targets, p in scale.groups(x_anc, noise.gate1_depolarization):
        circuit.add("DEPOLARIZE1", targets, p)


class _NoiseScale:
    """Per-qubit noise multipliers, grouped for batched instruction emission.

    With no multipliers (or all equal to 1) the emitted instruction stream
    is identical to the uniform builder's.
    """

    def __init__(self, multipliers: dict[int, float] | None) -> None:
        self.multipliers = dict(multipliers) if multipliers else {}
        for qubit, factor in self.multipliers.items():
            if factor < 0:
                raise ValueError(
                    f"noise multiplier for qubit {qubit} must be >= 0"
                )

    def factor(self, qubit: int) -> float:
        """Multiplier of one qubit (1.0 when unspecified)."""
        return self.multipliers.get(qubit, 1.0)

    @staticmethod
    def _clip(p: float) -> float:
        return min(1.0, p)

    def groups(
        self, qubits: list[int], p: float
    ) -> list[tuple[list[int], float]]:
        """Qubits grouped by scaled probability; empty when ``p == 0``.

        Order-insensitive: use only for pure noise channels.
        """
        if p <= 0:
            return []
        by_p: dict[float, list[int]] = {}
        for q in qubits:
            by_p.setdefault(self._clip(p * self.factor(q)), []).append(q)
        return [(targets, sp) for sp, targets in sorted(by_p.items()) if sp > 0]

    def runs(self, qubits: list[int], p: float) -> list[tuple[list[int], float]]:
        """Consecutive equal-probability runs, preserving qubit order.

        Use for measurement operations, whose emission order defines the
        measurement record; always yields every qubit (even at ``p == 0``).
        """
        out: list[tuple[list[int], float]] = []
        for q in qubits:
            sp = self._clip(p * self.factor(q))
            if out and out[-1][1] == sp:
                out[-1][0].append(q)
            else:
                out.append(([q], sp))
        return out

    def pair_groups(
        self, flat_pairs: list[int], p: float
    ) -> list[tuple[list[int], float]]:
        """(control, target) pairs grouped by the pair's scaled probability.

        A pair's multiplier is the larger of its two qubits' multipliers
        (a hot qubit degrades every gate it participates in).
        """
        if p <= 0:
            return []
        by_p: dict[float, list[int]] = {}
        for k in range(0, len(flat_pairs), 2):
            a, b = flat_pairs[k], flat_pairs[k + 1]
            sp = self._clip(p * max(self.factor(a), self.factor(b)))
            by_p.setdefault(sp, []).extend((a, b))
        return [(targets, sp) for sp, targets in sorted(by_p.items()) if sp > 0]
