"""The paper's circuit-level depolarizing noise model (section 3.2).

Depolarizing errors are inserted with probability ``p``:

1. on every data qubit at the beginning of each syndrome-extraction round;
2. on data and parity qubits after each syndrome-extraction operation
   (two-qubit depolarizing after each CX, single-qubit after each H);
3. on parity qubits after measurement (a record flip with probability ``p``)
   and after reset (an X error with probability ``p``).

The model is parameterised so that ablations can vary the individual rates,
but :meth:`NoiseParams.uniform` reproduces the paper's single-parameter
model where every rate equals ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NoiseParams"]


@dataclass(frozen=True)
class NoiseParams:
    """Error probabilities of the circuit-level noise model.

    Attributes:
        data_depolarization: Single-qubit depolarizing rate applied to every
            data qubit at the start of each round.
        gate2_depolarization: Two-qubit depolarizing rate after each CX.
        gate1_depolarization: Single-qubit depolarizing rate after each H.
        measurement_flip: Probability that a measurement record is flipped.
        reset_flip: X-error probability after a reset.
    """

    data_depolarization: float = 0.0
    gate2_depolarization: float = 0.0
    gate1_depolarization: float = 0.0
    measurement_flip: float = 0.0
    reset_flip: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "data_depolarization",
            "gate2_depolarization",
            "gate1_depolarization",
            "measurement_flip",
            "reset_flip",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @classmethod
    def uniform(cls, p: float) -> "NoiseParams":
        """The paper's model: every error source fires with probability p."""
        return cls(
            data_depolarization=p,
            gate2_depolarization=p,
            gate1_depolarization=p,
            measurement_flip=p,
            reset_flip=p,
        )

    @classmethod
    def noiseless(cls) -> "NoiseParams":
        """All error rates zero (for determinism checks)."""
        return cls()

    @property
    def is_noiseless(self) -> bool:
        """True when every rate is exactly zero."""
        return (
            self.data_depolarization == 0.0
            and self.gate2_depolarization == 0.0
            and self.gate1_depolarization == 0.0
            and self.measurement_flip == 0.0
            and self.reset_flip == 0.0
        )
