"""Stim circuit-language interoperability.

The paper's artifact builds on a modified Stim; this repository rebuilds
the simulator instead, but speaks Stim's circuit text format so that
circuits can be exchanged with the wider tooling ecosystem (Stim,
PyMatching, crumble):

* :func:`to_stim` serialises a :class:`~repro.circuits.circuit.Circuit`
  to Stim text, converting our absolute measurement-record indices to
  Stim's relative ``rec[-k]`` lookbacks;
* :func:`from_stim` parses the supported subset of Stim text back into a
  :class:`Circuit` (the gates, noise channels and annotations this
  reproduction uses; ``QUBIT_COORDS`` and comments are accepted and
  ignored / preserved as coordinates).

Round-tripping is exact for every circuit this package generates and is
property-tested in the test suite.
"""

from __future__ import annotations

import re

from .circuit import (
    Circuit,
    Instruction,
    MEASUREMENT_NAMES,
    NOISE_NAMES,
)

__all__ = ["to_stim", "from_stim"]

_SUPPORTED = {
    "R",
    "H",
    "CX",
    "M",
    "MR",
    "X_ERROR",
    "Z_ERROR",
    "DEPOLARIZE1",
    "DEPOLARIZE2",
    "TICK",
    "DETECTOR",
    "OBSERVABLE_INCLUDE",
}

_LINE_RE = re.compile(
    r"^(?P<name>[A-Z_0-9]+)"
    r"(?:\((?P<args>[^)]*)\))?"
    r"(?P<targets>(?:\s+\S+)*)\s*$"
)


def _format_float(value: float) -> str:
    """Render a probability the way Stim prints them (no trailing zeros)."""
    text = f"{value:.12g}"
    return text


def to_stim(
    circuit: Circuit, *, coords: dict[int, tuple[int, int]] | None = None
) -> str:
    """Serialise a circuit to Stim's text format.

    Args:
        circuit: The circuit to serialise.
        coords: Optional qubit coordinates, emitted as ``QUBIT_COORDS``
            header lines.

    Returns:
        Stim circuit text.
    """
    lines: list[str] = []
    if coords:
        for qubit in sorted(coords):
            x, y = coords[qubit]
            lines.append(f"QUBIT_COORDS({x}, {y}) {qubit}")
    measurements_seen = 0
    for inst in circuit.instructions:
        name = inst.name
        if name == "TICK":
            lines.append("TICK")
            continue
        if name == "DETECTOR" or name == "OBSERVABLE_INCLUDE":
            recs = " ".join(
                f"rec[-{measurements_seen - t}]" for t in inst.targets
            )
            if name == "DETECTOR":
                lines.append(f"DETECTOR {recs}".rstrip())
            else:
                lines.append(
                    f"OBSERVABLE_INCLUDE({int(inst.arg)}) {recs}".rstrip()
                )
            continue
        arg = ""
        if name in NOISE_NAMES or (name in MEASUREMENT_NAMES and inst.arg > 0):
            arg = f"({_format_float(inst.arg)})"
        targets = " ".join(str(t) for t in inst.targets)
        lines.append(f"{name}{arg} {targets}".rstrip())
        if name in MEASUREMENT_NAMES:
            measurements_seen += len(inst.targets)
    return "\n".join(lines) + "\n"


def from_stim(text: str) -> tuple[Circuit, dict[int, tuple[float, float]]]:
    """Parse (the supported subset of) Stim circuit text.

    Args:
        text: Stim circuit text.  Supported operations: R, H, CX, M, MR,
            X_ERROR, Z_ERROR, DEPOLARIZE1, DEPOLARIZE2, TICK, DETECTOR,
            OBSERVABLE_INCLUDE and QUBIT_COORDS.  ``#`` comments and blank
            lines are skipped.

    Returns:
        Tuple ``(circuit, coords)`` where ``coords`` holds any
        ``QUBIT_COORDS`` annotations found.

    Raises:
        ValueError: On unsupported operations or malformed lines.
    """
    circuit = Circuit()
    coords: dict[int, tuple[float, float]] = {}
    measurements_seen = 0
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise ValueError(f"cannot parse line: {raw_line!r}")
        name = match.group("name")
        args = match.group("args")
        target_text = match.group("targets").split()
        if name == "QUBIT_COORDS":
            parts = [float(v) for v in args.split(",")] if args else []
            if len(parts) != 2 or len(target_text) != 1:
                raise ValueError(f"malformed QUBIT_COORDS line: {raw_line!r}")
            coords[int(target_text[0])] = (parts[0], parts[1])
            continue
        if name not in _SUPPORTED:
            raise ValueError(f"unsupported Stim operation: {name}")
        if name == "DETECTOR" or name == "OBSERVABLE_INCLUDE":
            targets = []
            for token in target_text:
                rec = re.fullmatch(r"rec\[-(\d+)\]", token)
                if not rec:
                    raise ValueError(f"expected rec[-k] target, got {token!r}")
                lookback = int(rec.group(1))
                absolute = measurements_seen - lookback
                if absolute < 0:
                    raise ValueError(f"lookback {lookback} precedes the record")
                targets.append(absolute)
            arg = float(args) if args and name == "OBSERVABLE_INCLUDE" else 0.0
            circuit.append(Instruction(name, tuple(targets), arg))
            continue
        arg = float(args) if args else 0.0
        targets = tuple(int(t) for t in target_text)
        circuit.append(Instruction(name, targets, arg))
        if name in MEASUREMENT_NAMES:
            measurements_seen += len(targets)
    return circuit, coords
