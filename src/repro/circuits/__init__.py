"""Stabilizer-circuit IR, noise model and experiment-circuit builders."""

from .circuit import Circuit, Instruction
from .memory import MemoryExperiment, build_memory_circuit
from .noise import NoiseParams
from .stim_io import from_stim, to_stim

__all__ = [
    "Circuit",
    "Instruction",
    "MemoryExperiment",
    "NoiseParams",
    "build_memory_circuit",
    "from_stim",
    "to_stim",
]
