"""A minimal stabilizer-circuit intermediate representation.

This module plays the role that Stim's circuit language plays in the paper's
artifact: it describes Clifford circuits with Pauli noise channels,
measurement records, *detectors* (parity checks over measurement records that
are deterministic in the absence of noise) and *logical observables*.

The IR is deliberately small: only the operations needed by surface-code
memory experiments are supported.  Every instruction is validated when it is
appended so that downstream consumers (the Pauli-frame sampler, the detector
error-model builder) can assume well-formed programs.

Supported operations
--------------------

======================  ==========================================  =========
Name                    Targets                                     Argument
======================  ==========================================  =========
``R``                   qubits to reset to ``|0>``                  --
``H``                   qubits                                      --
``CX``                  (control, target) pairs                     --
``M``                   qubits to measure in the Z basis            p (flip)
``MR``                  qubits to measure then reset                p (flip)
``X_ERROR``             qubits                                      p
``Z_ERROR``             qubits                                      p
``DEPOLARIZE1``         qubits                                      p
``DEPOLARIZE2``         (control, target) pairs                     p
``TICK``                --                                          --
``DETECTOR``            absolute measurement-record indices         --
``OBSERVABLE_INCLUDE``  absolute measurement-record indices         obs index
======================  ==========================================  =========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "Instruction",
    "Circuit",
    "GATE_NAMES",
    "NOISE_NAMES",
    "TWO_QUBIT_NAMES",
    "MEASUREMENT_NAMES",
]

#: Clifford / reset / measurement operations (no probability argument).
GATE_NAMES = frozenset({"R", "H", "CX", "M", "MR", "TICK"})

#: Probabilistic Pauli noise channels (require ``0 <= p <= 1``).
NOISE_NAMES = frozenset({"X_ERROR", "Z_ERROR", "DEPOLARIZE1", "DEPOLARIZE2"})

#: Operations whose targets are consumed in (control, target) pairs.
TWO_QUBIT_NAMES = frozenset({"CX", "DEPOLARIZE2"})

#: Operations that append to the measurement record, one bit per target.
MEASUREMENT_NAMES = frozenset({"M", "MR"})

#: Annotations over the measurement record.
ANNOTATION_NAMES = frozenset({"DETECTOR", "OBSERVABLE_INCLUDE"})

_ALL_NAMES = GATE_NAMES | NOISE_NAMES | ANNOTATION_NAMES


@dataclass(frozen=True)
class Instruction:
    """One circuit operation.

    Attributes:
        name: Operation name; one of the names documented in the module
            docstring.
        targets: Qubit indices for gates/noise, or absolute measurement
            record indices for ``DETECTOR`` / ``OBSERVABLE_INCLUDE``.
        arg: Error probability for noise channels, the observable index for
            ``OBSERVABLE_INCLUDE``, and ``0.0`` otherwise.
    """

    name: str
    targets: tuple[int, ...] = ()
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.name not in _ALL_NAMES:
            raise ValueError(f"unknown instruction name: {self.name!r}")
        if self.name in NOISE_NAMES and not 0.0 <= self.arg <= 1.0:
            raise ValueError(
                f"{self.name} probability must be in [0, 1], got {self.arg}"
            )
        if self.name in MEASUREMENT_NAMES and not 0.0 <= self.arg <= 1.0:
            raise ValueError(
                f"{self.name} record-flip probability must be in [0, 1], "
                f"got {self.arg}"
            )
        if self.name in TWO_QUBIT_NAMES:
            if len(self.targets) % 2 != 0:
                raise ValueError(f"{self.name} requires an even number of targets")
            if len(set(self.targets)) != len(self.targets):
                # Batched (vectorised) application requires each qubit to
                # appear at most once per instruction; split across several
                # instructions if a qubit participates in two interactions.
                raise ValueError(f"{self.name} targets must be distinct")
        if self.name == "OBSERVABLE_INCLUDE" and self.arg < 0:
            raise ValueError("observable index must be non-negative")
        if any(t < 0 for t in self.targets):
            raise ValueError(f"negative target in {self.name}: {self.targets}")

    @property
    def target_pairs(self) -> list[tuple[int, int]]:
        """The targets grouped as (control, target) pairs.

        Only meaningful for two-qubit operations.
        """
        ts = self.targets
        return [(ts[i], ts[i + 1]) for i in range(0, len(ts), 2)]

    def __str__(self) -> str:
        arg = f"({self.arg})" if self.name in NOISE_NAMES else (
            f"({int(self.arg)})" if self.name == "OBSERVABLE_INCLUDE" else ""
        )
        tail = " " + " ".join(map(str, self.targets)) if self.targets else ""
        return f"{self.name}{arg}{tail}"


@dataclass
class Circuit:
    """An ordered list of :class:`Instruction` with record bookkeeping.

    The circuit tracks how many measurement results, detectors and logical
    observables its instructions define, and validates detector/observable
    record references as instructions are appended.
    """

    instructions: list[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._num_qubits = 0
        self._num_measurements = 0
        self._num_detectors = 0
        self._num_observables = 0
        existing = list(self.instructions)
        self.instructions = []
        for inst in existing:
            self.append(inst)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, inst: Instruction) -> None:
        """Append an instruction, updating qubit/record counts."""
        if inst.name == "DETECTOR" or inst.name == "OBSERVABLE_INCLUDE":
            future = [t for t in inst.targets if t >= self._num_measurements]
            if future:
                raise ValueError(
                    f"{inst.name} references measurement record(s) {future} "
                    f"but only {self._num_measurements} measurements exist"
                )
            if inst.name == "DETECTOR":
                self._num_detectors += 1
            else:
                obs_index = int(inst.arg)
                self._num_observables = max(self._num_observables, obs_index + 1)
        else:
            if inst.targets:
                self._num_qubits = max(self._num_qubits, max(inst.targets) + 1)
            if inst.name in MEASUREMENT_NAMES:
                self._num_measurements += len(inst.targets)
        self.instructions.append(inst)

    def add(self, name: str, targets: Iterable[int] = (), arg: float = 0.0) -> None:
        """Convenience wrapper: build and append an :class:`Instruction`."""
        self.append(Instruction(name, tuple(targets), arg))

    def extend(self, other: "Circuit") -> None:
        """Append every instruction of ``other`` (re-validating records)."""
        for inst in other.instructions:
            self.append(inst)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits (1 + the largest qubit index used)."""
        return self._num_qubits

    @property
    def num_measurements(self) -> int:
        """Total number of measurement-record bits the circuit produces."""
        return self._num_measurements

    @property
    def num_detectors(self) -> int:
        """Number of ``DETECTOR`` annotations."""
        return self._num_detectors

    @property
    def num_observables(self) -> int:
        """Number of distinct logical observables."""
        return self._num_observables

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        return "\n".join(str(inst) for inst in self.instructions)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def detectors(self) -> list[tuple[int, ...]]:
        """Measurement-record index tuples, one per detector, in order."""
        return [
            inst.targets for inst in self.instructions if inst.name == "DETECTOR"
        ]

    def observables(self) -> list[tuple[int, ...]]:
        """Measurement-record index tuples, one per logical observable.

        Observable ``k``'s value is the parity of the returned records. An
        observable mentioned by several ``OBSERVABLE_INCLUDE`` instructions
        accumulates all of their targets.
        """
        obs: list[list[int]] = [[] for _ in range(self._num_observables)]
        for inst in self.instructions:
            if inst.name == "OBSERVABLE_INCLUDE":
                obs[int(inst.arg)].extend(inst.targets)
        return [tuple(o) for o in obs]

    def without_noise(self) -> "Circuit":
        """A copy with all noise removed.

        Noise channels are dropped and the record-flip probabilities of
        measurement operations are zeroed, so the result is fully
        deterministic wherever the original circuit's detectors are.
        """
        clean = Circuit()
        for inst in self.instructions:
            if inst.name in NOISE_NAMES:
                continue
            if inst.name in MEASUREMENT_NAMES and inst.arg != 0.0:
                clean.append(Instruction(inst.name, inst.targets, 0.0))
            else:
                clean.append(inst)
        return clean

    def count(self, name: str) -> int:
        """Number of instructions with the given name."""
        return sum(1 for inst in self.instructions if inst.name == name)

    def noise_channels(self) -> list[Instruction]:
        """All noise-channel instructions, in program order."""
        return [inst for inst in self.instructions if inst.name in NOISE_NAMES]
