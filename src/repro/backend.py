"""Array-backend seam: one namespace switch for every hot kernel.

The bit-packed sampler and the batched matching/decoding kernels are pure
array programs -- elementwise arithmetic, gathers, reductions, ``argmin``
-- exactly the shape that ports to CuPy/torch/array-API backends with no
algorithm change (Micro Blossom, arXiv:2502.14787, and the
Tesseract-acceleration work, arXiv:2602.02985, accelerate the same fused
decoding loops).  Historically every kernel hard-imported ``numpy`` at
module top, so none of them could run anywhere else.  This module is the
seam that removes that coupling:

* :func:`get_namespace` / :func:`get_backend` return the active array
  namespace; hot kernels resolve it **at call time** instead of binding
  ``numpy`` at import.
* :func:`set_backend` / :func:`use_backend` switch it -- ``"numpy"`` by
  default, honouring the ``REPRO_ARRAY_BACKEND`` environment variable,
  with CuPy / torch / ``array-api-strict`` available when importable.
* :func:`to_device` / :func:`from_device` move arrays across the seam
  explicitly, including the packed ``uint64`` word layout of
  :mod:`repro.sim.packing` (64 shots per word; see the per-backend
  caveats below).

Backends come in two families, distinguished by
:attr:`ArrayBackend.native_numpy`:

* **native** (``numpy``): kernels take their existing fast path, which
  may use NumPy-only machinery (``ufunc.at`` scatters, ``reduceat``,
  multi-axis fancy indexing).  Results are bit-identical to the pre-seam
  code by construction -- it *is* the pre-seam code.
* **portable** (everything else): kernels route through a restricted op
  set -- flat ``take`` gathers, ``cumulative_sum`` segment reductions,
  ``argmin`` -- that the array-API standard guarantees.  The built-in
  ``numpy_generic`` backend runs this portable path on NumPy arrays, so
  the portable kernels are exercised (and pinned bit-identical to the
  native path) even on machines with no alternate array library
  installed; ``array-api-strict`` validates the same path against the
  standard's strict subset, and CuPy/torch move it to an accelerator.

Known ``uint64`` caveats: the packed sampler mutates ``uint64`` bit
planes with scatter-XOR, for which no portable array-API primitive
exists (torch in particular has no usable ``uint64`` arithmetic).  On
portable backends those kernels therefore compute on the host and ship
the finished record to the device via :func:`to_device` -- bit-identical
by construction, with transfer cost instead of kernel cost.  The
decode-side kernels (batched search, union-find growth) carry no such
caveat: they are float/int programs and run natively on the portable op
set.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendInfo",
    "ENV_BACKEND",
    "ENV_DEVICE",
    "available_backends",
    "backend_info",
    "from_device",
    "get_backend",
    "get_namespace",
    "set_backend",
    "to_device",
    "use_backend",
]

#: Environment variable selecting the default backend at first use.
ENV_BACKEND = "REPRO_ARRAY_BACKEND"
#: Environment variable selecting the torch device (default ``"cpu"``).
ENV_DEVICE = "REPRO_ARRAY_DEVICE"


@dataclass(frozen=True)
class ArrayBackend:
    """One pluggable array namespace plus its host-transfer functions.

    Attributes:
        name: Registry name (``"numpy"``, ``"numpy_generic"``, ``"cupy"``,
            ``"torch"``, ``"array-api-strict"``).
        xp: The array namespace module (or adapter object).
        device: Human-readable device string (``"cpu"``, ``"cuda:0"``).
        native_numpy: Whether kernels may take their NumPy-only fast
            paths (``ufunc.at``, ``reduceat``, fancy indexing); portable
            backends get the restricted array-API path instead.
        asarray: Host array -> backend array.
        to_numpy: Backend array -> host ``np.ndarray``.
    """

    name: str
    xp: Any
    device: str
    native_numpy: bool
    asarray: Callable[[Any], Any]
    to_numpy: Callable[[Any], np.ndarray]


@dataclass(frozen=True)
class BackendInfo:
    """Snapshot of the seam's state, for ``cli info`` and diagnostics."""

    name: str
    device: str
    native_numpy: bool
    importable: dict[str, bool]


class _NumpyGenericNamespace:
    """NumPy delegating shim flagged *portable*.

    Identical semantics to ``numpy`` (every attribute lookup delegates),
    but registered with ``native_numpy=False`` so seam-aware kernels take
    their portable array-API code path.  This is the always-available
    stand-in for an alternate array library: the per-backend golden
    bit-identity tests diff this backend against native NumPy, proving
    the portable kernels correct without CuPy/torch installed.
    """

    def __getattr__(self, name: str) -> Any:
        return getattr(np, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<numpy_generic (portable-path numpy shim)>"


class _TorchNamespace:
    """Minimal array-API-flavoured adapter over ``torch``.

    Covers exactly the op set the portable kernels use (``asarray``,
    ``zeros``, ``arange``, ``reshape``, flat ``take``, ``argmin``,
    ``sum``, ``astype``), translating ``axis`` to ``dim`` where torch
    differs.  Anything else raises ``AttributeError`` loudly rather than
    silently diverging from NumPy semantics.
    """

    def __init__(self, torch: Any, device: str) -> None:
        self._torch = torch
        self._device = device
        # Array-API dtype attributes the portable kernels reference.
        self.bool = torch.bool
        self.int32 = torch.int32
        self.int64 = torch.int64
        self.float32 = torch.float32
        self.float64 = torch.float64

    def _dtype(self, dtype: Any) -> Any:
        torch = self._torch
        mapping = {
            np.float64: torch.float64,
            np.float32: torch.float32,
            np.int64: torch.int64,
            np.int32: torch.int32,
            np.bool_: torch.bool,
            bool: torch.bool,
        }
        for np_dtype, torch_dtype in mapping.items():
            if dtype == np_dtype:
                return torch_dtype
        return dtype  # already a torch dtype

    def asarray(self, obj: Any, dtype: Any = None) -> Any:
        torch = self._torch
        if isinstance(obj, np.ndarray):
            # torch has no uint64 arithmetic; keep packed words signed.
            if obj.dtype == np.uint64:
                obj = obj.view(np.int64)
            obj = np.ascontiguousarray(obj)
        kwargs = {"device": self._device}
        if dtype is not None:
            kwargs["dtype"] = self._dtype(dtype)
        return torch.as_tensor(obj, **kwargs)

    def zeros(self, shape: Any, dtype: Any = None) -> Any:
        return self._torch.zeros(
            shape, dtype=self._dtype(dtype), device=self._device
        )

    def arange(self, *args: Any, dtype: Any = None) -> Any:
        kwargs = {"device": self._device}
        if dtype is not None:
            kwargs["dtype"] = self._dtype(dtype)
        return self._torch.arange(*args, **kwargs)

    def reshape(self, x: Any, shape: Any) -> Any:
        return self._torch.reshape(x, shape)

    def take(self, x: Any, indices: Any, axis: int | None = None) -> Any:
        if axis is None:
            return self._torch.take(x, indices)
        return self._torch.index_select(x, axis, indices)

    def argmin(self, x: Any, axis: int | None = None) -> Any:
        return self._torch.argmin(x, dim=axis)

    def sum(self, x: Any, axis: int | None = None) -> Any:
        return self._torch.sum(x, dim=axis)

    def cumulative_sum(self, x: Any, axis: int = 0) -> Any:
        return self._torch.cumsum(x, dim=axis)

    def astype(self, x: Any, dtype: Any) -> Any:
        return x.to(self._dtype(dtype))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<torch namespace adapter on {self._device!r}>"


# ----------------------------------------------------------------------
# Backend construction
# ----------------------------------------------------------------------


def _generic_to_numpy(x: Any) -> np.ndarray:
    """Host transfer for array-API objects without ``__array__``."""
    if isinstance(x, np.ndarray):
        return x
    try:
        return np.asarray(x)
    except (TypeError, ValueError, RuntimeError):
        return np.asarray(np.from_dlpack(x))


def _build_numpy() -> ArrayBackend:
    return ArrayBackend(
        name="numpy",
        xp=np,
        device="cpu",
        native_numpy=True,
        asarray=np.asarray,
        to_numpy=np.asarray,
    )


def _build_numpy_generic() -> ArrayBackend:
    return ArrayBackend(
        name="numpy_generic",
        xp=_NumpyGenericNamespace(),
        device="cpu",
        native_numpy=False,
        asarray=np.asarray,
        to_numpy=np.asarray,
    )


def _build_array_api_strict() -> ArrayBackend:
    xp = importlib.import_module("array_api_strict")
    return ArrayBackend(
        name="array-api-strict",
        xp=xp,
        device="cpu",
        native_numpy=False,
        asarray=xp.asarray,
        to_numpy=_generic_to_numpy,
    )


def _build_cupy() -> ArrayBackend:
    cupy = importlib.import_module("cupy")
    try:
        device = f"cuda:{cupy.cuda.runtime.getDevice()}"
    except Exception:  # pragma: no cover - no GPU in CI
        device = "cuda"
    return ArrayBackend(
        name="cupy",
        xp=cupy,
        device=device,
        native_numpy=False,
        asarray=cupy.asarray,
        to_numpy=cupy.asnumpy,
    )


def _build_torch() -> ArrayBackend:
    torch = importlib.import_module("torch")
    device = os.environ.get(ENV_DEVICE, "cpu")
    xp = _TorchNamespace(torch, device)
    return ArrayBackend(
        name="torch",
        xp=xp,
        device=device,
        native_numpy=False,
        asarray=xp.asarray,
        to_numpy=lambda t: t.detach().cpu().numpy(),
    )


_BUILDERS: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _build_numpy,
    "numpy_generic": _build_numpy_generic,
    "array-api-strict": _build_array_api_strict,
    "cupy": _build_cupy,
    "torch": _build_torch,
}

#: Module spec probed per backend name by :func:`available_backends`.
_IMPORT_PROBE = {
    "numpy": "numpy",
    "numpy_generic": "numpy",
    "array-api-strict": "array_api_strict",
    "cupy": "cupy",
    "torch": "torch",
}

_active: ArrayBackend | None = None


def available_backends() -> dict[str, bool]:
    """Map every registered backend name to whether it is importable."""
    out: dict[str, bool] = {}
    for name, module in _IMPORT_PROBE.items():
        try:
            out[name] = importlib.util.find_spec(module) is not None
        except (ImportError, ValueError):  # pragma: no cover - exotic paths
            out[name] = False
    return out


def _resolve_default() -> ArrayBackend:
    """Honour ``REPRO_ARRAY_BACKEND``; fall back to numpy with a warning."""
    requested = os.environ.get(ENV_BACKEND, "").strip()
    if requested and requested != "numpy":
        try:
            return _build(requested)
        except (KeyError, ImportError, ModuleNotFoundError) as exc:
            warnings.warn(
                f"{ENV_BACKEND}={requested!r} is not usable ({exc}); "
                "falling back to the numpy backend",
                RuntimeWarning,
                stacklevel=3,
            )
    return _build("numpy")


def _build(name: str) -> ArrayBackend:
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown array backend {name!r}; "
            f"registered: {sorted(_BUILDERS)}"
        ) from None
    return builder()


def get_backend() -> ArrayBackend:
    """The active :class:`ArrayBackend` (resolved lazily on first use)."""
    global _active
    if _active is None:
        _active = _resolve_default()
    return _active


def get_namespace() -> Any:
    """The active array namespace (``numpy`` by default)."""
    return get_backend().xp


def set_backend(backend: str | ArrayBackend | None) -> ArrayBackend:
    """Activate an array backend.

    Args:
        backend: A registered name, a prebuilt :class:`ArrayBackend`, or
            ``None`` to re-resolve the default (environment variable,
            then numpy).

    Returns:
        The newly active backend.

    Raises:
        KeyError: Unknown backend name.
        ImportError: The backend's library is not installed.
    """
    global _active
    if backend is None:
        _active = _resolve_default()
    elif isinstance(backend, ArrayBackend):
        _active = backend
    else:
        _active = _build(backend)
    return _active


@contextmanager
def use_backend(backend: str | ArrayBackend) -> Iterator[ArrayBackend]:
    """Context manager: activate ``backend``, restore the previous one."""
    previous = get_backend()
    active = set_backend(backend)
    try:
        yield active
    finally:
        set_backend(previous)


def to_device(arr: Any, backend: ArrayBackend | None = None) -> Any:
    """Move a host array onto the active (or given) backend's device."""
    b = backend or get_backend()
    return b.asarray(arr)


def from_device(arr: Any, backend: ArrayBackend | None = None) -> Any:
    """Bring an active-backend array back to a host ``np.ndarray``.

    Host ``np.ndarray`` inputs pass through untouched; plain Python
    sequences and scalars also fall through unchanged (callers normalise
    them with ``np.asarray`` as before).  Packed ``uint64`` words that a
    backend stored as ``int64`` (the torch caveat) are re-viewed as
    ``uint64`` on the way back when they carry the packed layout marker.
    """
    if isinstance(arr, np.ndarray):
        return arr
    b = backend or get_backend()
    if b.native_numpy:
        return arr
    try:
        return b.to_numpy(arr)
    except (TypeError, ValueError, RuntimeError):
        return arr


def backend_info() -> BackendInfo:
    """Snapshot the seam state: active backend, device, importability."""
    active = get_backend()
    return BackendInfo(
        name=active.name,
        device=active.device,
        native_numpy=active.native_numpy,
        importable=available_backends(),
    )
