"""Matching algorithms: blossom, exhaustive/DP matchers, boundary folding."""

from .blossom import max_weight_matching, min_weight_perfect_matching
from .boundary import MatchingProblem
from .brute_force import (
    count_perfect_matchings,
    count_perfect_matchings_in_graph,
    iter_perfect_matchings,
    min_weight_perfect_matching_brute,
    min_weight_perfect_matching_dp,
)

__all__ = [
    "MatchingProblem",
    "count_perfect_matchings",
    "count_perfect_matchings_in_graph",
    "iter_perfect_matchings",
    "max_weight_matching",
    "min_weight_perfect_matching",
    "min_weight_perfect_matching_brute",
    "min_weight_perfect_matching_dp",
]
