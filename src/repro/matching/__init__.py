"""Matching algorithms: blossom, exhaustive/DP matchers, boundary folding,
the vectorized search kernels and the sparse exact-MWPM engine."""

from .blossom import max_weight_matching, min_weight_perfect_matching
from .boundary import MatchingProblem, MatchingProblemBatch, matching_to_detectors
from .brute_force import (
    count_perfect_matchings,
    count_perfect_matchings_in_graph,
    iter_perfect_matchings,
    min_weight_perfect_matching_brute,
    min_weight_perfect_matching_dp,
)
from .search import (
    MAX_SEARCH_NODES,
    all_perfect_matchings,
    batched_search,
    matchings_tensor,
    vectorized_search,
)
from .sparse import SparseMatchingEngine, SparseStats, default_tolerance

__all__ = [
    "MAX_SEARCH_NODES",
    "MatchingProblem",
    "MatchingProblemBatch",
    "SparseMatchingEngine",
    "SparseStats",
    "all_perfect_matchings",
    "batched_search",
    "count_perfect_matchings",
    "count_perfect_matchings_in_graph",
    "default_tolerance",
    "iter_perfect_matchings",
    "matching_to_detectors",
    "matchings_tensor",
    "max_weight_matching",
    "min_weight_perfect_matching",
    "min_weight_perfect_matching_brute",
    "min_weight_perfect_matching_dp",
    "vectorized_search",
]
