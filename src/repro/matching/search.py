"""Vectorized exhaustive-search matching kernels (Astrea's search, batched).

A syndrome of Hamming weight ``w`` has only ``(w - 1)!!`` perfect matchings
-- at most 945 for ``w = 10`` -- so exact MWPM over few nodes reduces to
enumerating all of them (paper section 5).  This module holds the NumPy
index-tensor kernels that evaluate every candidate matching with one
fancy-indexed gather plus an ``argmin``:

* :func:`matchings_tensor` enumerates all perfect matchings of ``m`` nodes
  in the exact order Astrea's scalar hardware-model search explores them;
* :func:`vectorized_search` solves one weight matrix;
* :func:`batched_search` solves a whole ``(B, m, m)`` bucket at once.

The kernels originated in :mod:`repro.decoders.astrea` (which re-exports
them for backward compatibility) and were hoisted into the matching layer
so that pure matching code -- notably the sparse exact-MWPM engine in
:mod:`repro.matching.sparse` -- can evaluate small matching problems
without depending on the decoder layer.

Tie-breaking is *hierarchical*, mirroring the HW6Decoder-based scalar
search (Figure 7): results are bit-identical to the scalar reference,
pairs and weight alike.

Both public kernels resolve the active array backend
(:mod:`repro.backend`) at call time.  Native NumPy keeps the historical
fancy-indexed fast path; portable backends run the same enumeration
through a restricted array-API program (flat ``take`` gathers, per-level
``argmin``), returning device arrays from :func:`batched_search`.  The
left-to-right accumulation order and first-occurrence ``argmin``
semantics are part of the array-API standard, so the hierarchical
tie-breaking -- hence the selected matchings -- stays bit-identical
across backends.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..backend import ArrayBackend, get_backend

__all__ = [
    "MAX_SEARCH_NODES",
    "all_perfect_matchings",
    "matchings_tensor",
    "vectorized_search",
    "batched_search",
    "hw6_accesses_for",
]

#: Largest node count the exhaustive index-tensor kernels support (945
#: candidate matchings); larger problems belong to the blossom solver.
MAX_SEARCH_NODES = 10


@lru_cache(maxsize=None)
def all_perfect_matchings(m: int) -> tuple[tuple[tuple[int, int], ...], ...]:
    """All perfect matchings of ``m`` nodes (cached; recursive order)."""
    if m == 0:
        return ((),)
    out = []
    nodes = list(range(m))
    first = nodes[0]
    for idx in range(1, m):
        partner = nodes[idx]
        rest = nodes[1:idx] + nodes[idx + 1 :]
        remap = {local: original for local, original in enumerate(rest)}
        for sub in all_perfect_matchings(m - 2):
            out.append(
                ((first, partner),)
                + tuple((remap[a], remap[b]) for a, b in sub)
            )
    return tuple(out)


@lru_cache(maxsize=None)
def matchings_tensor(m: int) -> np.ndarray:
    """All perfect matchings of ``m`` nodes as one integer index tensor.

    Returns a read-only ``(num_matchings, m / 2, 2)`` array enumerating the
    ``(m - 1)!!`` perfect matchings in *exactly* the order the scalar search
    explores them (:func:`all_perfect_matchings` shares its recursive
    structure with the pre-match search of :mod:`repro.decoders.astrea`),
    so that ``argmin`` over the vectorized totals breaks ties identically
    to the scalar search's strict-improvement rule.

    Args:
        m: Even node count, 0 <= m <= 10.

    Returns:
        The index tensor; fancy-indexing a weight matrix with its two
        trailing columns gathers every candidate matching's pair weights at
        once.
    """
    if m % 2 or m > MAX_SEARCH_NODES:
        raise ValueError(f"matchings_tensor supports even m <= 10, got {m}")
    if m == 0:
        tensor = np.zeros((1, 0, 2), dtype=np.intp)
    else:
        tensor = np.asarray(all_perfect_matchings(m), dtype=np.intp)
    tensor.setflags(write=False)
    return tensor


def hw6_accesses_for(m: int) -> int:
    """HW6Decoder accesses the exhaustive search performs for ``m`` nodes."""
    if m == 0:
        return 0
    if m <= 6:
        return 1
    return 7 if m == 8 else 63


def _ltr_sum(gathered: np.ndarray) -> np.ndarray:
    """Sum the last axis left to right (the HW6Decoder's accumulation)."""
    total = gathered[..., 0]
    for k in range(1, gathered.shape[-1]):
        total = total + gathered[..., k]
    return total


def _scalar_order_select(
    gathered: np.ndarray, m: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pick each row's minimum matching exactly as the scalar search does.

    The scalar search is *hierarchical*: the HW6Decoder first selects the
    best completion of each pre-match block by comparing its partial sums,
    and only then does each pre-match level compare ``head + sub`` block
    totals (section 5.3 / Figure 7b).  Because every comparison operates
    on *rounded* floating-point partials, a flat ``argmin`` over full
    matching totals can break ties differently; this helper replicates the
    per-level comparisons (and their left-to-right accumulation order) so
    the selected matching -- not just its weight -- is bit-identical to
    the scalar reference.

    Args:
        gathered: ``(B, K, num_pairs)`` per-pair weights of every candidate
            matching, in :func:`matchings_tensor` order.
        m: Node count (even, 2 <= m <= 10).

    Returns:
        Tuple ``(best_index, best_total)`` of ``(B,)`` arrays.
    """
    num = gathered.shape[0]
    rows = np.arange(num)
    if m <= 6:
        totals = _ltr_sum(gathered)
        best = totals.argmin(axis=-1)
        return best, totals[rows, best]
    if m == 8:
        # 7 pre-match blocks x 15 HW6 completions.
        blocks = gathered.reshape(num, 7, 15, 4)
        subs = _ltr_sum(blocks[..., 1:])
        sub_idx = subs.argmin(axis=-1)
        sub_best = np.take_along_axis(subs, sub_idx[..., None], axis=-1)[..., 0]
        totals = blocks[..., 0, 0] + sub_best
        block_idx = totals.argmin(axis=-1)
        best = block_idx * 15 + sub_idx[rows, block_idx]
        return best, totals[rows, block_idx]
    # m == 10: 9 x 7 pre-match blocks x 15 HW6 completions.
    blocks = gathered.reshape(num, 9, 7, 15, 5)
    subs = _ltr_sum(blocks[..., 2:])
    sub_idx = subs.argmin(axis=-1)
    sub_best = np.take_along_axis(subs, sub_idx[..., None], axis=-1)[..., 0]
    inner = blocks[..., 0, 1] + sub_best
    inner_idx = inner.argmin(axis=-1)
    inner_best = np.take_along_axis(inner, inner_idx[..., None], axis=-1)[..., 0]
    outer = blocks[..., 0, 0, 0] + inner_best
    outer_idx = outer.argmin(axis=-1)
    inner_sel = inner_idx[rows, outer_idx]
    sub_sel = sub_idx[rows, outer_idx, inner_sel]
    best = (outer_idx * 7 + inner_sel) * 15 + sub_sel
    return best, outer[rows, outer_idx]


# ----------------------------------------------------------------------
# Portable (array-API) variants of the selection kernels
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def _flat_matching_indices(m: int) -> np.ndarray:
    """:func:`matchings_tensor` pairs as flat ``(K, P)`` row-major indices."""
    tensor = matchings_tensor(m)
    flat = (tensor[:, :, 0] * m + tensor[:, :, 1]).astype(np.int64)
    flat.setflags(write=False)
    return flat


def _take_along_last(xp, x, idx):
    """Portable ``take_along_axis(x, idx[..., None], -1)[..., 0]``.

    ``x`` has shape ``(..., L)``; ``idx`` the matching leading shape.
    Implemented with flat ``take`` so it works on namespaces that predate
    ``take_along_axis`` in the array-API standard.
    """
    shape = x.shape
    length = shape[-1]
    n = 1
    for s in shape[:-1]:
        n *= s
    flat_x = xp.reshape(x, (n * length,))
    flat_i = xp.astype(xp.reshape(idx, (n,)), xp.int64) + xp.arange(
        n, dtype=xp.int64
    ) * length
    return xp.reshape(xp.take(flat_x, flat_i), shape[:-1])


def _gather_rows(xp, x, idx):
    """Per-row gather: ``x`` is ``(B, L)``, ``idx`` is ``(B, P)`` -> ``(B, P)``."""
    num, length = x.shape
    cols = idx.shape[1]
    flat_x = xp.reshape(x, (num * length,))
    offsets = xp.reshape(xp.arange(num, dtype=xp.int64) * length, (num, 1))
    flat_i = xp.reshape(xp.astype(idx, xp.int64) + offsets, (num * cols,))
    return xp.reshape(xp.take(flat_x, flat_i), (num, cols))


def _scalar_order_select_xp(xp, gathered, m: int):
    """Array-API twin of :func:`_scalar_order_select`.

    Same left-to-right partial sums, per-level ``argmin`` (first
    occurrence -- mandated by the array-API spec, matching NumPy) and
    strict-improvement composition, so the selected index and total are
    bit-identical to the native kernel.
    """
    if m <= 6:
        totals = _ltr_sum(gathered)
        best = xp.argmin(totals, axis=-1)
        return best, _take_along_last(xp, totals, best)
    num = gathered.shape[0]
    if m == 8:
        blocks = xp.reshape(gathered, (num, 7, 15, 4))
        subs = _ltr_sum(blocks[..., 1:])
        sub_idx = xp.argmin(subs, axis=-1)
        sub_best = _take_along_last(xp, subs, sub_idx)
        totals = blocks[..., 0, 0] + sub_best
        block_idx = xp.argmin(totals, axis=-1)
        best = block_idx * 15 + xp.astype(
            _take_along_last(xp, sub_idx, block_idx), block_idx.dtype
        )
        return best, _take_along_last(xp, totals, block_idx)
    # m == 10: 9 x 7 pre-match blocks x 15 HW6 completions.
    blocks = xp.reshape(gathered, (num, 9, 7, 15, 5))
    subs = _ltr_sum(blocks[..., 2:])
    sub_idx = xp.argmin(subs, axis=-1)
    sub_best = _take_along_last(xp, subs, sub_idx)
    inner = blocks[..., 0, 1] + sub_best
    inner_idx = xp.argmin(inner, axis=-1)
    inner_best = _take_along_last(xp, inner, inner_idx)
    outer = blocks[..., 0, 0, 0] + inner_best
    outer_idx = xp.argmin(outer, axis=-1)
    inner_sel = xp.astype(
        _take_along_last(xp, inner_idx, outer_idx), outer_idx.dtype
    )
    sub_flat = xp.reshape(sub_idx, (num, 63))
    sub_sel = xp.astype(
        _take_along_last(xp, sub_flat, outer_idx * 7 + inner_sel),
        outer_idx.dtype,
    )
    best = (outer_idx * 7 + inner_sel) * 15 + sub_sel
    return best, _take_along_last(xp, outer, outer_idx)


def _gathered_candidates_xp(backend: ArrayBackend, weights: np.ndarray, m: int):
    """Device ``(B, K, P)`` per-pair weights of every candidate matching."""
    xp = backend.xp
    num = weights.shape[0]
    flat_idx = backend.asarray(_flat_matching_indices(m).ravel())
    dev_w = backend.asarray(np.ascontiguousarray(weights, dtype=np.float64))
    flat_w = xp.reshape(dev_w, (num, m * m))
    tensor = matchings_tensor(m)
    gathered = xp.reshape(
        xp.take(flat_w, flat_idx, axis=1),
        (num, tensor.shape[0], tensor.shape[1]),
    )
    return gathered


def vectorized_search(
    weights: np.ndarray,
) -> tuple[list[tuple[int, int]], float, int]:
    """Exact MWPM of one small weight matrix by exhaustive enumeration.

    Evaluates all candidate matchings with a single fancy-indexed gather
    plus an ``argmin`` instead of nested Python loops.  Returns bit-identical
    pairs, weight and access count to the scalar HW6Decoder-based search,
    on every array backend.

    Args:
        weights: Effective pair-weight matrix of an even node count <= 10.

    Returns:
        Tuple ``(pairs, total_weight, hw6_accesses)``.
    """
    m = weights.shape[0]
    if m == 0:
        return [], 0.0, 0
    if m % 2 or m > MAX_SEARCH_NODES:
        raise ValueError(f"exhaustive search supports at most 10 nodes, got {m}")
    backend = get_backend()
    tensor = matchings_tensor(m)
    if backend.native_numpy:
        gathered = weights[None, tensor[:, :, 0], tensor[:, :, 1]]
        best, total = _scalar_order_select(gathered, m)
        best_index = int(best[0])
        best_total = float(total[0])
    else:
        gathered = _gathered_candidates_xp(backend, weights[None], m)
        best, total = _scalar_order_select_xp(backend.xp, gathered, m)
        best_index = int(backend.to_numpy(best).reshape(-1)[0])
        best_total = float(backend.to_numpy(total).reshape(-1)[0])
    pairs = [(int(a), int(b)) for a, b in tensor[best_index]]
    return pairs, best_total, hw6_accesses_for(m)


def batched_search(
    weights: np.ndarray, parities: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exhaustive MWPM search over a whole bucket of syndromes at once.

    Args:
        weights: ``(B, m, m)`` pair-weight tensor (even ``m`` <= 10), e.g.
            from :meth:`MatchingProblem.from_syndrome_batch`.
        parities: ``(B, m, m)`` bool tensor of logical parities.

    Returns:
        Tuple ``(pair_tensor, total_weights, predictions)`` where
        ``pair_tensor`` is ``(B, m / 2, 2)`` (row ``i`` holds syndrome
        ``i``'s minimum matching), ``total_weights`` is ``(B,)`` and
        ``predictions`` is the ``(B,)`` bool logical-flip vector.  On a
        non-native array backend all three live on the backend's device;
        bring them home with :func:`repro.backend.from_device`.
    """
    num, m, _ = weights.shape
    if m == 0:
        return (
            np.zeros((num, 0, 2), dtype=np.intp),
            np.zeros(num, dtype=np.float64),
            np.zeros(num, dtype=bool),
        )
    if m % 2 or m > MAX_SEARCH_NODES:
        raise ValueError(f"exhaustive search supports at most 10 nodes, got {m}")
    backend = get_backend()
    tensor = matchings_tensor(m)
    if backend.native_numpy:
        gathered = weights[:, tensor[:, :, 0], tensor[:, :, 1]]
        best, totals = _scalar_order_select(gathered, m)
        rows = np.arange(num)
        pair_tensor = tensor[best]
        sel_parities = parities[
            rows[:, None], pair_tensor[:, :, 0], pair_tensor[:, :, 1]
        ]
        predictions = np.bitwise_xor.reduce(sel_parities, axis=1)
        return pair_tensor, totals, predictions
    xp = backend.xp
    gathered = _gathered_candidates_xp(backend, weights, m)
    best, totals = _scalar_order_select_xp(xp, gathered, m)
    dev_tensor = backend.asarray(np.ascontiguousarray(tensor, dtype=np.int64))
    pair_tensor = xp.take(dev_tensor, xp.astype(best, xp.int64), axis=0)
    par_int = np.ascontiguousarray(parities).astype(np.int64)
    flat_par = xp.reshape(backend.asarray(par_int), (num, m * m))
    flat_pair_idx = (
        xp.astype(pair_tensor[:, :, 0], xp.int64) * m
        + xp.astype(pair_tensor[:, :, 1], xp.int64)
    )
    sel = _gather_rows(xp, flat_par, flat_pair_idx)
    predictions = xp.astype(xp.sum(sel, axis=1) % 2, xp.bool)
    return pair_tensor, totals, predictions
