"""Exhaustive and dynamic-programming perfect matching on small node sets.

Astrea's central insight (paper section 4.3) is that a syndrome vector of
Hamming weight ``w`` admits only

    w! / (2^(w/2) * (w/2)!)  =  (w - 1)!!

perfect matchings -- 3 for ``w = 4``, 15 for ``w = 6``, 105 for ``w = 8``
and 945 for ``w = 10`` -- few enough to search exhaustively in hardware.
This module provides:

* :func:`count_perfect_matchings` -- the closed form above (Equation 2);
* :func:`iter_perfect_matchings` -- the exhaustive enumeration that mirrors
  Astrea's hardware search order (first element paired with each remaining
  element, recursively);
* :func:`min_weight_perfect_matching_brute` -- exhaustive minimisation;
* :func:`min_weight_perfect_matching_dp` -- an O(2^n * n) bitmask dynamic
  program that returns the same optimum and is used as the fast software
  path (and as an independent oracle in tests).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "count_perfect_matchings",
    "count_perfect_matchings_in_graph",
    "iter_perfect_matchings",
    "min_weight_perfect_matching_brute",
    "min_weight_perfect_matching_dp",
]


def count_perfect_matchings(w: int) -> int:
    """Number of perfect matchings of ``w`` nodes (Equation 2).

    Args:
        w: An even, non-negative node count.

    Returns:
        The double factorial ``(w - 1)!!``.
    """
    if w < 0 or w % 2:
        raise ValueError("w must be a non-negative even integer")
    result = 1
    for k in range(1, w, 2):
        result *= k
    return result


def count_perfect_matchings_in_graph(adjacency: "np.ndarray") -> int:
    """Count perfect matchings of a general graph exactly (bitmask DP).

    Quantifies Astrea-G's search-space shrinkage (Figure 10b): counting
    the perfect matchings that survive weight filtering versus the
    ``(w-1)!!`` of the complete graph.

    Args:
        adjacency: Symmetric ``(n, n)`` boolean matrix; ``n`` even, at most
            24 (the DP is O(2^n * n)).

    Returns:
        The number of perfect matchings using only allowed pairs.
    """
    n = adjacency.shape[0]
    if n % 2:
        raise ValueError("perfect matchings need an even number of vertices")
    if n > 20:
        raise ValueError("matching count DP is limited to 20 vertices")
    if n == 0:
        return 1
    allowed = [
        sum(1 << j for j in range(n) if j != i and adjacency[i, j])
        for i in range(n)
    ]
    total = {0: 1}
    for mask in range(1, 1 << n):
        if bin(mask).count("1") % 2:
            continue
        first = (mask & -mask).bit_length() - 1
        partners = allowed[first] & mask
        acc = 0
        m = partners & ~(1 << first)
        while m:
            j = (m & -m).bit_length() - 1
            m ^= 1 << j
            acc += total.get(mask ^ (1 << first) ^ (1 << j), 0)
        total[mask] = acc
    return total[(1 << n) - 1]


def iter_perfect_matchings(
    nodes: Sequence[int],
) -> Iterator[list[tuple[int, int]]]:
    """Yield every perfect matching of an even-sized node sequence.

    The enumeration order matches Astrea's hardware strategy: the first
    unmatched node is paired in turn with each remaining node, and the rest
    are matched recursively (section 5.3's pre-matching expansion).

    Args:
        nodes: Distinct node labels; length must be even.

    Yields:
        Matchings as lists of ``(a, b)`` pairs.
    """
    nodes = list(nodes)
    if len(nodes) % 2:
        raise ValueError("cannot perfectly match an odd number of nodes")
    if not nodes:
        yield []
        return
    first = nodes[0]
    for idx in range(1, len(nodes)):
        partner = nodes[idx]
        rest = nodes[1:idx] + nodes[idx + 1 :]
        for sub in iter_perfect_matchings(rest):
            yield [(first, partner)] + sub


def min_weight_perfect_matching_brute(
    weights: np.ndarray,
) -> tuple[list[tuple[int, int]], float]:
    """Exhaustively find the minimum-weight perfect matching.

    Args:
        weights: Symmetric ``(n, n)`` weight matrix, ``n`` even (diagonal
            ignored).

    Returns:
        Tuple ``(pairs, total_weight)`` of the optimal matching.
    """
    n = weights.shape[0]
    best_pairs: list[tuple[int, int]] | None = None
    best_weight = float("inf")
    for matching in iter_perfect_matchings(range(n)):
        total = float(sum(weights[a, b] for a, b in matching))
        if total < best_weight:
            best_weight = total
            best_pairs = matching
    if best_pairs is None:
        return [], 0.0
    return [tuple(sorted(p)) for p in best_pairs], best_weight


def min_weight_perfect_matching_dp(
    weights: np.ndarray,
) -> tuple[list[tuple[int, int]], float]:
    """Bitmask-DP minimum-weight perfect matching (exact, O(2^n * n)).

    Args:
        weights: Symmetric ``(n, n)`` weight matrix, ``n`` even (diagonal
            ignored).  Practical up to n ~ 22.

    Returns:
        Tuple ``(pairs, total_weight)`` of the optimal matching.
    """
    n = weights.shape[0]
    if n % 2:
        raise ValueError("perfect matching needs an even number of vertices")
    if n == 0:
        return [], 0.0
    if n > 26:
        raise ValueError("DP matcher is limited to 26 vertices")
    full = (1 << n) - 1
    inf = float("inf")
    best = np.full(1 << n, inf)
    choice = np.full(1 << n, -1, dtype=np.int64)
    best[0] = 0.0
    w = np.asarray(weights, dtype=np.float64)
    for mask in range(1, 1 << n):
        if bin(mask).count("1") % 2:
            continue
        first = (mask & -mask).bit_length() - 1
        rest = mask ^ (1 << first)
        m = rest
        local_best = inf
        local_choice = -1
        while m:
            j = (m & -m).bit_length() - 1
            m ^= 1 << j
            candidate = best[mask ^ (1 << first) ^ (1 << j)] + w[first, j]
            if candidate < local_best:
                local_best = candidate
                local_choice = j
        best[mask] = local_best
        choice[mask] = local_choice
    pairs: list[tuple[int, int]] = []
    mask = full
    while mask:
        first = (mask & -mask).bit_length() - 1
        j = int(choice[mask])
        pairs.append((first, j))
        mask ^= (1 << first) | (1 << j)
    return sorted(tuple(sorted(p)) for p in pairs), float(best[full])
