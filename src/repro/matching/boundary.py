"""Turning a syndrome into a finite matching problem over active bits.

MWPM-style decoders operate only on the *active* (non-zero) syndrome bits.
The virtual boundary complicates this: any subset of active bits may be
matched to the boundary rather than to each other.  Because the Global
Weight Table's pair weights are shortest-path weights on a graph that
*includes* the boundary vertex (see :mod:`repro.graphs.decoding_graph`),
the cheapest way for two bits to "pair via the boundary" is already folded
into their pair weight.  Consequently:

* an even number of active bits reduces to a perfect matching of exactly
  those bits, and
* an odd number reduces to a perfect matching after appending one virtual
  node whose pair weight with bit ``i`` is the GWT diagonal ``W[i, i]``
  (the boundary weight, section 5.1).

This is the construction that makes Astrea's exhaustive search *exactly*
equivalent to MWPM for syndromes it can handle (paper Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.weights import GlobalWeightTable

__all__ = ["MatchingProblem"]


@dataclass
class MatchingProblem:
    """A perfect-matching instance derived from one syndrome.

    Attributes:
        active: Indices of the non-zero syndrome bits, in increasing order.
        weights: ``(m, m)`` effective pair-weight matrix where ``m`` is the
            number of active bits, plus one when a virtual boundary node was
            appended (odd Hamming weight).  Node ``m - 1`` is then the
            virtual node.
        parities: ``(m, m)`` bool matrix of logical parities aligned with
            ``weights``.
        has_virtual: Whether the last node is the virtual boundary.
    """

    active: list[int]
    weights: np.ndarray
    parities: np.ndarray
    has_virtual: bool

    @classmethod
    def from_syndrome(
        cls, gwt: GlobalWeightTable, active: list[int]
    ) -> "MatchingProblem":
        """Build the matching problem for the given active syndrome bits.

        Args:
            gwt: The Global Weight Table of the code/noise configuration.
            active: Indices of non-zero syndrome bits (any order).

        Returns:
            The matching problem (even node count, ready for any matcher).
        """
        active = sorted(active)
        w = len(active)
        base_w = gwt.active_weights(active)
        base_p = gwt.active_parities(active)
        if w % 2 == 0:
            return cls(
                active=active,
                weights=base_w,
                parities=base_p,
                has_virtual=False,
            )
        m = w + 1
        weights = np.zeros((m, m), dtype=base_w.dtype)
        parities = np.zeros((m, m), dtype=bool)
        weights[:w, :w] = base_w
        parities[:w, :w] = base_p
        diag_w = np.diag(base_w)
        diag_p = np.diag(base_p)
        weights[:w, w] = diag_w
        weights[w, :w] = diag_w
        parities[:w, w] = diag_p
        parities[w, :w] = diag_p
        return cls(active=active, weights=weights, parities=parities, has_virtual=True)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Node count of the matching instance (always even)."""
        return self.weights.shape[0]

    def total_weight(self, pairs: list[tuple[int, int]]) -> float:
        """Aggregate weight of a matching over this problem's nodes."""
        return float(sum(self.weights[a, b] for a, b in pairs))

    def prediction(self, pairs: list[tuple[int, int]]) -> bool:
        """Logical-observable flip implied by a matching.

        Args:
            pairs: A perfect matching of this problem's nodes.

        Returns:
            True when the corrections along the matched shortest paths flip
            the logical observable an odd number of times.
        """
        flip = False
        for a, b in pairs:
            flip ^= bool(self.parities[a, b])
        return flip

    def is_perfect(self, pairs: list[tuple[int, int]]) -> bool:
        """Whether ``pairs`` is a perfect matching of the problem's nodes."""
        seen: set[int] = set()
        for a, b in pairs:
            if a == b or a in seen or b in seen:
                return False
            seen.update((a, b))
        return len(seen) == self.num_nodes
