"""Turning a syndrome into a finite matching problem over active bits.

MWPM-style decoders operate only on the *active* (non-zero) syndrome bits.
The virtual boundary complicates this: any subset of active bits may be
matched to the boundary rather than to each other.  Because the Global
Weight Table's pair weights are shortest-path weights on a graph that
*includes* the boundary vertex (see :mod:`repro.graphs.decoding_graph`),
the cheapest way for two bits to "pair via the boundary" is already folded
into their pair weight.  Consequently:

* an even number of active bits reduces to a perfect matching of exactly
  those bits, and
* an odd number reduces to a perfect matching after appending one virtual
  node whose pair weight with bit ``i`` is the GWT diagonal ``W[i, i]``
  (the boundary weight, section 5.1).

This is the construction that makes Astrea's exhaustive search *exactly*
equivalent to MWPM for syndromes it can handle (paper Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.decoding_graph import BOUNDARY
from ..graphs.weights import GlobalWeightTable

__all__ = ["MatchingProblem", "MatchingProblemBatch", "matching_to_detectors"]


def matching_to_detectors(
    pairs: list[tuple[int, int]],
    active: list[int],
    has_virtual: bool,
) -> list[tuple[int, int]]:
    """Translate local matching-problem pairs to detector-index pairs.

    Args:
        pairs: Pairs over the local node indices of a
            :class:`MatchingProblem`.
        active: The problem's active detector indices.
        has_virtual: Whether the last local node is the virtual boundary.

    Returns:
        Pairs of detector indices, using
        :data:`~repro.graphs.decoding_graph.BOUNDARY` for the virtual
        node (always listed second).
    """
    virtual_index = len(active)
    out: list[tuple[int, int]] = []
    for a, b in pairs:
        da = BOUNDARY if (has_virtual and a == virtual_index) else active[a]
        db = BOUNDARY if (has_virtual and b == virtual_index) else active[b]
        if da == BOUNDARY:
            da, db = db, da
        elif db != BOUNDARY and da > db:
            da, db = db, da
        out.append((da, db))
    return sorted(out)


@dataclass
class MatchingProblemBatch:
    """A bucket of same-Hamming-weight matching problems, built in bulk.

    The batch decode path groups syndromes by Hamming weight so that the
    GWT -> weight-submatrix gather (the ``HW + 1``-cycle transfer of the
    hardware, section 5.4) happens once per bucket as a single NumPy fancy
    index instead of once per syndrome.  All problems in a batch share the
    same node count and virtual-boundary layout.

    Attributes:
        active: ``(B, w)`` integer array; row ``i`` holds the sorted active
            detector indices of syndrome ``i``.
        weights: ``(B, m, m)`` effective pair-weight tensor, where ``m`` is
            ``w`` (even weight) or ``w + 1`` (odd weight, virtual boundary
            appended as node ``m - 1``).
        parities: ``(B, m, m)`` bool tensor of logical parities.
        has_virtual: Whether the last node of every problem is the virtual
            boundary.
    """

    active: np.ndarray
    weights: np.ndarray
    parities: np.ndarray
    has_virtual: bool

    def __len__(self) -> int:
        return self.active.shape[0]

    @property
    def num_nodes(self) -> int:
        """Node count of every matching instance in the batch."""
        return self.weights.shape[1]

    def active_list(self, i: int) -> list[int]:
        """Active detector indices of problem ``i`` as a plain list."""
        return [int(x) for x in self.active[i]]

    def problem(self, i: int) -> "MatchingProblem":
        """Materialise problem ``i`` as a scalar :class:`MatchingProblem`.

        The returned problem's arrays are views into the batch tensors.
        """
        return MatchingProblem(
            active=self.active_list(i),
            weights=self.weights[i],
            parities=self.parities[i],
            has_virtual=self.has_virtual,
        )


@dataclass
class MatchingProblem:
    """A perfect-matching instance derived from one syndrome.

    Attributes:
        active: Indices of the non-zero syndrome bits, in increasing order.
        weights: ``(m, m)`` effective pair-weight matrix where ``m`` is the
            number of active bits, plus one when a virtual boundary node was
            appended (odd Hamming weight).  Node ``m - 1`` is then the
            virtual node.
        parities: ``(m, m)`` bool matrix of logical parities aligned with
            ``weights``.
        has_virtual: Whether the last node is the virtual boundary.
    """

    active: list[int]
    weights: np.ndarray
    parities: np.ndarray
    has_virtual: bool

    @classmethod
    def from_syndrome(
        cls, gwt: GlobalWeightTable, active: list[int]
    ) -> "MatchingProblem":
        """Build the matching problem for the given active syndrome bits.

        Args:
            gwt: The Global Weight Table of the code/noise configuration.
            active: Indices of non-zero syndrome bits (any order).

        Returns:
            The matching problem (even node count, ready for any matcher).
        """
        active = sorted(active)
        w = len(active)
        base_w = gwt.active_weights(active)
        base_p = gwt.active_parities(active)
        if w % 2 == 0:
            return cls(
                active=active,
                weights=base_w,
                parities=base_p,
                has_virtual=False,
            )
        m = w + 1
        weights = np.zeros((m, m), dtype=base_w.dtype)
        parities = np.zeros((m, m), dtype=bool)
        weights[:w, :w] = base_w
        parities[:w, :w] = base_p
        diag_w = np.diag(base_w)
        diag_p = np.diag(base_p)
        weights[:w, w] = diag_w
        weights[w, :w] = diag_w
        parities[:w, w] = diag_p
        parities[w, :w] = diag_p
        return cls(active=active, weights=weights, parities=parities, has_virtual=True)

    @classmethod
    def from_syndrome_batch(
        cls, gwt: GlobalWeightTable, active: np.ndarray
    ) -> MatchingProblemBatch:
        """Build the matching problems for a bucket of same-weight syndromes.

        Equivalent to calling :meth:`from_syndrome` on every row, but the
        weight and parity submatrices of the whole bucket are gathered from
        the GWT with one fancy index each.

        Args:
            gwt: The Global Weight Table of the code/noise configuration.
            active: ``(B, w)`` integer array of active detector indices,
                one sorted row per syndrome (every row the same Hamming
                weight ``w``).

        Returns:
            The :class:`MatchingProblemBatch` covering all ``B`` syndromes.
        """
        active = np.asarray(active, dtype=np.intp)
        if active.ndim != 2:
            raise ValueError(
                f"active must be a (B, w) index matrix, got shape {active.shape}"
            )
        num, w = active.shape
        rows = active[:, :, None]
        cols = active[:, None, :]
        base_w = gwt.weights[rows, cols]
        base_p = gwt.parities[rows, cols]
        if w % 2 == 0:
            return MatchingProblemBatch(
                active=active, weights=base_w, parities=base_p, has_virtual=False
            )
        m = w + 1
        weights = np.zeros((num, m, m), dtype=base_w.dtype)
        parities = np.zeros((num, m, m), dtype=bool)
        weights[:, :w, :w] = base_w
        parities[:, :w, :w] = base_p
        diag_w = gwt.weights[active, active]
        diag_p = gwt.parities[active, active]
        weights[:, :w, w] = diag_w
        weights[:, w, :w] = diag_w
        parities[:, :w, w] = diag_p
        parities[:, w, :w] = diag_p
        return MatchingProblemBatch(
            active=active, weights=weights, parities=parities, has_virtual=True
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Node count of the matching instance (always even)."""
        return self.weights.shape[0]

    def total_weight(self, pairs: list[tuple[int, int]]) -> float:
        """Aggregate weight of a matching over this problem's nodes."""
        return float(sum(self.weights[a, b] for a, b in pairs))

    def prediction(self, pairs: list[tuple[int, int]]) -> bool:
        """Logical-observable flip implied by a matching.

        Args:
            pairs: A perfect matching of this problem's nodes.

        Returns:
            True when the corrections along the matched shortest paths flip
            the logical observable an odd number of times.
        """
        flip = False
        for a, b in pairs:
            flip ^= bool(self.parities[a, b])
        return flip

    def is_perfect(self, pairs: list[tuple[int, int]]) -> bool:
        """Whether ``pairs`` is a perfect matching of the problem's nodes."""
        seen: set[int] = set()
        for a, b in pairs:
            if a == b or a in seen or b in seen:
                return False
            seen.update((a, b))
        return len(seen) == self.num_nodes
