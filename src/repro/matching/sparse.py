"""Sparse exact-MWPM engine: cluster decomposition + memoized matching.

The dense software MWPM baseline solves one blossom instance over *all*
active detectors per syndrome.  At the low physical error rates the paper
evaluates (p ~ 1e-3), syndromes are sparse and their defects form small,
well-separated clusters -- the same locality that Sparse Blossom
(Higgott & Gidney 2023) and PyMatching exploit.  This module provides an
engine that is *bit-exact* with the dense solve while being much faster:

1. **Decomposition.**  Active detectors are grouped into connected
   components of the precomputed *close* adjacency
   (:class:`repro.graphs.decoding_graph.NeighborStructure`): detectors
   ``a, b`` are close when ``W[a, b] < W[a, a] + W[b, b]``, i.e. matching
   them directly beats sending both to the boundary.  For every
   *separable* pair (``W[a, b] == W[a, a] + W[b, b]`` with consistent
   parity) an exchange argument shows any dense optimum can be rewired,
   at equal weight and parity, so that no matched pair crosses a cluster
   border: per-cluster optima compose into a global optimum.  A syndrome
   containing an *unsafe* pair (``W[a, b] > W[a, a] + W[b, b]``, a
   quantization artifact that breaks the argument) is routed whole to the
   graph-local :class:`~repro.matching.sparse_blossom.SparseBlossomEngine`
   when one is attached -- which re-derives true (unquantized) weights
   during growth, so no decomposition proof is needed -- and otherwise
   raises :class:`SparseEngineError` so the decoder can degrade to its
   dense reference path.

2. **Closed forms.**  A singleton cluster matches its detector to the
   boundary (weight ``W[d, d]``); a close pair matches directly (weight
   ``W[a, b]``); clusters of up to 10 matching nodes run through the
   vectorized exhaustive-search tensors of :mod:`repro.matching.search`;
   larger clusters go to the attached graph engine when present, else to
   the blossom solver.

3. **Memoization.**  Cluster matchings are cached in a canonical-key LRU
   (key = the cluster's sorted detector indices, as raw bytes).  Because
   low-p syndromes decompose into few distinct small clusters, sub-syndrome
   hit rates far exceed whole-syndrome hit rates.  Clusters of one or two
   defects are *not* cached -- their closed forms (a couple of array
   lookups) are cheaper than the cache machinery itself.

4. **Batching.**  :meth:`SparseMatchingEngine.solve_batch` processes a
   whole ``(shots, detectors)`` matrix Hamming-weight-bucketed: weight-1
   and weight-2 syndromes are closed-form solved with pure array
   arithmetic.  Larger buckets label their connected components for the
   whole bucket at once (boolean matrix-power closure over the gathered
   close submatrices) and then flatten every row's components into one
   *segment stream* (a stable lexsort by component label): singleton and
   pair segments evaluate their closed forms vectorized across the whole
   bucket, >= 3-defect segments deduplicate into one grouped kernel
   solve, and per-row weights/parities come back via ``reduceat`` over
   the stream -- which accumulates segments in exactly the scalar path's
   smallest-member component order, keeping float sums bit-identical.
   Per-row Python survives only to assemble the output pair lists.

Statistics (cluster counts, cache hits/misses, fallback breakdown) are
tracked in :class:`SparseStats` and surfaced by the experiment reports.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..backend import from_device
from ..graphs.decoding_graph import BOUNDARY, NeighborStructure
from ..graphs.weights import GlobalWeightTable
from .blossom import min_weight_perfect_matching
from .boundary import MatchingProblem, matching_to_detectors
from .search import MAX_SEARCH_NODES, batched_search, vectorized_search

__all__ = [
    "SparseMatchingEngine",
    "SparseEngineError",
    "SparseStats",
    "default_tolerance",
]

#: Widest Hamming-weight bucket the vectorized component labelling
#: handles (uint8 matrix powers hold path counts up to 255); wider rows
#: fall back to the per-row graph traversal.
_MAX_LABEL_WEIGHT = 128


class SparseEngineError(RuntimeError):
    """The sparse matching engine cannot solve a syndrome exactly.

    Raised when no exact sparse route exists -- e.g. the weight table
    contains non-finite entries, a syndrome references a detector outside
    the table, or an unsafe pair occurs with no graph engine attached.
    :class:`repro.decoders.mwpm.MWPMDecoder` catches this and degrades to
    its dense reference path with a
    :class:`~repro.decoders.base.DecoderFallbackWarning` instead of
    aborting the experiment.
    """


def default_tolerance(gwt: GlobalWeightTable) -> float:
    """Separation-test tolerance appropriate for a weight table.

    Quantized tables (``lsb`` set) hold exact multiples of the lsb, so the
    boundary-folding bound is tested exactly; unquantized tables carry the
    float round-off of the all-pairs Dijkstra, absorbed by a tiny slack.
    """
    return 0.0 if gwt.lsb is not None else 1e-9


def _fallback_counter() -> dict[str, int]:
    """Fresh per-reason fallback counter (all reasons present, zeroed)."""
    return {"unsafe_pair": 0, "unsolvable": 0, "engine_error": 0}


@dataclass
class SparseStats:
    """Counters accumulated by a sparse matching engine.

    Shared by the table-driven :class:`SparseMatchingEngine` and the
    graph-local :class:`~repro.matching.sparse_blossom.SparseBlossomEngine`
    (growth-specific counters stay zero on the table engine).

    Attributes:
        syndromes: Non-empty syndromes solved.
        fallback_events: Events the engine could not handle on its normal
            decomposition path, by reason: ``"unsafe_pair"`` (syndrome
            contained an unsafe pair -- routed to the graph engine when
            attached, raised otherwise), ``"unsolvable"`` (non-finite
            weights or out-of-range detector indices; always raised) and
            ``"engine_error"`` (unexpected internal failure, recorded by
            the decoder when it degrades).
        clusters: Clusters solved across all decomposed syndromes.
        cache_hits: Cluster-cache hits.
        cache_misses: Cluster-cache misses.
        blossom_clusters: Cache misses that exceeded the exhaustive-search
            node limit and ran the blossom solver.
        nodes_settled: Graph vertices settled during region growth
            (graph engine only).
        collisions: Region collisions that merged clusters during growth
            (graph engine only).
    """

    syndromes: int = 0
    fallback_events: dict[str, int] = field(default_factory=_fallback_counter)
    clusters: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    blossom_clusters: int = 0
    nodes_settled: int = 0
    collisions: int = 0

    @property
    def hit_rate(self) -> float:
        """Cluster-cache hit rate (0 when nothing was looked up)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_fallbacks(self) -> int:
        """Sum of the per-reason fallback counters."""
        return sum(self.fallback_events.values())

    @property
    def fallback_rate(self) -> float:
        """Fraction of syndromes that left the normal decomposition path."""
        return self.total_fallbacks / self.syndromes if self.syndromes else 0.0

    def as_dict(self) -> dict:
        """Counters plus derived rates, JSON-ready."""
        return {
            "syndromes": self.syndromes,
            "fallback_events": dict(self.fallback_events),
            "clusters": self.clusters,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "blossom_clusters": self.blossom_clusters,
            "nodes_settled": self.nodes_settled,
            "collisions": self.collisions,
            "hit_rate": self.hit_rate,
            "fallback_rate": self.fallback_rate,
        }


@dataclass(slots=True)
class _ClusterSolution:
    """Memoized solution of one cluster."""

    pairs: list[tuple[int, int]]
    weight: float
    prediction: bool


class SparseMatchingEngine:
    """Exact MWPM via cluster decomposition, closed forms and memoization.

    Args:
        gwt: Global Weight Table of the code/noise configuration.
        tolerance: Separation-test slack; defaults via
            :func:`default_tolerance` (0 for quantized tables, 1e-9 for
            float tables).
        cache_size: Maximum number of memoized cluster solutions (LRU
            eviction; 0 disables caching).
        structure: A pre-built :class:`NeighborStructure` for ``gwt`` at
            ``tolerance`` (e.g. from the pipeline's artifact store).  The
            caller guarantees it matches; None computes it here.
        graph_engine: An optional
            :class:`~repro.matching.sparse_blossom.SparseBlossomEngine`
            over the decoding graph this table derives from.  Unsafe-pair
            syndromes and clusters too large for the search kernels route
            to it.  Exactness requires ``gwt`` to be the graph's *ideal*
            (unquantized) all-pairs table -- the graph engine re-derives
            true weights, which only coincide with unquantized table
            entries.
    """

    def __init__(
        self,
        gwt: GlobalWeightTable,
        *,
        tolerance: float | None = None,
        cache_size: int = 65536,
        structure: NeighborStructure | None = None,
        graph_engine=None,
    ) -> None:
        self.gwt = gwt
        self.tolerance = (
            default_tolerance(gwt) if tolerance is None else tolerance
        )
        if structure is not None and structure.radii.shape[0] != gwt.weights.shape[0]:
            raise ValueError(
                f"pre-built neighbor structure covers "
                f"{structure.radii.shape[0]} detectors but the weight "
                f"table has {gwt.weights.shape[0]}"
            )
        self.structure = (
            structure
            if structure is not None
            else NeighborStructure.from_weights(
                gwt.weights, gwt.parities, tolerance=self.tolerance
            )
        )
        self.graph_engine = graph_engine
        self.cache_size = cache_size
        self.stats = SparseStats()
        self._cache: OrderedDict[bytes, _ClusterSolution] = OrderedDict()
        # Flat copies of the hot lookups (diagonals as 1-D arrays) so the
        # closed forms touch contiguous memory.
        self._radii = self.structure.radii
        self._diag_parities = np.diag(gwt.parities).copy()
        self._num_detectors = int(gwt.weights.shape[0])
        # Checked once; a poisoned table makes every decomposition claim
        # meaningless, so solves must refuse.
        self._weights_finite = bool(np.isfinite(gwt.weights).all())

    def _check_solvable(self, dets: np.ndarray) -> None:
        """Refuse syndromes the engine cannot decode exactly.

        Raises:
            SparseEngineError: When the weight table holds non-finite
                entries or a detector index falls outside the table.
        """
        if not self._weights_finite:
            self.stats.fallback_events["unsolvable"] += 1
            raise SparseEngineError(
                "weight table contains non-finite (NaN/inf) entries"
            )
        if dets.size and (
            int(dets[-1]) >= self._num_detectors or int(dets[0]) < 0
        ):
            offender = (
                int(dets[-1])
                if int(dets[-1]) >= self._num_detectors
                else int(dets[0])
            )
            self.stats.fallback_events["unsolvable"] += 1
            raise SparseEngineError(
                f"detector index {offender} "
                f"outside the {self._num_detectors}-detector weight table"
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def solve(
        self, active: list[int] | np.ndarray
    ) -> tuple[list[tuple[int, int]], float, bool]:
        """Exact minimum-weight matching of one syndrome.

        Args:
            active: Indices of the non-zero syndrome bits (any order).

        Returns:
            Tuple ``(pairs, weight, prediction)``: detector-index pairs
            (:data:`BOUNDARY` second for boundary matches), the matching's
            total weight, and the implied logical-observable flip.

        Raises:
            SparseEngineError: When no exact sparse route exists (see
                :class:`SparseStats.fallback_events` for the breakdown).
        """
        dets = np.asarray(active, dtype=np.intp)
        if dets.size == 0:
            return [], 0.0, False
        dets = np.sort(dets)
        self._check_solvable(dets)
        self.stats.syndromes += 1
        if dets.size == 1:
            self.stats.clusters += 1
            solution = self._singleton(int(dets[0]))
            return list(solution.pairs), solution.weight, solution.prediction
        cols = dets[:, None]
        if self.structure.unsafe[cols, dets].any():
            return self._route_unsafe(dets)
        return self._solve_decomposed(dets, self.structure.close[cols, dets])

    def solve_batch(
        self, syndromes: np.ndarray
    ) -> list[tuple[list[tuple[int, int]], float, bool]]:
        """Exact minimum-weight matchings of a (shots, detectors) matrix.

        Row results are identical to per-row :meth:`solve`, but work is
        Hamming-weight-bucketed: weight-1 and weight-2 syndromes reduce to
        closed forms evaluated with pure array arithmetic, and each larger
        bucket's component labelling and singleton/pair closed forms are
        evaluated for whole groups of identically-decomposing rows at
        once.  The cluster cache is consulted only for clusters of three
        or more defects, exactly as in the scalar path.
        """
        syndromes = np.asarray(syndromes).astype(bool, copy=False)
        if syndromes.ndim != 2:
            raise ValueError("solve_batch expects a (shots, detectors) matrix")
        if not self._weights_finite:
            self.stats.fallback_events["unsolvable"] += 1
            raise SparseEngineError(
                "weight table contains non-finite (NaN/inf) entries"
            )
        num = syndromes.shape[0]
        out: list[tuple[list[tuple[int, int]], float, bool] | None] = [None] * num
        hw = syndromes.sum(axis=1)
        stats = self.stats
        structure = self.structure
        radii = self._radii
        diag_parities = self._diag_parities
        # One global nonzero: every bucket's active-index matrix is then a
        # strided gather from this flat column stream instead of a fresh
        # (B, detectors) fancy-index copy + scan per bucket.
        all_cols = np.nonzero(syndromes)[1]
        row_start = np.zeros(num + 1, dtype=np.intp)
        np.cumsum(hw, out=row_start[1:])
        # Deferred >= 3-defect clusters, deduplicated by canonical key; the
        # composition plan of each decomposed row references them by key.
        deferred_index: dict[bytes, int] = {}
        deferred: list[np.ndarray] = []
        plans: list[tuple[int, list[_ClusterSolution | bytes]]] = []
        # Per-bucket segment streams awaiting deferred-cluster resolution.
        pending: list[tuple] = []
        for w in np.unique(hw):
            w = int(w)
            rows = np.nonzero(hw == w)[0]
            if w == 0:
                for i in rows.tolist():
                    out[i] = ([], 0.0, False)
                continue
            active = all_cols[row_start[rows][:, None] + np.arange(w)]
            stats.syndromes += len(rows)
            if w == 1:
                stats.clusters += len(rows)
                dets = active[:, 0]
                ws = radii[dets].tolist()
                ps = diag_parities[dets].tolist()
                dets_list = dets.tolist()
                for j, i in enumerate(rows.tolist()):
                    out[i] = ([(dets_list[j], BOUNDARY)], ws[j], ps[j])
                continue
            if w == 2:
                a, b = active[:, 0], active[:, 1]
                unsafe = structure.unsafe[a, b]
                if unsafe.any():
                    for j in np.nonzero(unsafe)[0]:
                        out[rows[j]] = self._route_unsafe(active[j])
                sep = structure.separable[a, b]
                stats.clusters += 2 * int(sep.sum()) + int(
                    (~sep & ~unsafe).sum()
                )
                direct_w = self.gwt.weights[a, b].tolist()
                direct_p = self.gwt.parities[a, b].tolist()
                both_w = (radii[a] + radii[b]).tolist()
                both_p = (diag_parities[a] ^ diag_parities[b]).tolist()
                sep_list = sep.tolist()
                unsafe_list = unsafe.tolist()
                a_list = a.tolist()
                b_list = b.tolist()
                for j, i in enumerate(rows.tolist()):
                    if unsafe_list[j]:
                        continue  # routed above
                    ai, bi = a_list[j], b_list[j]
                    if sep_list[j]:
                        # Two separable singletons: both to the boundary.
                        out[i] = (
                            [(ai, BOUNDARY), (bi, BOUNDARY)],
                            both_w[j],
                            both_p[j],
                        )
                    else:
                        out[i] = ([(ai, bi)], direct_w[j], direct_p[j])
                continue
            gathered_close = structure.close[
                active[:, :, None], active[:, None, :]
            ]
            unsafe_rows = structure.unsafe[
                active[:, :, None], active[:, None, :]
            ].any(axis=(1, 2))
            if unsafe_rows.any():
                for j in np.nonzero(unsafe_rows)[0]:
                    out[rows[j]] = self._route_unsafe(active[j])
                keep = np.nonzero(~unsafe_rows)[0]
                rows = rows[keep]
                active = active[keep]
                gathered_close = gathered_close[keep]
                if rows.size == 0:
                    continue
            if w > _MAX_LABEL_WEIGHT:
                for j, i in enumerate(rows):
                    entries = self._plan_row(
                        active[j],
                        _components_local(gathered_close[j]),
                        deferred_index,
                        deferred,
                    )
                    plans.append((int(i), entries))
                continue
            # Segment stream: flatten every row's components into one
            # label-sorted sequence.  Within a row, labels ascend with the
            # component's smallest member (labels *are* smallest member
            # positions), and the stable sort keeps positions -- hence
            # detector indices -- ascending within each component, so the
            # stream order is exactly the scalar path's visit order.
            labels = _component_labels(gathered_close)
            B = rows.size
            flat_rows = np.repeat(np.arange(B), w)
            order = np.lexsort((labels.ravel(), flat_rows))
            srt_rows = flat_rows[order]
            srt_labels = labels.ravel()[order]
            srt_dets = active.ravel()[order]
            newseg = np.empty(B * w, dtype=bool)
            newseg[0] = True
            newseg[1:] = (srt_rows[1:] != srt_rows[:-1]) | (
                srt_labels[1:] != srt_labels[:-1]
            )
            seg_starts = np.nonzero(newseg)[0]
            seg_sizes = np.diff(np.append(seg_starts, B * w))
            seg_rows = srt_rows[seg_starts]
            nseg = seg_starts.size
            stats.clusters += nseg
            seg_weights = np.zeros(nseg, dtype=np.float64)
            seg_preds = np.zeros(nseg, dtype=bool)
            # Closed-form segments store their single pair as a bare tuple;
            # >= 3-defect segments store a *list* of pairs (the assembly
            # loop dispatches on the type).
            seg_pairs: list = [None] * nseg
            ones = seg_sizes == 1
            d1 = srt_dets[seg_starts[ones]]
            seg_weights[ones] = radii[d1]
            seg_preds[ones] = diag_parities[d1]
            for s, d in zip(np.nonzero(ones)[0].tolist(), d1.tolist()):
                seg_pairs[s] = (d, BOUNDARY)
            twos = seg_sizes == 2
            a2 = srt_dets[seg_starts[twos]]
            b2 = srt_dets[seg_starts[twos] + 1]
            seg_weights[twos] = self.gwt.weights[a2, b2]
            seg_preds[twos] = self.gwt.parities[a2, b2]
            for s, pair in zip(
                np.nonzero(twos)[0].tolist(), zip(a2.tolist(), b2.tolist())
            ):
                seg_pairs[s] = pair
            # >= 3-defect segments consult the cache, then the in-batch
            # dedup index; unresolved ones are referenced by key and
            # filled in after the grouped solve.
            big_refs: list[tuple[int, bytes]] = []
            bigs = seg_sizes > 2
            big_rows = np.zeros(B, dtype=bool)
            if bigs.any():
                big_rows[seg_rows[bigs]] = True
                starts_list = seg_starts.tolist()
                sizes_list = seg_sizes.tolist()
                for s in np.nonzero(bigs)[0].tolist():
                    start = starts_list[s]
                    cluster = srt_dets[start : start + sizes_list[s]]
                    key = b"C" + cluster.tobytes()
                    cached = self._cache.get(key)
                    if cached is not None:
                        stats.cache_hits += 1
                        self._cache.move_to_end(key)
                        seg_weights[s] = cached.weight
                        seg_preds[s] = cached.prediction
                        seg_pairs[s] = cached.pairs
                        continue
                    if key in deferred_index:
                        stats.cache_hits += 1
                    else:
                        stats.cache_misses += 1
                        deferred_index[key] = len(deferred)
                        deferred.append(cluster)
                    big_refs.append((s, key))
            row_first = np.nonzero(
                np.r_[True, seg_rows[1:] != seg_rows[:-1]]
            )[0]
            pending.append(
                (
                    rows,
                    seg_weights,
                    seg_preds,
                    seg_pairs,
                    row_first,
                    big_refs,
                    big_rows,
                )
            )
        resolved: dict[bytes, _ClusterSolution] = {}
        if deferred:
            solutions = self._solve_clusters_grouped(deferred)
            for key, index in deferred_index.items():
                solution = solutions[index]
                resolved[key] = solution
                if self.cache_size > 0:
                    self._cache[key] = solution
                    if len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
        for (
            rws,
            seg_weights,
            seg_preds,
            seg_pairs,
            row_first,
            big_refs,
            big_rows,
        ) in pending:
            for s, key in big_refs:
                solution = resolved[key]
                seg_weights[s] = solution.weight
                seg_preds[s] = solution.prediction
                seg_pairs[s] = solution.pairs
            # Accumulate each row's segments with np.bincount, whose C
            # kernel is a single sequential in-order loop: each row's
            # contributions add left to right, so the float-summation
            # order (and hence every rounding step) matches the scalar
            # path bit for bit; reduceat's internal pairing does not.
            nseg = len(seg_pairs)
            counts = np.diff(np.append(row_first, nseg))
            seg_rows = np.repeat(np.arange(len(rws)), counts)
            row_w = np.bincount(
                seg_rows, weights=seg_weights, minlength=len(rws)
            )
            row_p = (
                np.bincount(seg_rows, weights=seg_preds, minlength=len(rws))
                .astype(np.intp)
                & 1
            ).astype(bool)
            wl = row_w.tolist()
            pl = row_p.tolist()
            bounds = row_first.tolist()
            bounds.append(nseg)
            big_list = big_rows.tolist()
            for j, i in enumerate(rws.tolist()):
                if big_list[j]:
                    prs: list[tuple[int, int]] = []
                    for s in range(bounds[j], bounds[j + 1]):
                        entry = seg_pairs[s]
                        if type(entry) is tuple:
                            prs.append(entry)
                        else:
                            prs.extend(entry)
                    prs.sort()
                else:
                    # Only closed-form segments: one pair per segment, and
                    # pair firsts ascend with the segments' smallest
                    # members, so the list is already sorted.
                    prs = seg_pairs[bounds[j] : bounds[j + 1]]
                out[i] = (prs, wl[j], pl[j])
        for i, entries in plans:
            pairs: list[tuple[int, int]] = []
            weight = 0.0
            prediction = False
            for entry in entries:
                solution = resolved[entry] if isinstance(entry, bytes) else entry
                pairs.extend(solution.pairs)
                weight += solution.weight
                prediction ^= solution.prediction
            out[i] = (sorted(pairs), weight, prediction)
        return out

    def clear_cache(self) -> None:
        """Drop all memoized cluster solutions (stats are kept)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Unsafe-pair routing
    # ------------------------------------------------------------------

    def _route_unsafe(
        self, dets: np.ndarray
    ) -> tuple[list[tuple[int, int]], float, bool]:
        """Route a syndrome containing an unsafe pair.

        Unsafe pairs are quantization artifacts: the table locally
        violates the boundary-folding bound, so no decomposition proof
        applies.  The graph engine re-derives true weights during growth
        and is exact by construction, so the whole syndrome goes there;
        without one the engine refuses and the decoder degrades to its
        dense reference path.
        """
        self.stats.fallback_events["unsafe_pair"] += 1
        if self.graph_engine is not None:
            return self.graph_engine.solve(dets)
        raise SparseEngineError(
            "syndrome contains an unsafe pair (weight-quantization "
            "artifact) and no graph engine is attached to solve it exactly"
        )

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------

    def _solve_decomposed(
        self, dets: np.ndarray, close_sub: np.ndarray
    ) -> tuple[list[tuple[int, int]], float, bool]:
        """Solve an unsafe-free syndrome cluster by cluster.

        Args:
            dets: Sorted active detector indices.
            close_sub: Their ``(w, w)`` close-adjacency submatrix.

        Clusters are visited ordered by smallest detector so that float
        weight accumulation is deterministic for a given syndrome.
        """
        pairs: list[tuple[int, int]] = []
        weight = 0.0
        prediction = False
        clusters = 0
        for members in _components_local(close_sub):
            clusters += 1
            if len(members) == 1:
                solution = self._singleton(int(dets[members[0]]))
            elif len(members) == 2:
                solution = self._close_pair(
                    int(dets[members[0]]), int(dets[members[1]])
                )
            else:
                cluster = dets[members]
                solution = self._memoized(
                    b"C" + cluster.tobytes(), cluster, self._compute_cluster
                )
            pairs.extend(solution.pairs)
            weight += solution.weight
            prediction ^= solution.prediction
        self.stats.clusters += clusters
        return sorted(pairs), weight, prediction

    def _plan_row(
        self,
        dets: np.ndarray,
        components: list,
        deferred_index: dict[bytes, int],
        deferred: list[np.ndarray],
    ) -> list[_ClusterSolution | bytes]:
        """Batch-path composition plan of one decomposed row.

        Singleton and pair components resolve to closed-form solutions
        immediately; >= 3-defect clusters resolve through the cache or are
        queued (deduplicated) for the grouped solve, represented by their
        canonical key.
        """
        entries: list[_ClusterSolution | bytes] = []
        for members in components:
            self.stats.clusters += 1
            if len(members) == 1:
                entries.append(self._singleton(int(dets[members[0]])))
            elif len(members) == 2:
                entries.append(
                    self._close_pair(
                        int(dets[members[0]]), int(dets[members[1]])
                    )
                )
            else:
                cluster = dets[np.asarray(members)]
                key = b"C" + cluster.tobytes()
                cached = self._cache.get(key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    self._cache.move_to_end(key)
                    entries.append(cached)
                elif key in deferred_index:
                    # Another row in this batch already queued the
                    # identical cluster: share its solve.
                    self.stats.cache_hits += 1
                    entries.append(key)
                else:
                    self.stats.cache_misses += 1
                    deferred_index[key] = len(deferred)
                    deferred.append(cluster)
                    entries.append(key)
        return entries

    # ------------------------------------------------------------------
    # Cluster solving
    # ------------------------------------------------------------------

    def _solve_cluster(self, dets: np.ndarray) -> _ClusterSolution:
        """Solve (or recall) the matching of one cluster of detectors."""
        return self._memoized(b"C" + dets.tobytes(), dets, self._compute_cluster)

    def _memoized(self, key, dets, compute) -> _ClusterSolution:
        """LRU-cached solve keyed by the cluster's canonical bytes."""
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            self._cache.move_to_end(key)
            return cached
        self.stats.cache_misses += 1
        solution = compute(dets)
        if self.cache_size > 0:
            self._cache[key] = solution
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return solution

    def _singleton(self, d: int) -> _ClusterSolution:
        """Closed form: a lone defect matches the boundary."""
        return _ClusterSolution(
            pairs=[(d, BOUNDARY)],
            weight=float(self._radii[d]),
            prediction=bool(self._diag_parities[d]),
        )

    def _close_pair(self, a: int, b: int) -> _ClusterSolution:
        """Closed form: a close pair matches directly (beats the boundary)."""
        return _ClusterSolution(
            pairs=[(a, b)],
            weight=float(self.gwt.weights[a, b]),
            prediction=bool(self.gwt.parities[a, b]),
        )

    def _solve_clusters_grouped(
        self, clusters: list[np.ndarray]
    ) -> list[_ClusterSolution]:
        """Solve many >= 3-defect clusters, grouped by size for the kernels.

        Same-size clusters share one :func:`batched_search` call (their
        matching problems are built with one GWT gather and their local ->
        detector translation is vectorized, mirroring the Astrea batch
        pipeline); clusters too large for the index tensors share one
        graph-engine Dijkstra sweep (:meth:`SparseBlossomEngine.solve_many`)
        or, without a graph engine, run :meth:`_compute_cluster`'s blossom
        path individually.  Results are element-wise identical to
        :meth:`_compute_cluster`.
        """
        solutions: list[_ClusterSolution | None] = [None] * len(clusters)
        by_size: dict[int, list[int]] = {}
        for index, cluster in enumerate(clusters):
            by_size.setdefault(cluster.size, []).append(index)
        oversized: list[int] = []
        for size, indices in by_size.items():
            if size + (size % 2) > MAX_SEARCH_NODES:
                if self.graph_engine is not None:
                    # Collected so the graph engine can amortize one
                    # Dijkstra sweep across all routed clusters.
                    oversized.extend(indices)
                else:
                    for index in indices:
                        solutions[index] = self._compute_cluster(
                            clusters[index]
                        )
                continue
            active = np.stack([clusters[index] for index in indices])
            batch = MatchingProblem.from_syndrome_batch(self.gwt, active)
            pair_tensor, weights, predictions = (
                from_device(r)
                for r in batched_search(batch.weights, batch.parities)
            )
            lookup = batch.active
            if batch.has_virtual:
                pad = np.full((len(indices), 1), BOUNDARY, dtype=lookup.dtype)
                lookup = np.concatenate([lookup, pad], axis=1)
            rows = np.arange(len(indices))[:, None]
            da = lookup[rows, pair_tensor[:, :, 0]]
            db = lookup[rows, pair_tensor[:, :, 1]]
            lo = np.minimum(da, db)
            hi = np.maximum(da, db)
            virtual = lo == BOUNDARY
            first = np.where(virtual, hi, lo)
            second = np.where(virtual, lo, hi)
            # Each detector appears in at most one pair, so sorting on the
            # first element alone reproduces matching_to_detectors' order.
            order = np.argsort(first, axis=1)
            first = np.take_along_axis(first, order, axis=1)
            second = np.take_along_axis(second, order, axis=1)
            first_list = first.tolist()
            second_list = second.tolist()
            weight_list = weights.tolist()
            pred_list = predictions.tolist()
            for j, index in enumerate(indices):
                solutions[index] = _ClusterSolution(
                    pairs=list(zip(first_list[j], second_list[j])),
                    weight=float(weight_list[j]),
                    prediction=bool(pred_list[j]),
                )
        if oversized:
            solved = self.graph_engine.solve_many(
                [clusters[index] for index in oversized]
            )
            for index, (pairs, weight, prediction) in zip(oversized, solved):
                solutions[index] = _ClusterSolution(
                    pairs=pairs, weight=weight, prediction=prediction
                )
        return solutions

    def _compute_cluster(self, dets: np.ndarray) -> _ClusterSolution:
        """Exact matching of a >= 3-defect cluster.

        Clusters within the exhaustive-search node limit run the
        vectorized search kernels (the fast path, scalar tie-breaking
        order); larger clusters route to the attached graph engine when
        present -- the "cannot close-form" escape to graph-local growth --
        and otherwise run the blossom solver on the table submatrix.
        """
        if dets.size + (dets.size % 2) > MAX_SEARCH_NODES and (
            self.graph_engine is not None
        ):
            pairs, weight, prediction = self.graph_engine.solve(dets)
            return _ClusterSolution(
                pairs=pairs, weight=weight, prediction=prediction
            )
        problem = MatchingProblem.from_syndrome(self.gwt, [int(d) for d in dets])
        if problem.num_nodes <= MAX_SEARCH_NODES:
            local_pairs, weight, _ = vectorized_search(problem.weights)
        else:
            self.stats.blossom_clusters += 1
            local_pairs = min_weight_perfect_matching(problem.weights)
            weight = problem.total_weight(local_pairs)
        return _ClusterSolution(
            pairs=matching_to_detectors(
                local_pairs, problem.active, problem.has_virtual
            ),
            weight=float(weight),
            prediction=problem.prediction(local_pairs),
        )


def _component_labels(close: np.ndarray) -> np.ndarray:
    """Component labels of a whole bucket of close-adjacency submatrices.

    Args:
        close: ``(B, w, w)`` bool close-adjacency tensor.

    Returns:
        ``(B, w)`` integer labels; each position's label is the smallest
        position index in its connected component, computed for the whole
        bucket at once via boolean matrix-power transitive closure
        (``log2(w)`` squarings of uint8 matmuls -- no per-row Python).
    """
    B, w = close.shape[0], close.shape[1]
    reach = (close | np.eye(w, dtype=bool)).astype(np.uint8)
    hops = 1
    while hops < w:
        reach = (reach @ reach > 0).astype(np.uint8)
        hops *= 2
    # First nonzero per row = smallest reachable index = component label.
    return np.argmax(reach, axis=2)


def _components_local(close_sub: np.ndarray) -> list[list[int]]:
    """Connected components of a small close-adjacency submatrix.

    Returns components as sorted local-index lists, ordered by smallest
    member, using a single ``nonzero`` over the submatrix (per-node array
    scans dominate the per-syndrome cost otherwise).
    """
    n = close_sub.shape[0]
    src, dst = np.nonzero(close_sub)
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for x, y in zip(src.tolist(), dst.tolist()):
        adjacency[x].append(y)
    seen = [False] * n
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        stack = [start]
        members = [start]
        while stack:
            node = stack.pop()
            for nbr in adjacency[node]:
                if not seen[nbr]:
                    seen[nbr] = True
                    members.append(nbr)
                    stack.append(nbr)
        members.sort()
        components.append(members)
    return components
