"""Sparse exact-MWPM engine: cluster decomposition + memoized matching.

The dense software MWPM baseline solves one blossom instance over *all*
active detectors per syndrome.  At the low physical error rates the paper
evaluates (p ~ 1e-3), syndromes are sparse and their defects form small,
well-separated clusters -- the same locality that Sparse Blossom
(Higgott & Gidney 2023) and PyMatching exploit.  This module provides an
engine that is *bit-exact* with the dense solve while being much faster:

1. **Decomposition.**  Active detectors are grouped into connected
   components of the precomputed *close* adjacency
   (:class:`repro.graphs.decoding_graph.NeighborStructure`): detectors
   ``a, b`` are close when ``W[a, b] < W[a, a] + W[b, b]``, i.e. matching
   them directly beats sending both to the boundary.  For every
   *separable* pair (``W[a, b] == W[a, a] + W[b, b]`` with consistent
   parity) an exchange argument shows any dense optimum can be rewired,
   at equal weight and parity, so that no matched pair crosses a cluster
   border: per-cluster optima compose into a global optimum.  Whenever a
   syndrome contains an *unsafe* pair (``W[a, b] > W[a, a] + W[b, b]``, a
   quantization artifact that breaks the argument) the engine falls back
   to one dense solve of the whole syndrome -- results never deviate.

2. **Closed forms.**  A singleton cluster matches its detector to the
   boundary (weight ``W[d, d]``); a close pair matches directly (weight
   ``W[a, b]``); clusters of up to 10 matching nodes run through the
   vectorized exhaustive-search tensors of :mod:`repro.matching.search`;
   only rare larger clusters reach the blossom solver.

3. **Memoization.**  Cluster matchings are cached in a canonical-key LRU
   (key = the cluster's sorted detector indices, as raw bytes).  Because
   low-p syndromes decompose into few distinct small clusters, sub-syndrome
   hit rates far exceed whole-syndrome hit rates; dense fallbacks reuse
   the same cache keyed by the full active set.  Clusters of one or two
   defects are *not* cached -- their closed forms (a couple of array
   lookups) are cheaper than the cache machinery itself.

4. **Batching.**  :meth:`SparseMatchingEngine.solve_batch` processes a
   whole ``(shots, detectors)`` matrix Hamming-weight-bucketed: weight-1
   and weight-2 syndromes are closed-form solved with pure array
   arithmetic (no per-row Python), and larger buckets gather their
   close/unsafe submatrices with one fancy index per bucket before the
   per-row decomposition.

Statistics (cluster counts, cache hits/misses, fallbacks) are tracked in
:class:`SparseStats` and surfaced by the experiment reports.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..graphs.decoding_graph import BOUNDARY, NeighborStructure
from ..graphs.weights import GlobalWeightTable
from .blossom import min_weight_perfect_matching
from .boundary import MatchingProblem, matching_to_detectors
from .search import MAX_SEARCH_NODES, batched_search, vectorized_search

__all__ = [
    "SparseMatchingEngine",
    "SparseEngineError",
    "SparseStats",
    "default_tolerance",
]


class SparseEngineError(RuntimeError):
    """Internal inconsistency detected by the sparse matching engine.

    Raised when the engine cannot guarantee an exact result -- e.g. the
    weight table contains non-finite entries, a syndrome references a
    detector outside the table, or a cluster solve produced a non-finite
    weight.  :class:`repro.decoders.mwpm.MWPMDecoder` catches this and
    degrades to its dense reference path with a
    :class:`~repro.decoders.base.DecoderFallbackWarning` instead of
    aborting the experiment.
    """


def default_tolerance(gwt: GlobalWeightTable) -> float:
    """Separation-test tolerance appropriate for a weight table.

    Quantized tables (``lsb`` set) hold exact multiples of the lsb, so the
    boundary-folding bound is tested exactly; unquantized tables carry the
    float round-off of the all-pairs Dijkstra, absorbed by a tiny slack.
    """
    return 0.0 if gwt.lsb is not None else 1e-9


@dataclass
class SparseStats:
    """Counters accumulated by a :class:`SparseMatchingEngine`.

    Attributes:
        syndromes: Non-empty syndromes solved.
        dense_fallbacks: Syndromes containing an unsafe pair, solved as one
            dense (but still memoized) instance.
        clusters: Clusters solved across all decomposed syndromes.
        cache_hits: Cluster-cache hits (including fallback instances).
        cache_misses: Cluster-cache misses.
        blossom_clusters: Cache misses that exceeded the exhaustive-search
            node limit and ran the blossom solver.
    """

    syndromes: int = 0
    dense_fallbacks: int = 0
    clusters: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    blossom_clusters: int = 0

    @property
    def hit_rate(self) -> float:
        """Cluster-cache hit rate (0 when nothing was looked up)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def fallback_rate(self) -> float:
        """Fraction of syndromes that required the dense fallback."""
        return self.dense_fallbacks / self.syndromes if self.syndromes else 0.0

    def as_dict(self) -> dict[str, float]:
        """Counters plus derived rates, JSON-ready."""
        return {
            "syndromes": self.syndromes,
            "dense_fallbacks": self.dense_fallbacks,
            "clusters": self.clusters,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "blossom_clusters": self.blossom_clusters,
            "hit_rate": self.hit_rate,
            "fallback_rate": self.fallback_rate,
        }


@dataclass
class _ClusterSolution:
    """Memoized solution of one cluster (or one fallback instance)."""

    pairs: list[tuple[int, int]]
    weight: float
    prediction: bool


class SparseMatchingEngine:
    """Exact MWPM via cluster decomposition, closed forms and memoization.

    Args:
        gwt: Global Weight Table of the code/noise configuration.
        tolerance: Separation-test slack; defaults via
            :func:`default_tolerance` (0 for quantized tables, 1e-9 for
            float tables).
        cache_size: Maximum number of memoized cluster solutions (LRU
            eviction; 0 disables caching).
        structure: A pre-built :class:`NeighborStructure` for ``gwt`` at
            ``tolerance`` (e.g. from the pipeline's artifact store).  The
            caller guarantees it matches; None computes it here.
    """

    def __init__(
        self,
        gwt: GlobalWeightTable,
        *,
        tolerance: float | None = None,
        cache_size: int = 65536,
        structure: NeighborStructure | None = None,
    ) -> None:
        self.gwt = gwt
        self.tolerance = (
            default_tolerance(gwt) if tolerance is None else tolerance
        )
        if structure is not None and structure.radii.shape[0] != gwt.weights.shape[0]:
            raise ValueError(
                f"pre-built neighbor structure covers "
                f"{structure.radii.shape[0]} detectors but the weight "
                f"table has {gwt.weights.shape[0]}"
            )
        self.structure = (
            structure
            if structure is not None
            else NeighborStructure.from_weights(
                gwt.weights, gwt.parities, tolerance=self.tolerance
            )
        )
        self.cache_size = cache_size
        self.stats = SparseStats()
        self._cache: OrderedDict[bytes, _ClusterSolution] = OrderedDict()
        # Flat copies of the hot lookups (diagonals as 1-D arrays) so the
        # closed forms touch contiguous memory.
        self._radii = self.structure.radii
        self._diag_parities = np.diag(gwt.parities).copy()
        self._num_detectors = int(gwt.weights.shape[0])
        # Checked once; a poisoned table makes every decomposition claim
        # (and the dense solve itself) meaningless, so solves must refuse.
        self._weights_finite = bool(np.isfinite(gwt.weights).all())

    def _check_solvable(self, dets: np.ndarray) -> None:
        """Refuse syndromes the engine cannot decode exactly.

        Raises:
            SparseEngineError: When the weight table holds non-finite
                entries or a detector index falls outside the table.
        """
        if not self._weights_finite:
            raise SparseEngineError(
                "weight table contains non-finite (NaN/inf) entries"
            )
        if dets.size and (
            int(dets[-1]) >= self._num_detectors or int(dets[0]) < 0
        ):
            offender = (
                int(dets[-1])
                if int(dets[-1]) >= self._num_detectors
                else int(dets[0])
            )
            raise SparseEngineError(
                f"detector index {offender} "
                f"outside the {self._num_detectors}-detector weight table"
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def solve(
        self, active: list[int] | np.ndarray
    ) -> tuple[list[tuple[int, int]], float, bool]:
        """Exact minimum-weight matching of one syndrome.

        Args:
            active: Indices of the non-zero syndrome bits (any order).

        Returns:
            Tuple ``(pairs, weight, prediction)``: detector-index pairs
            (:data:`BOUNDARY` second for boundary matches), the matching's
            total weight, and the implied logical-observable flip.
        """
        dets = np.asarray(active, dtype=np.intp)
        if dets.size == 0:
            return [], 0.0, False
        dets = np.sort(dets)
        self._check_solvable(dets)
        self.stats.syndromes += 1
        if dets.size == 1:
            self.stats.clusters += 1
            solution = self._singleton(int(dets[0]))
            return list(solution.pairs), solution.weight, solution.prediction
        cols = dets[:, None]
        if self.structure.unsafe[cols, dets].any():
            self.stats.dense_fallbacks += 1
            solution = self._memoized(b"F" + dets.tobytes(), dets, self._dense_solve)
            return list(solution.pairs), solution.weight, solution.prediction
        return self._solve_decomposed(dets, self.structure.close[cols, dets])

    def solve_batch(
        self, syndromes: np.ndarray
    ) -> list[tuple[list[tuple[int, int]], float, bool]]:
        """Exact minimum-weight matchings of a (shots, detectors) matrix.

        Row results are identical to per-row :meth:`solve`, but work is
        Hamming-weight-bucketed: weight-1 and weight-2 syndromes reduce to
        closed forms evaluated with pure array arithmetic, and each larger
        bucket gathers its close/unsafe submatrices with one fancy index
        before the per-row cluster decomposition.  The cluster cache is
        consulted only for clusters of three or more defects, exactly as
        in the scalar path.
        """
        syndromes = np.asarray(syndromes).astype(bool, copy=False)
        if syndromes.ndim != 2:
            raise ValueError("solve_batch expects a (shots, detectors) matrix")
        if not self._weights_finite:
            raise SparseEngineError(
                "weight table contains non-finite (NaN/inf) entries"
            )
        num = syndromes.shape[0]
        out: list[tuple[list[tuple[int, int]], float, bool] | None] = [None] * num
        hw = syndromes.sum(axis=1)
        stats = self.stats
        structure = self.structure
        # Deferred >= 3-defect clusters, deduplicated by canonical key; the
        # composition plan of each decomposed row references them by key.
        deferred_index: dict[bytes, int] = {}
        deferred: list[np.ndarray] = []
        plans: list[tuple[int, list[_ClusterSolution | bytes]]] = []
        for w in np.unique(hw):
            w = int(w)
            rows = np.nonzero(hw == w)[0]
            if w == 0:
                for i in rows:
                    out[i] = ([], 0.0, False)
                continue
            active = np.nonzero(syndromes[rows])[1].reshape(len(rows), w)
            stats.syndromes += len(rows)
            if w == 1:
                stats.clusters += len(rows)
                dets = active[:, 0]
                ws = self._radii[dets].tolist()
                ps = self._diag_parities[dets].tolist()
                for j, i in enumerate(rows):
                    out[i] = ([(int(dets[j]), BOUNDARY)], ws[j], ps[j])
                continue
            if w == 2:
                a, b = active[:, 0], active[:, 1]
                sep = structure.separable[a, b]
                unsafe = structure.unsafe[a, b]
                stats.dense_fallbacks += int(unsafe.sum())
                stats.clusters += 2 * int(sep.sum()) + int((~sep & ~unsafe).sum())
                direct_w = self.gwt.weights[a, b].tolist()
                direct_p = self.gwt.parities[a, b].tolist()
                both_w = (self._radii[a] + self._radii[b]).tolist()
                both_p = (
                    self._diag_parities[a] ^ self._diag_parities[b]
                ).tolist()
                sep_list = sep.tolist()
                for j, i in enumerate(rows):
                    ai, bi = int(a[j]), int(b[j])
                    if sep_list[j]:
                        # Two separable singletons: both to the boundary.
                        out[i] = (
                            [(ai, BOUNDARY), (bi, BOUNDARY)],
                            both_w[j],
                            both_p[j],
                        )
                    else:
                        # Close pair -- or unsafe pair, whose dense solve
                        # (two nodes, no virtual) is the direct pair too.
                        out[i] = ([(ai, bi)], direct_w[j], direct_p[j])
                continue
            gathered_close = structure.close[
                active[:, :, None], active[:, None, :]
            ]
            gathered_unsafe = structure.unsafe[
                active[:, :, None], active[:, None, :]
            ]
            fallback = gathered_unsafe.any(axis=(1, 2))
            for j, i in enumerate(rows):
                dets = active[j]
                if fallback[j]:
                    stats.dense_fallbacks += 1
                    solution = self._memoized(
                        b"F" + dets.tobytes(), dets, self._dense_solve
                    )
                    out[i] = (
                        list(solution.pairs),
                        solution.weight,
                        solution.prediction,
                    )
                    continue
                entries: list[_ClusterSolution | bytes] = []
                for members in _components_local(gathered_close[j]):
                    stats.clusters += 1
                    if len(members) == 1:
                        entries.append(self._singleton(int(dets[members[0]])))
                    elif len(members) == 2:
                        entries.append(
                            self._close_pair(
                                int(dets[members[0]]), int(dets[members[1]])
                            )
                        )
                    else:
                        cluster = dets[members]
                        key = b"C" + cluster.tobytes()
                        cached = self._cache.get(key)
                        if cached is not None:
                            stats.cache_hits += 1
                            self._cache.move_to_end(key)
                            entries.append(cached)
                        elif key in deferred_index:
                            # Another row in this batch already queued the
                            # identical cluster: share its solve.
                            stats.cache_hits += 1
                            entries.append(key)
                        else:
                            stats.cache_misses += 1
                            deferred_index[key] = len(deferred)
                            deferred.append(cluster)
                            entries.append(key)
                plans.append((int(i), entries))
        resolved: dict[bytes, _ClusterSolution] = {}
        if deferred:
            solutions = self._solve_clusters_grouped(deferred)
            for key, index in deferred_index.items():
                solution = solutions[index]
                resolved[key] = solution
                if self.cache_size > 0:
                    self._cache[key] = solution
                    if len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
        for i, entries in plans:
            pairs: list[tuple[int, int]] = []
            weight = 0.0
            prediction = False
            for entry in entries:
                solution = resolved[entry] if isinstance(entry, bytes) else entry
                pairs.extend(solution.pairs)
                weight += solution.weight
                prediction ^= solution.prediction
            out[i] = (sorted(pairs), weight, prediction)
        return out

    def clear_cache(self) -> None:
        """Drop all memoized cluster solutions (stats are kept)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------

    def _solve_decomposed(
        self, dets: np.ndarray, close_sub: np.ndarray
    ) -> tuple[list[tuple[int, int]], float, bool]:
        """Solve a fallback-free syndrome cluster by cluster.

        Args:
            dets: Sorted active detector indices.
            close_sub: Their ``(w, w)`` close-adjacency submatrix.

        Clusters are visited ordered by smallest detector so that float
        weight accumulation is deterministic for a given syndrome.
        """
        pairs: list[tuple[int, int]] = []
        weight = 0.0
        prediction = False
        clusters = 0
        for members in _components_local(close_sub):
            clusters += 1
            if len(members) == 1:
                solution = self._singleton(int(dets[members[0]]))
            elif len(members) == 2:
                solution = self._close_pair(
                    int(dets[members[0]]), int(dets[members[1]])
                )
            else:
                cluster = dets[members]
                solution = self._memoized(
                    b"C" + cluster.tobytes(), cluster, self._compute_cluster
                )
            pairs.extend(solution.pairs)
            weight += solution.weight
            prediction ^= solution.prediction
        self.stats.clusters += clusters
        return sorted(pairs), weight, prediction

    # ------------------------------------------------------------------
    # Cluster solving
    # ------------------------------------------------------------------

    def _solve_cluster(self, dets: np.ndarray) -> _ClusterSolution:
        """Solve (or recall) the matching of one cluster of detectors."""
        return self._memoized(b"C" + dets.tobytes(), dets, self._compute_cluster)

    def _memoized(self, key, dets, compute) -> _ClusterSolution:
        """LRU-cached solve; key namespaces keep solver paths deterministic.

        A fallback instance (prefix ``F``, always blossom -- bit-identical
        to the dense decoder, tie-breaking included) and a cluster over the
        same detectors (prefix ``C``, cheapest applicable method) may pick
        different equal-weight optima, so they never share a cache entry.
        """
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            self._cache.move_to_end(key)
            return cached
        self.stats.cache_misses += 1
        solution = compute(dets)
        if self.cache_size > 0:
            self._cache[key] = solution
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return solution

    def _dense_solve(self, dets: np.ndarray) -> _ClusterSolution:
        """One blossom solve of the whole syndrome, as the dense decoder runs it.

        Used for unsafe-pair fallbacks; replicating the dense path exactly
        (solver and tie-breaking included) keeps fallback results
        bit-identical to :class:`repro.decoders.mwpm.MWPMDecoder`'s dense
        mode even when the instance has several minimum-weight matchings.
        """
        problem = MatchingProblem.from_syndrome(self.gwt, [int(d) for d in dets])
        self.stats.blossom_clusters += 1
        local_pairs = min_weight_perfect_matching(problem.weights)
        return _ClusterSolution(
            pairs=matching_to_detectors(
                local_pairs, problem.active, problem.has_virtual
            ),
            weight=problem.total_weight(local_pairs),
            prediction=problem.prediction(local_pairs),
        )

    def _singleton(self, d: int) -> _ClusterSolution:
        """Closed form: a lone defect matches the boundary."""
        return _ClusterSolution(
            pairs=[(d, BOUNDARY)],
            weight=float(self._radii[d]),
            prediction=bool(self._diag_parities[d]),
        )

    def _close_pair(self, a: int, b: int) -> _ClusterSolution:
        """Closed form: a close pair matches directly (beats the boundary)."""
        return _ClusterSolution(
            pairs=[(a, b)],
            weight=float(self.gwt.weights[a, b]),
            prediction=bool(self.gwt.parities[a, b]),
        )

    def _solve_clusters_grouped(
        self, clusters: list[np.ndarray]
    ) -> list[_ClusterSolution]:
        """Solve many >= 3-defect clusters, grouped by size for the kernels.

        Same-size clusters share one :func:`batched_search` call (their
        matching problems are built with one GWT gather and their local ->
        detector translation is vectorized, mirroring the Astrea batch
        pipeline); clusters too large for the index tensors run the blossom
        solver individually.  Results are element-wise identical to
        :meth:`_compute_cluster`.
        """
        solutions: list[_ClusterSolution | None] = [None] * len(clusters)
        by_size: dict[int, list[int]] = {}
        for index, cluster in enumerate(clusters):
            by_size.setdefault(cluster.size, []).append(index)
        for size, indices in by_size.items():
            if size + (size % 2) > MAX_SEARCH_NODES:
                for index in indices:
                    solutions[index] = self._compute_cluster(clusters[index])
                continue
            active = np.stack([clusters[index] for index in indices])
            batch = MatchingProblem.from_syndrome_batch(self.gwt, active)
            pair_tensor, weights, predictions = batched_search(
                batch.weights, batch.parities
            )
            lookup = batch.active
            if batch.has_virtual:
                pad = np.full((len(indices), 1), BOUNDARY, dtype=lookup.dtype)
                lookup = np.concatenate([lookup, pad], axis=1)
            rows = np.arange(len(indices))[:, None]
            da = lookup[rows, pair_tensor[:, :, 0]]
            db = lookup[rows, pair_tensor[:, :, 1]]
            lo = np.minimum(da, db)
            hi = np.maximum(da, db)
            virtual = lo == BOUNDARY
            first = np.where(virtual, hi, lo)
            second = np.where(virtual, lo, hi)
            # Each detector appears in at most one pair, so sorting on the
            # first element alone reproduces matching_to_detectors' order.
            order = np.argsort(first, axis=1)
            first = np.take_along_axis(first, order, axis=1)
            second = np.take_along_axis(second, order, axis=1)
            matchings = np.stack([first, second], axis=2).tolist()
            weight_list = weights.tolist()
            pred_list = predictions.tolist()
            for j, index in enumerate(indices):
                solutions[index] = _ClusterSolution(
                    pairs=[(a, b) for a, b in matchings[j]],
                    weight=float(weight_list[j]),
                    prediction=bool(pred_list[j]),
                )
        return solutions

    def _compute_cluster(self, dets: np.ndarray) -> _ClusterSolution:
        """Exact matching of a >= 3-defect cluster (search or blossom)."""
        problem = MatchingProblem.from_syndrome(self.gwt, [int(d) for d in dets])
        if problem.num_nodes <= MAX_SEARCH_NODES:
            local_pairs, weight, _ = vectorized_search(problem.weights)
        else:
            self.stats.blossom_clusters += 1
            local_pairs = min_weight_perfect_matching(problem.weights)
            weight = problem.total_weight(local_pairs)
        return _ClusterSolution(
            pairs=matching_to_detectors(
                local_pairs, problem.active, problem.has_virtual
            ),
            weight=float(weight),
            prediction=problem.prediction(local_pairs),
        )


def _components_local(close_sub: np.ndarray) -> list[list[int]]:
    """Connected components of a small close-adjacency submatrix.

    Returns components as sorted local-index lists, ordered by smallest
    member, using a single ``nonzero`` over the submatrix (per-node array
    scans dominate the per-syndrome cost otherwise).
    """
    n = close_sub.shape[0]
    src, dst = np.nonzero(close_sub)
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for x, y in zip(src.tolist(), dst.tolist()):
        adjacency[x].append(y)
    seen = [False] * n
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        stack = [start]
        members = [start]
        while stack:
            node = stack.pop()
            for nbr in adjacency[node]:
                if not seen[nbr]:
                    seen[nbr] = True
                    members.append(nbr)
                    stack.append(nbr)
        members.sort()
        components.append(members)
    return components
