"""Exact maximum-weight general matching (the blossom algorithm).

This module is the repository's stand-in for BlossomV, the C++ library the
paper uses as its gold-standard software MWPM implementation (section 3.3).
It implements Galil's O(n^3) primal-dual method for maximum-weight matching
in general graphs, including blossom shrinking/expansion and the
max-cardinality mode needed to force *perfect* matchings.

The implementation follows the classic structure popularised by Joris van
Rantwijk's reference code (also the basis of NetworkX's implementation):
a single array-based state machine over vertices ``0..n-1`` and blossoms
``n..2n-1``, alternating primal augmentation with dual-variable updates.
With integer weights the result is provably optimal; the public
:func:`min_weight_perfect_matching` wrapper scales float weights to integers
before solving.

Correctness is established in the test suite by differential testing
against exhaustive search and ``networkx.max_weight_matching`` on thousands
of random graphs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["max_weight_matching", "min_weight_perfect_matching"]


def max_weight_matching(
    edges: list[tuple[int, int, int]], maxcardinality: bool = False
) -> list[int]:
    """Compute a maximum-weight matching of a general graph.

    Args:
        edges: List of ``(i, j, weight)`` with ``i != j`` and integer
            weights (floats work but exactness is only guaranteed for
            integers).
        maxcardinality: When True, only maximum-cardinality matchings are
            considered (among which the weight is maximised).

    Returns:
        List ``mate`` such that ``mate[i]`` is the vertex matched to ``i``
        or ``-1`` if ``i`` is single.
    """
    if not edges:
        return []

    nedge = len(edges)
    nvertex = 1 + max(max(i, j) for (i, j, _w) in edges)
    for (i, j, w) in edges:
        if i == j or i < 0 or j < 0:
            raise ValueError(f"invalid edge ({i}, {j}, {w})")

    maxweight = max(0, max(w for (_i, _j, w) in edges))

    # endpoint[p] is the vertex at endpoint p; edge k has endpoints 2k, 2k+1.
    endpoint = [edges[p // 2][p % 2] for p in range(2 * nedge)]
    # neighbend[v] lists the remote endpoints of edges incident to v.
    neighbend: list[list[int]] = [[] for _ in range(nvertex)]
    for k, (i, j, _w) in enumerate(edges):
        neighbend[i].append(2 * k + 1)
        neighbend[j].append(2 * k)

    # Array mirrors of the edge list for the vectorized dual update.  Only
    # taken for integer weights (exact arithmetic) whose dual variables
    # provably stay inside int64 -- duals move by at most O(nvertex) deltas
    # of at most O(maxweight * nvertex) each -- and for graphs big enough
    # that the array bookkeeping beats four scalar scans.
    _warr = np.asarray([w for (_i, _j, w) in edges])
    use_arrays = (
        _warr.dtype.kind in "iu"
        and nvertex >= 16
        and (int(np.abs(_warr).max()) + 1) * (nvertex * nvertex + 16) < 2**62
    )
    if use_arrays:
        ei_arr = np.asarray([i for (i, _j, _w) in edges], dtype=np.int64)
        ej_arr = np.asarray([j for (_i, j, _w) in edges], dtype=np.int64)
        ew2_arr = _warr.astype(np.int64) * 2

    mate = [-1] * nvertex  # mate[v]: remote endpoint of v's matched edge
    label = [0] * (2 * nvertex)  # 0 free, 1 S-vertex, 2 T-vertex
    labelend = [-1] * (2 * nvertex)
    inblossom = list(range(nvertex))  # top-level blossom containing v
    blossomparent = [-1] * (2 * nvertex)
    blossomchilds: list[list[int] | None] = [None] * (2 * nvertex)
    blossombase = list(range(nvertex)) + [-1] * nvertex
    blossomendps: list[list[int] | None] = [None] * (2 * nvertex)
    bestedge = [-1] * (2 * nvertex)
    blossombestedges: list[list[int] | None] = [None] * (2 * nvertex)
    unusedblossoms = list(range(nvertex, 2 * nvertex))
    dualvar = [maxweight] * nvertex + [0] * nvertex
    allowedge = [False] * nedge
    queue: list[int] = []

    def slack(k: int) -> int:
        (i, j, wt) = edges[k]
        return dualvar[i] + dualvar[j] - 2 * wt

    def blossom_leaves(b: int):
        if b < nvertex:
            yield b
        else:
            for t in blossomchilds[b]:  # type: ignore[union-attr]
                if t < nvertex:
                    yield t
                else:
                    yield from blossom_leaves(t)

    def assign_label(w: int, t: int, p: int) -> None:
        b = inblossom[w]
        label[w] = label[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        if t == 1:
            queue.extend(blossom_leaves(b))
        elif t == 2:
            base = blossombase[b]
            assign_label(endpoint[mate[base]], 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        """Find a common ancestor blossom of v and w, or -1."""
        path = []
        base = -1
        while v != -1 or w != -1:
            b = inblossom[v]
            if label[b] & 4:
                base = blossombase[b]
                break
            path.append(b)
            label[b] = 5
            if mate[blossombase[b]] == -1:
                v = -1
            else:
                v = endpoint[mate[blossombase[b]]]
                b = inblossom[v]
                v = endpoint[labelend[b]]
            if w != -1:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    def add_blossom(base: int, k: int) -> None:
        (v, w, _wt) = edges[k]
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = unusedblossoms.pop()
        blossombase[b] = base
        blossomparent[b] = -1
        blossomparent[bb] = b
        path: list[int] = []
        endps: list[int] = []
        blossomchilds[b] = path
        blossomendps[b] = endps
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        label[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0
        for leaf in blossom_leaves(b):
            if label[inblossom[leaf]] == 2:
                queue.append(leaf)
            inblossom[leaf] = b
        bestedgeto = [-1] * (2 * nvertex)
        for bv in path:
            if blossombestedges[bv] is None:
                nblists = [
                    [p // 2 for p in neighbend[leaf]]
                    for leaf in blossom_leaves(bv)
                ]
            else:
                nblists = [blossombestedges[bv]]  # type: ignore[list-item]
            for nblist in nblists:
                for kk in nblist:
                    (i, j, _wt2) = edges[kk]
                    if inblossom[j] == b:
                        i, j = j, i
                    bj = inblossom[j]
                    if (
                        bj != b
                        and label[bj] == 1
                        and (
                            bestedgeto[bj] == -1
                            or slack(kk) < slack(bestedgeto[bj])
                        )
                    ):
                        bestedgeto[bj] = kk
            blossombestedges[bv] = None
            bestedge[bv] = -1
        blossombestedges[b] = [kk for kk in bestedgeto if kk != -1]
        be = -1
        for kk in blossombestedges[b]:  # type: ignore[union-attr]
            if be == -1 or slack(kk) < slack(be):
                be = kk
        bestedge[b] = be

    def expand_blossom(b: int, endstage: bool) -> None:
        for s in blossomchilds[b]:  # type: ignore[union-attr]
            blossomparent[s] = -1
            if s < nvertex:
                inblossom[s] = s
            elif endstage and dualvar[s] == 0:
                expand_blossom(s, endstage)
            else:
                for leaf in blossom_leaves(s):
                    inblossom[leaf] = s
        if (not endstage) and label[b] == 2:
            entrychild = inblossom[endpoint[labelend[b] ^ 1]]
            j = blossomchilds[b].index(entrychild)  # type: ignore[union-attr]
            if j & 1:
                j -= len(blossomchilds[b])  # type: ignore[arg-type]
                jstep = 1
                endptrick = 0
            else:
                jstep = -1
                endptrick = 1
            p = labelend[b]
            while j != 0:
                label[endpoint[p ^ 1]] = 0
                label[
                    endpoint[
                        blossomendps[b][j - endptrick] ^ endptrick ^ 1
                    ]
                ] = 0
                assign_label(endpoint[p ^ 1], 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick
                allowedge[p // 2] = True
                j += jstep
            bv = blossomchilds[b][j]  # type: ignore[index]
            label[endpoint[p ^ 1]] = label[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            j += jstep
            while blossomchilds[b][j] != entrychild:  # type: ignore[index]
                bv = blossomchilds[b][j]  # type: ignore[index]
                if label[bv] == 1:
                    j += jstep
                    continue
                for v in blossom_leaves(bv):
                    if label[v] != 0:
                        break
                if label[v] != 0:
                    label[v] = 0
                    label[endpoint[mate[blossombase[bv]]]] = 0
                    assign_label(v, 2, labelend[v])
                j += jstep
        label[b] = labelend[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        t = v
        while blossomparent[t] != b:
            t = blossomparent[t]
        if t >= nvertex:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)  # type: ignore[union-attr]
        if i & 1:
            j -= len(blossomchilds[b])  # type: ignore[arg-type]
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]  # type: ignore[index]
            p = blossomendps[b][j - endptrick] ^ endptrick
            if t >= nvertex:
                augment_blossom(t, endpoint[p])
            j += jstep
            t = blossomchilds[b][j]  # type: ignore[index]
            if t >= nvertex:
                augment_blossom(t, endpoint[p ^ 1])
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        blossomchilds[b] = (
            blossomchilds[b][i:] + blossomchilds[b][:i]  # type: ignore[index]
        )
        blossomendps[b] = (
            blossomendps[b][i:] + blossomendps[b][:i]  # type: ignore[index]
        )
        blossombase[b] = blossombase[blossomchilds[b][0]]  # type: ignore[index]
        assert blossombase[b] == v

    def augment_matching(k: int) -> None:
        (v, w, _wt) = edges[k]
        for (s, p) in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = inblossom[s]
                assert label[bs] == 1
                assert labelend[bs] == mate[blossombase[bs]]
                if bs >= nvertex:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break
                t = endpoint[labelend[bs]]
                bt = inblossom[t]
                assert label[bt] == 2
                s = endpoint[labelend[bt]]
                j = endpoint[labelend[bt] ^ 1]
                assert blossombase[bt] == t
                if inblossom[j] >= nvertex:
                    augment_blossom(inblossom[j], j)
                mate[j] = labelend[bt]
                p = labelend[bt] ^ 1

    # Main loop: one stage per augmentation.
    for _t in range(nvertex):
        label[:] = [0] * (2 * nvertex)
        bestedge[:] = [-1] * (2 * nvertex)
        for i in range(nvertex, 2 * nvertex):
            blossombestedges[i] = None
        allowedge[:] = [False] * nedge
        queue[:] = []
        for v in range(nvertex):
            if mate[v] == -1 and label[inblossom[v]] == 0:
                assign_label(v, 1, -1)
        augmented = False
        while True:
            while queue and not augmented:
                v = queue.pop()
                assert label[inblossom[v]] == 1
                for p in neighbend[v]:
                    k = p // 2
                    w = endpoint[p]
                    if inblossom[v] == inblossom[w]:
                        continue
                    if not allowedge[k]:
                        kslack = slack(k)
                        if kslack <= 0:
                            allowedge[k] = True
                    if allowedge[k]:
                        if label[inblossom[w]] == 0:
                            assign_label(w, 2, p ^ 1)
                        elif label[inblossom[w]] == 1:
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif label[w] == 0:
                            assert label[inblossom[w]] == 2
                            label[w] = 2
                            labelend[w] = p ^ 1
                    elif label[inblossom[w]] == 1:
                        b = inblossom[v]
                        if bestedge[b] == -1 or kslack < slack(bestedge[b]):
                            bestedge[b] = k
                    elif label[w] == 0:
                        if bestedge[w] == -1 or kslack < slack(bestedge[w]):
                            bestedge[w] = k
            if augmented:
                break

            # Dual update.  The array path computes each delta type's
            # strict-first-occurrence minimum with one reduction, matching
            # the scalar scans bit for bit (argmin returns the first
            # minimal index; cross-type precedence stays a strict ``<``).
            deltatype = -1
            delta = deltaedge = deltablossom = None
            if use_arrays:
                dv = np.asarray(dualvar, dtype=np.int64)
                lbl_a = np.asarray(label, dtype=np.int64)
                inb_a = np.asarray(inblossom, dtype=np.int64)
                be_a = np.asarray(bestedge, dtype=np.int64)
                bpar_a = np.asarray(blossomparent, dtype=np.int64)
                bbase_a = np.asarray(blossombase, dtype=np.int64)
                if not maxcardinality:
                    deltatype = 1
                    delta = int(dv[:nvertex].min())
                # Type 2: free vertices carrying a best edge.
                cand = np.flatnonzero(
                    (lbl_a[inb_a] == 0) & (be_a[:nvertex] != -1)
                )
                if cand.size:
                    ks = be_a[cand]
                    ds = dv[ei_arr[ks]] + dv[ej_arr[ks]] - ew2_arr[ks]
                    a = int(np.argmin(ds))
                    d = int(ds[a])
                    if deltatype == -1 or d < delta:  # type: ignore[operator]
                        delta = d
                        deltatype = 2
                        deltaedge = int(ks[a])
                # Type 3: top-level S-blossoms carrying a best edge.
                cand = np.flatnonzero(
                    (bpar_a == -1) & (lbl_a == 1) & (be_a != -1)
                )
                if cand.size:
                    ks = be_a[cand]
                    ds = (dv[ei_arr[ks]] + dv[ej_arr[ks]] - ew2_arr[ks]) // 2
                    a = int(np.argmin(ds))
                    d = int(ds[a])
                    if deltatype == -1 or d < delta:  # type: ignore[operator]
                        delta = d
                        deltatype = 3
                        deltaedge = int(ks[a])
                # Type 4: top-level T-blossoms.
                cand = np.flatnonzero(
                    (bbase_a[nvertex:] >= 0)
                    & (bpar_a[nvertex:] == -1)
                    & (lbl_a[nvertex:] == 2)
                )
                if cand.size:
                    ds = dv[nvertex + cand]
                    a = int(np.argmin(ds))
                    d = int(ds[a])
                    if deltatype == -1 or d < delta:  # type: ignore[operator]
                        delta = d
                        deltatype = 4
                        deltablossom = int(nvertex + cand[a])
                if deltatype == -1:
                    # No further improvement possible (max-cardinality mode).
                    deltatype = 1
                    delta = max(0, int(dv[:nvertex].min()))
                # Vectorized dual adjustment, written back to the list
                # state the primal machinery keeps mutating.
                vlbl = lbl_a[inb_a]
                dv[:nvertex] -= delta * (vlbl == 1)
                dv[:nvertex] += delta * (vlbl == 2)
                top = (bbase_a[nvertex:] >= 0) & (bpar_a[nvertex:] == -1)
                dv[nvertex:] += delta * (top & (lbl_a[nvertex:] == 1))
                dv[nvertex:] -= delta * (top & (lbl_a[nvertex:] == 2))
                dualvar[:] = dv.tolist()
            else:
                if not maxcardinality:
                    deltatype = 1
                    delta = min(dualvar[:nvertex])
                for v in range(nvertex):
                    if label[inblossom[v]] == 0 and bestedge[v] != -1:
                        d = slack(bestedge[v])
                        if deltatype == -1 or d < delta:  # type: ignore[operator]
                            delta = d
                            deltatype = 2
                            deltaedge = bestedge[v]
                for b in range(2 * nvertex):
                    if (
                        blossomparent[b] == -1
                        and label[b] == 1
                        and bestedge[b] != -1
                    ):
                        kslack = slack(bestedge[b])
                        d = kslack // 2
                        if deltatype == -1 or d < delta:  # type: ignore[operator]
                            delta = d
                            deltatype = 3
                            deltaedge = bestedge[b]
                for b in range(nvertex, 2 * nvertex):
                    if (
                        blossombase[b] >= 0
                        and blossomparent[b] == -1
                        and label[b] == 2
                        and (deltatype == -1 or dualvar[b] < delta)  # type: ignore[operator]
                    ):
                        delta = dualvar[b]
                        deltatype = 4
                        deltablossom = b
                if deltatype == -1:
                    # No further improvement possible (max-cardinality mode).
                    deltatype = 1
                    delta = max(0, min(dualvar[:nvertex]))

                for v in range(nvertex):
                    lbl = label[inblossom[v]]
                    if lbl == 1:
                        dualvar[v] -= delta  # type: ignore[operator]
                    elif lbl == 2:
                        dualvar[v] += delta  # type: ignore[operator]
                for b in range(nvertex, 2 * nvertex):
                    if blossombase[b] >= 0 and blossomparent[b] == -1:
                        if label[b] == 1:
                            dualvar[b] += delta  # type: ignore[operator]
                        elif label[b] == 2:
                            dualvar[b] -= delta  # type: ignore[operator]

            if deltatype == 1:
                break
            elif deltatype == 2:
                allowedge[deltaedge] = True  # type: ignore[index]
                (i, j, _wt) = edges[deltaedge]  # type: ignore[index]
                if label[inblossom[i]] == 0:
                    i, j = j, i
                queue.append(i)
            elif deltatype == 3:
                allowedge[deltaedge] = True  # type: ignore[index]
                (i, j, _wt) = edges[deltaedge]  # type: ignore[index]
                queue.append(i)
            elif deltatype == 4:
                expand_blossom(deltablossom, False)  # type: ignore[arg-type]

        if not augmented:
            break

        for b in range(nvertex, 2 * nvertex):
            if (
                blossomparent[b] == -1
                and blossombase[b] >= 0
                and label[b] == 1
                and dualvar[b] == 0
            ):
                expand_blossom(b, True)

    result = [-1] * nvertex
    for v in range(nvertex):
        if mate[v] >= 0:
            result[v] = endpoint[mate[v]]
    for v in range(nvertex):
        assert result[v] == -1 or result[result[v]] == v
    return result


def min_weight_perfect_matching(
    weights: np.ndarray, *, scale: float = 1 << 16
) -> list[tuple[int, int]]:
    """Minimum-weight perfect matching on a dense complete graph.

    Args:
        weights: Symmetric ``(n, n)`` array of pair weights; ``n`` even.
            Diagonal entries are ignored.
        scale: Float weights are multiplied by this factor and rounded to
            integers before solving; the default keeps ~5 decimal digits.

    Returns:
        The matching as ``n/2`` pairs ``(i, j)`` with ``i < j``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    if n == 0:
        return []
    if n % 2:
        raise ValueError("perfect matching needs an even number of vertices")
    if weights.shape != (n, n):
        raise ValueError("weights must be a square matrix")
    int_weights = np.round(weights * scale).astype(np.int64)
    max_w = int(int_weights.max())
    edges = [
        (i, j, max_w - int(int_weights[i, j]))
        for i in range(n)
        for j in range(i + 1, n)
    ]
    mate = max_weight_matching(edges, maxcardinality=True)
    pairs = sorted(
        (i, mate[i]) for i in range(n) if mate[i] > i
    )
    if len(pairs) != n // 2:
        raise AssertionError("blossom failed to produce a perfect matching")
    return pairs
