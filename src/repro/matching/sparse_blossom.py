"""Graph-local exact MWPM: region growth on the decoding graph.

The table-driven sparse engine (:mod:`repro.matching.sparse`) reads every
pairwise defect weight from a precomputed all-pairs table -- O(N^2) memory
and an O(N^2 log N) build that makes d >= 15 experiments infeasible.  This
module provides the alternative Sparse Blossom (Higgott & Gidney 2023)
made practical: pairwise defect weights are *discovered during growth* on
the primitive decoding-graph adjacency, so nothing quadratic in the
detector count is ever materialised.

The engine is exact, boundary matching included, via three steps:

1. **Radii.**  One Dijkstra from the virtual boundary vertex yields every
   detector's matching radius ``r_i`` (its boundary weight) and boundary
   parity -- the diagonal of the Global Weight Table, computed in
   O(E log V) total instead of per-pair.

2. **Region growth.**  Each defect ``i`` grows a shortest-path region out
   to radius ``2 * max(r)``: one bounded multi-source Dijkstra over the
   boundary-free adjacency (the through-boundary route is folded
   analytically, never traversed).  Two defects whose regions reach each
   other -- ``d(i, j) <= r_i + r_j``, i.e. matching them directly can
   beat (or tie) routing both to the boundary -- merge into one cluster;
   defects in different clusters are provably separable, so per-cluster
   optima compose into a global optimum by the same exchange argument the
   table engine uses.

3. **Cluster solving.**  Within a cluster, exact pair weights are the
   grown distances with the boundary fold applied analytically:
   ``W[i, j] = min(d(i, j), r_i + r_j)``, with the matched path's logical
   parity recovered from the Dijkstra predecessor tree.  The resulting
   local matching problem -- identical in form to the table engine's --
   runs through the same exhaustive-search kernels (clusters of up to
   :data:`~repro.matching.search.MAX_SEARCH_NODES` nodes, preserving the
   scalar tie-breaking order) or the blossom solver, and solutions are
   memoized in the same canonical-key LRU.

Alternating trees and blossoms never materialise explicitly: the growth
phase only *partitions* defects, and the (small) per-cluster matching is
delegated to the exact kernels, which is where odd cycles are resolved.
This trades the O(1)-amortised region bookkeeping of full Sparse Blossom
for a much simpler invariant, while keeping its defining properties:
graph-local discovery, O(E) memory, no all-pairs table.

Tie-breaking contract: weights are compared with an absolute
``tolerance`` (1e-9 by default, absorbing float shortest-path round-off,
matching the table engine's ideal-table tolerance).  Pairs whose direct
path exactly ties the through-boundary route are merged into one cluster
-- the conservative choice: a tie is never separated, so tied optima are
resolved by the matching kernel's deterministic scalar order, not by the
decomposition.  Shortest-path ties follow :func:`scipy.sparse.csgraph.
dijkstra`'s deterministic predecessor choice -- the same routine (and
hence the same tie order) the all-pairs table builder uses.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..backend import from_device
from ..graphs.decoding_graph import BOUNDARY, DecodingGraph
from .blossom import min_weight_perfect_matching
from .boundary import matching_to_detectors
from .search import MAX_SEARCH_NODES, vectorized_search
from .sparse import (
    SparseEngineError,
    SparseStats,
    _ClusterSolution,
    _components_local,
)

__all__ = ["SparseBlossomEngine"]

#: Widest cluster the flat enumeration kernel handles ((m - 1)!! = 10395
#: candidate matchings at 12 nodes -- the sweet spot where one fancy
#: gather still beats the blossom solver); wider clusters run blossom.
_FLAT_SEARCH_LIMIT = 12


@lru_cache(maxsize=None)
def _flat_matchings(m: int) -> np.ndarray:
    """All perfect matchings of ``m`` nodes as one (M, m/2, 2) tensor.

    Unlike :func:`repro.matching.search.matchings_tensor` (capped at the
    Astrea hardware model's 10 nodes and ordered to reproduce the scalar
    search's hierarchical tie-breaking), this enumeration exists purely to
    *minimize exactly*: cluster weights here are unquantized floats, where
    exact ties are measure-zero, so a flat ``argmin`` in enumeration order
    is deterministic and any minimum is an exact solution.  Built bottom-up
    with array remapping so the tensors assemble in milliseconds.
    """
    if m == 2:
        return np.array([[[0, 1]]], dtype=np.intp)
    sub = _flat_matchings(m - 2)
    blocks = []
    for idx in range(1, m):
        rest = np.array(
            list(range(1, idx)) + list(range(idx + 1, m)), dtype=np.intp
        )
        head = np.broadcast_to(
            np.array([0, idx], dtype=np.intp), (sub.shape[0], 1, 2)
        )
        blocks.append(np.concatenate([head, rest[sub]], axis=1))
    tensor = np.concatenate(blocks, axis=0)
    tensor.setflags(write=False)
    return tensor


@lru_cache(maxsize=None)
def _flat_indices(m: int) -> np.ndarray:
    """The matchings tensor as flat (row-major) weight-matrix offsets."""
    tensor = _flat_matchings(m)
    flat = tensor[:, :, 0] * m + tensor[:, :, 1]
    flat.setflags(write=False)
    return flat


def _flat_search(
    weights: np.ndarray,
) -> tuple[list[tuple[int, int]], float]:
    """Exact min-weight perfect matching by flat exhaustive enumeration."""
    m = weights.shape[0]
    totals = np.ascontiguousarray(weights).ravel()[_flat_indices(m)].sum(axis=1)
    best = int(np.argmin(totals))
    return (
        [tuple(pair) for pair in _flat_matchings(m)[best].tolist()],
        float(totals[best]),
    )


class SparseBlossomEngine:
    """Exact MWPM on decoding-graph adjacency, no all-pairs table.

    Args:
        graph: The decoding graph (all-pairs tables not required; build
            with ``DecodingGraph.from_dem(dem, all_pairs=False)`` to keep
            construction O(E)).
        tolerance: Absolute slack for weight comparisons during growth
            and boundary folding (ties within the tolerance are merged,
            never separated).
        cache_size: Maximum number of memoized cluster solutions (LRU
            eviction; 0 disables caching).
    """

    def __init__(
        self,
        graph: DecodingGraph,
        *,
        tolerance: float = 1e-9,
        cache_size: int = 65536,
    ) -> None:
        self.graph = graph
        self.tolerance = float(tolerance)
        self.cache_size = cache_size
        self.stats = SparseStats()
        n = self._num_detectors = int(graph.num_detectors)
        indptr, indices, weights, parities = graph.csr_adjacency()
        # Boundary-free adjacency (node n dropped): growth never expands
        # through the boundary; through-boundary routes are folded
        # analytically as r_i + r_j.
        src = np.repeat(np.arange(n + 1), np.diff(indptr))
        keep = (src < n) & (indices < n)
        self._csgraph = csr_matrix(
            (weights[keep], (src[keep], indices[keep])), shape=(n, n)
        )
        # Parity of the (canonical, cheapest) edge between two detectors,
        # for predecessor-tree walks.
        self._edge_parity = {
            (int(u), int(v)): bool(p)
            for u, v, p in zip(src[keep], indices[keep], parities[keep])
        }
        radii, boundary_parities = graph.boundary_distances()
        self._radii = radii
        self._bparity = boundary_parities
        self._radii_finite = bool(np.isfinite(radii).all())
        self._cache: OrderedDict[bytes, _ClusterSolution] = OrderedDict()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def solve(
        self, active: list[int] | np.ndarray
    ) -> tuple[list[tuple[int, int]], float, bool]:
        """Exact minimum-weight matching of one syndrome.

        Args:
            active: Indices of the non-zero syndrome bits (any order).

        Returns:
            Tuple ``(pairs, weight, prediction)``: detector-index pairs
            (:data:`BOUNDARY` second for boundary matches), the matching's
            total weight, and the implied logical-observable flip.
        """
        dets = np.asarray(active, dtype=np.intp)
        if dets.size == 0:
            return [], 0.0, False
        dets = np.sort(dets)
        self._check_solvable(dets)
        self.stats.syndromes += 1
        if dets.size == 1:
            self.stats.clusters += 1
            solution = self._singleton(int(dets[0]))
            return list(solution.pairs), solution.weight, solution.prediction
        radii = self._radii[dets]
        # One bounded multi-source Dijkstra covers both the cluster
        # criterion (d <= r_i + r_j) and every in-cluster pair weight.
        limit = 2.0 * float(radii.max()) + self.tolerance
        dist, pred = dijkstra(
            self._csgraph,
            directed=True,
            indices=dets,
            return_predecessors=True,
            limit=limit,
        )
        return self._match_from_growth(dets, radii, dist, pred, limit)

    def solve_many(
        self, clusters: list[np.ndarray]
    ) -> list[tuple[list[tuple[int, int]], float, bool]]:
        """Solve many independent syndromes with one shared Dijkstra sweep.

        Results and statistics are identical to calling :meth:`solve` on
        each entry (per-source Dijkstra runs are independent, and each
        entry's settled-node accounting is re-restricted to its own
        growth budget), but the single multi-source scipy call amortizes
        per-call overhead when the table engine routes a whole batch of
        oversized clusters at once.
        """
        grown: list[tuple[int, np.ndarray, np.ndarray, float]] = []
        results: list[tuple[list[tuple[int, int]], float, bool] | None] = [
            None
        ] * len(clusters)
        for i, active in enumerate(clusters):
            dets = np.sort(np.asarray(active, dtype=np.intp))
            if dets.size == 0:
                results[i] = ([], 0.0, False)
                continue
            self._check_solvable(dets)
            self.stats.syndromes += 1
            if dets.size == 1:
                self.stats.clusters += 1
                solution = self._singleton(int(dets[0]))
                results[i] = (
                    list(solution.pairs),
                    solution.weight,
                    solution.prediction,
                )
                continue
            radii = self._radii[dets]
            limit = 2.0 * float(radii.max()) + self.tolerance
            grown.append((i, dets, radii, limit))
        if grown:
            dist, pred = dijkstra(
                self._csgraph,
                directed=True,
                indices=np.concatenate([dets for _, dets, _, _ in grown]),
                return_predecessors=True,
                limit=max(limit for _, _, _, limit in grown),
            )
            offset = 0
            for i, dets, radii, limit in grown:
                stop = offset + dets.size
                results[i] = self._match_from_growth(
                    dets, radii, dist[offset:stop], pred[offset:stop], limit
                )
                offset = stop
        return results

    def _match_from_growth(
        self,
        dets: np.ndarray,
        radii: np.ndarray,
        dist: np.ndarray,
        pred: np.ndarray,
        limit: float,
    ) -> tuple[list[tuple[int, int]], float, bool]:
        """Cluster criterion, decomposition and solving after growth.

        ``dist``/``pred`` rows may come from a Dijkstra run with a larger
        budget than this syndrome's own ``limit`` (the :meth:`solve_many`
        sweep); entries beyond ``limit`` exceed every pair cap of this
        syndrome, so criterion, weights and parities are unaffected and
        only the settled-node counter needs the explicit re-restriction.
        """
        pairwise = dist[:, dets]
        caps = radii[:, None] + radii[None, :]
        close = pairwise <= caps + self.tolerance
        np.fill_diagonal(close, False)
        components = _components_local(close)
        self.stats.nodes_settled += int((dist <= limit).sum())
        self.stats.collisions += dets.size - len(components)
        pairs: list[tuple[int, int]] = []
        weight = 0.0
        prediction = False
        for member_positions in components:
            self.stats.clusters += 1
            if len(member_positions) == 1:
                solution = self._singleton(int(dets[member_positions[0]]))
            else:
                solution = self._memoized(
                    dets, member_positions, pairwise, caps, dist, pred
                )
            pairs.extend(solution.pairs)
            weight += solution.weight
            prediction ^= solution.prediction
        return sorted(pairs), weight, prediction

    def solve_batch(
        self, syndromes: np.ndarray
    ) -> list[tuple[list[tuple[int, int]], float, bool]]:
        """Row-wise :meth:`solve` of a (shots, detectors) matrix.

        Growth is inherently per-syndrome; the batch entry point exists
        for API parity with the table engine and extracts all active
        indices with one ``np.nonzero``.  Cluster memoization is what
        makes bulk decoding fast here.  Device arrays from the active
        array backend are accepted (the seam crossing happens here).
        """
        syndromes = np.asarray(from_device(syndromes)).astype(bool, copy=False)
        if syndromes.ndim != 2:
            raise ValueError("solve_batch expects a (shots, detectors) matrix")
        num = syndromes.shape[0]
        rows, cols = np.nonzero(syndromes)
        splits = np.searchsorted(rows, np.arange(1, num))
        return [self.solve(chunk) for chunk in np.split(cols, splits)]

    def clear_cache(self) -> None:
        """Drop all memoized cluster solutions (stats are kept)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _check_solvable(self, dets: np.ndarray) -> None:
        """Refuse syndromes the engine cannot decode exactly.

        Raises:
            SparseEngineError: When some detector has no (finite) path to
                the boundary -- region budgets would be unbounded -- or a
                detector index falls outside the graph.
        """
        if not self._radii_finite:
            self.stats.fallback_events["unsolvable"] += 1
            raise SparseEngineError(
                "decoding graph has detectors with no boundary path "
                "(non-finite matching radius)"
            )
        if dets.size and (
            int(dets[-1]) >= self._num_detectors or int(dets[0]) < 0
        ):
            offender = (
                int(dets[-1])
                if int(dets[-1]) >= self._num_detectors
                else int(dets[0])
            )
            self.stats.fallback_events["unsolvable"] += 1
            raise SparseEngineError(
                f"detector index {offender} "
                f"outside the {self._num_detectors}-detector decoding graph"
            )

    # ------------------------------------------------------------------
    # Cluster solving
    # ------------------------------------------------------------------

    def _memoized(
        self,
        dets: np.ndarray,
        member_positions: list[int],
        pairwise: np.ndarray,
        caps: np.ndarray,
        dist: np.ndarray,
        pred: np.ndarray,
    ) -> _ClusterSolution:
        """LRU-cached cluster solve, keyed by the sorted member bytes.

        A cluster's membership depends on the whole syndrome, but its
        *solution* depends only on its members (grown distances, caps and
        predecessor paths are intrinsic to the member detectors), so
        solutions are reusable across syndromes.
        """
        members = dets[np.asarray(member_positions)]
        key = members.tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            self._cache.move_to_end(key)
            return cached
        self.stats.cache_misses += 1
        solution = self._solve_cluster(
            members, member_positions, pairwise, caps, dist, pred
        )
        if self.cache_size > 0:
            self._cache[key] = solution
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return solution

    def _path_parity(self, pred_row: np.ndarray, src: int, dst: int) -> bool:
        """Logical parity of the grown shortest path ``src -> dst``."""
        parity = False
        v = dst
        edge_parity = self._edge_parity
        while v != src:
            u = int(pred_row[v])
            parity ^= edge_parity[(u, v)]
            v = u
        return parity

    def _solve_cluster(
        self,
        members: np.ndarray,
        member_positions: list[int],
        pairwise: np.ndarray,
        caps: np.ndarray,
        dist: np.ndarray,
        pred: np.ndarray,
    ) -> _ClusterSolution:
        """Exact matching of a multi-defect cluster (search or blossom).

        Pair weights fold the grown direct distance against the analytic
        through-boundary route, ``W[i, j] = min(d(i, j), r_i + r_j)``,
        with the winning path's parity (the direct path wins exact ties,
        keeping the choice deterministic); diagonals carry the boundary
        radii/parities, exactly the Global Weight Table convention the
        matching kernels expect.
        """
        k = len(member_positions)
        active = [int(d) for d in members]
        pos = np.asarray(member_positions)
        sub_d = pairwise[np.ix_(pos, pos)]
        sub_cap = caps[np.ix_(pos, pos)]
        # min() folds both cases at once: an unreachable (or over-budget)
        # direct route leaves the through-boundary cap, and an exact tie
        # keeps the cap's value while the parity check below still hands
        # the tie to the direct path.
        base_w = np.minimum(sub_d, sub_cap)
        direct_wins = sub_d <= sub_cap + self.tolerance
        # The a -> b and b -> a growths traverse the same route in
        # opposite orders, which can round differently; mirroring the
        # upper triangle keeps the matrix exactly symmetric with the
        # smaller position as the defining source.
        upper = np.triu_indices(k, 1)
        lower = (upper[1], upper[0])
        base_w[lower] = base_w[upper]
        direct_wins[lower] = direct_wins[upper]
        radii = self._radii[members]
        np.fill_diagonal(base_w, radii)
        if k % 2 == 0:
            weights = base_w
            has_virtual = False
        else:
            m = k + 1
            weights = np.zeros((m, m), dtype=np.float64)
            weights[:k, :k] = base_w
            weights[:k, m - 1] = radii
            weights[m - 1, :k] = radii
            has_virtual = True
        if weights.shape[0] <= MAX_SEARCH_NODES:
            local_pairs, weight, _ = vectorized_search(weights)
        elif weights.shape[0] <= _FLAT_SEARCH_LIMIT:
            local_pairs, weight = _flat_search(weights)
        else:
            self.stats.blossom_clusters += 1
            local_pairs = min_weight_perfect_matching(weights)
            weight = float(sum(weights[a, b] for a, b in local_pairs))
        # Parities are only needed for the ~k/2 chosen pairs, so they are
        # derived lazily instead of materializing the full (k, k) matrix.
        bparity = self._bparity
        prediction = False
        for a, b in local_pairs:
            if has_virtual and (a == k or b == k):
                prediction ^= bool(bparity[active[a if b == k else b]])
                continue
            lo, hi = (a, b) if a < b else (b, a)
            if bool(direct_wins[lo, hi]):
                prediction ^= self._path_parity(
                    pred[pos[lo]], active[lo], active[hi]
                )
            else:
                prediction ^= bool(bparity[active[lo]]) ^ bool(
                    bparity[active[hi]]
                )
        return _ClusterSolution(
            pairs=matching_to_detectors(local_pairs, active, has_virtual),
            weight=float(weight),
            prediction=prediction,
        )

    def _singleton(self, d: int) -> _ClusterSolution:
        """Closed form: a lone defect matches the boundary."""
        return _ClusterSolution(
            pairs=[(d, BOUNDARY)],
            weight=float(self._radii[d]),
            prediction=bool(self._bparity[d]),
        )
