"""Rotated surface code layout.

The rotated surface code of distance ``d`` (paper section 2.1, Table 1)
encodes one logical qubit in ``d^2`` data qubits and ``d^2 - 1`` parity
(ancilla) qubits, half measuring X stabilizers and half measuring Z
stabilizers.

Geometry
--------

Data qubits sit at odd-odd coordinates ``(2r+1, 2c+1)`` for ``r, c`` in
``0..d-1``; plaquette (parity) qubits sit at even-even coordinates
``(2i, 2j)`` for ``i, j`` in ``0..d``.  A plaquette's data support is the
subset of its four diagonal neighbours that lie on the lattice.  Plaquette
types alternate in a checkerboard: ``(i + j)`` even gives an X stabilizer,
odd gives a Z stabilizer.  Weight-2 boundary plaquettes are kept only where
the type matches the boundary (X on the top/bottom rows, Z on the left/right
columns), which yields exactly ``(d^2 - 1)/2`` stabilizers of each type.

Logical operators are straight chains of single-qubit Paulis:
``Z_L`` acts on the first row of data qubits and ``X_L`` on the first
column; they intersect in exactly one qubit.

CNOT schedules follow the standard distance-preserving pattern (as used by
Stim's generated circuits): X plaquettes interact with their data in the
order NE, SE, NW, SW while Z plaquettes use NE, NW, SE, SW, which avoids
hook errors that would halve the effective distance and guarantees that the
four interaction layers touch each qubit at most once.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Stabilizer", "RotatedSurfaceCode"]

#: (dx, dy) interaction order for X-type plaquettes (ancilla is control).
#: The two final offsets share a y coordinate, so a mid-extraction X error on
#: the ancilla "hooks" onto a horizontal data pair -- perpendicular to the
#: vertical logical X, preserving the code distance.
X_CX_ORDER: tuple[tuple[int, int], ...] = ((1, 1), (-1, 1), (1, -1), (-1, -1))

#: (dx, dy) interaction order for Z-type plaquettes (data is control).
#: The two final offsets share an x coordinate, so a mid-extraction Z error
#: on the ancilla hooks onto a vertical data pair -- perpendicular to the
#: horizontal logical Z.
Z_CX_ORDER: tuple[tuple[int, int], ...] = ((1, 1), (1, -1), (-1, 1), (-1, -1))


@dataclass(frozen=True)
class Stabilizer:
    """One stabilizer generator of the code.

    Attributes:
        kind: ``"X"`` or ``"Z"``.
        ancilla: Qubit index of the parity qubit measuring this stabilizer.
        data: Data-qubit indices in the stabilizer's support (2 or 4).
        schedule: Data-qubit index (or None) interacted with in each of the
            four CNOT layers, aligned with the plaquette's CX order.
    """

    kind: str
    ancilla: int
    data: tuple[int, ...]
    schedule: tuple[int | None, int | None, int | None, int | None]


class RotatedSurfaceCode:
    """A distance-``d`` rotated surface code.

    Args:
        distance: Odd code distance >= 3.

    Attributes:
        distance: The code distance.
        data_qubits: Data-qubit indices, row-major over the ``d x d`` grid.
        x_ancillas: Parity-qubit indices of X stabilizers.
        z_ancillas: Parity-qubit indices of Z stabilizers.
        coords: Map from qubit index to its ``(x, y)`` lattice coordinate.
        stabilizers: All stabilizer generators (X first, then Z).
        logical_z: Data-qubit indices supporting the logical Z operator.
        logical_x: Data-qubit indices supporting the logical X operator.
    """

    def __init__(self, distance: int) -> None:
        if distance < 3 or distance % 2 == 0:
            raise ValueError("distance must be an odd integer >= 3")
        self.distance = distance
        d = distance
        self.coords: dict[int, tuple[int, int]] = {}
        self._index_of: dict[tuple[int, int], int] = {}

        # Data qubits: (2r+1, 2c+1), indexed row-major (by y, then x).
        self.data_qubits: list[int] = []
        for c in range(d):  # y coordinate (rows)
            for r in range(d):  # x coordinate (columns)
                self._add_qubit((2 * r + 1, 2 * c + 1))
                self.data_qubits.append(len(self.coords) - 1)

        # Plaquette (parity) qubits.
        self.x_ancillas: list[int] = []
        self.z_ancillas: list[int] = []
        self.stabilizers: list[Stabilizer] = []
        x_stabs: list[Stabilizer] = []
        z_stabs: list[Stabilizer] = []
        for i in range(d + 1):
            for j in range(d + 1):
                center = (2 * i, 2 * j)
                kind = "X" if (i + j) % 2 == 0 else "Z"
                support = self._plaquette_support(center)
                if len(support) < 2:
                    continue
                if (i == 0 or i == d) and kind != "Z":
                    continue  # left/right boundaries host only Z plaquettes
                if (j == 0 or j == d) and kind != "X":
                    continue  # top/bottom boundaries host only X plaquettes
                ancilla = self._add_qubit(center)
                order = X_CX_ORDER if kind == "X" else Z_CX_ORDER
                schedule = tuple(
                    self._index_of.get((center[0] + dx, center[1] + dy))
                    for dx, dy in order
                )
                stab = Stabilizer(
                    kind=kind,
                    ancilla=ancilla,
                    data=tuple(sorted(support)),
                    schedule=schedule,  # type: ignore[arg-type]
                )
                if kind == "X":
                    self.x_ancillas.append(ancilla)
                    x_stabs.append(stab)
                else:
                    self.z_ancillas.append(ancilla)
                    z_stabs.append(stab)
        self.stabilizers = x_stabs + z_stabs

        # Logical operators: Z_L along the first row of data qubits (y = 1),
        # X_L along the first column (x = 1).
        self.logical_z: tuple[int, ...] = tuple(
            q for q in self.data_qubits if self.coords[q][1] == 1
        )
        self.logical_x: tuple[int, ...] = tuple(
            q for q in self.data_qubits if self.coords[q][0] == 1
        )

    # ------------------------------------------------------------------
    # Derived properties (paper Table 1)
    # ------------------------------------------------------------------

    @property
    def num_data_qubits(self) -> int:
        """``d^2`` data qubits."""
        return len(self.data_qubits)

    @property
    def num_parity_qubits(self) -> int:
        """``d^2 - 1`` parity qubits (X and Z combined)."""
        return len(self.x_ancillas) + len(self.z_ancillas)

    @property
    def num_qubits(self) -> int:
        """``2 d^2 - 1`` physical qubits in total."""
        return len(self.coords)

    def syndrome_vector_length(self) -> int:
        """Detector count of one basis of a ``d``-round memory experiment.

        Equals ``(d + 1) * (d^2 - 1) / 2``: ``d`` measured rounds plus one
        final layer reconstructed from the data-qubit measurement (paper
        Table 1 reports this as the per-basis syndrome vector length).
        """
        d = self.distance
        return (d + 1) * (d * d - 1) // 2

    def x_stabilizers(self) -> list[Stabilizer]:
        """The X-type stabilizer generators."""
        return [s for s in self.stabilizers if s.kind == "X"]

    def z_stabilizers(self) -> list[Stabilizer]:
        """The Z-type stabilizer generators."""
        return [s for s in self.stabilizers if s.kind == "Z"]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _add_qubit(self, coord: tuple[int, int]) -> int:
        index = len(self.coords)
        self.coords[index] = coord
        self._index_of[coord] = index
        return index

    def _plaquette_support(self, center: tuple[int, int]) -> list[int]:
        """Data-qubit indices on the four diagonals of a plaquette center."""
        x, y = center
        support = []
        for dx in (-1, 1):
            for dy in (-1, 1):
                q = self._index_of.get((x + dx, y + dy))
                if q is not None:
                    support.append(q)
        return support
