"""Quantum error-correcting code layouts (rotated surface, repetition)."""

from .repetition import RepetitionCode, build_repetition_memory_circuit
from .rotated import RotatedSurfaceCode, Stabilizer

__all__ = [
    "RepetitionCode",
    "RotatedSurfaceCode",
    "Stabilizer",
    "build_repetition_memory_circuit",
]
