"""Repetition codes: the minimal matching-decodable code family.

Before the distance-5 surface code, the hardware demonstrations the paper
builds its motivation on (Google 2021, "Exponential suppression of bit or
phase flip errors") used *repetition codes*: ``d`` data qubits in a line
with ``d - 1`` two-qubit parity checks, protecting against bit flips only.

The decoding problem is the same matching problem in one dimension, so
every decoder in this repository works on it unchanged -- which makes the
repetition code both a useful smoke-test substrate (tiny graphs, easily
enumerable by hand) and a second supported code family for users studying
decoder behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..circuits.circuit import Circuit
from ..circuits.noise import NoiseParams
from .rotated import Stabilizer

if TYPE_CHECKING:  # deferred: circuits.memory imports codes.rotated
    from ..circuits.memory import MemoryExperiment

__all__ = ["RepetitionCode", "build_repetition_memory_circuit"]


class RepetitionCode:
    """A distance-``d`` bit-flip repetition code on a line.

    Data qubits sit at even indices ``0, 2, .., 2(d-1)`` of the line and
    parity qubits between them at odd indices; parity qubit ``2i + 1``
    measures ``Z_i Z_{i+1}``.

    Args:
        distance: Number of data qubits (>= 2; odd not required, but odd
            distances match the surface-code convention).

    Attributes:
        distance: The code distance.
        data_qubits: Data-qubit indices (even line positions).
        z_ancillas: Parity-qubit indices (odd line positions).
        coords: Map from qubit index to its ``(x, 0)`` line coordinate.
        stabilizers: The ``d - 1`` weight-2 Z stabilizers.
        logical_z: The logical Z support (a single data qubit).
        logical_x: The logical X support (every data qubit).
    """

    def __init__(self, distance: int) -> None:
        if distance < 2:
            raise ValueError("distance must be >= 2")
        self.distance = distance
        self.data_qubits = [2 * i for i in range(distance)]
        self.z_ancillas = [2 * i + 1 for i in range(distance - 1)]
        self.coords = {q: (q, 0) for q in self.data_qubits + self.z_ancillas}
        self.stabilizers = [
            Stabilizer(
                kind="Z",
                ancilla=2 * i + 1,
                data=(2 * i, 2 * i + 2),
                schedule=(2 * i, 2 * i + 2, None, None),
            )
            for i in range(distance - 1)
        ]
        # A single Z anywhere acts as the logical Z of the bit-flip code;
        # X on every data qubit is the logical X.
        self.logical_z = (0,)
        self.logical_x = tuple(self.data_qubits)

    @property
    def num_data_qubits(self) -> int:
        """``d`` data qubits."""
        return len(self.data_qubits)

    @property
    def num_parity_qubits(self) -> int:
        """``d - 1`` parity qubits."""
        return len(self.z_ancillas)

    def syndrome_vector_length(self, rounds: int | None = None) -> int:
        """Detector count of a memory experiment with the given rounds."""
        if rounds is None:
            rounds = self.distance
        return (rounds + 1) * (self.distance - 1)


def build_repetition_memory_circuit(
    distance: int,
    noise: NoiseParams,
    *,
    rounds: int | None = None,
) -> "MemoryExperiment":
    """Build a noisy bit-flip memory experiment on a repetition code.

    Prepares ``|0...0>``, runs ``rounds`` rounds of ``Z Z`` parity checks
    under the paper's noise model (data depolarizing each round, two-qubit
    depolarizing after each CX, measurement and reset flips), then measures
    every data qubit.  The logical observable is the value of data qubit 0.

    Args:
        distance: Number of data qubits.
        noise: Circuit-level noise parameters.
        rounds: Measured rounds; defaults to ``distance``.

    Returns:
        A :class:`MemoryExperiment` (its ``code`` field holds the
        :class:`RepetitionCode`).
    """
    from ..circuits.memory import MemoryExperiment

    code = RepetitionCode(distance)
    if rounds is None:
        rounds = distance
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    circuit = Circuit()
    data = list(code.data_qubits)
    ancillas = list(code.z_ancillas)
    detector_coords: list[tuple[int, int, int]] = []

    circuit.add("R", data + ancillas)
    anc_pos = {q: i for i, q in enumerate(ancillas)}
    data_pos = {q: i for i, q in enumerate(data)}

    def anc_record(round_index: int, ancilla: int) -> int:
        return round_index * len(ancillas) + anc_pos[ancilla]

    def data_record(qubit: int) -> int:
        return rounds * len(ancillas) + data_pos[qubit]

    for r in range(rounds):
        circuit.add("TICK")
        if noise.data_depolarization > 0:
            circuit.add("DEPOLARIZE1", data, noise.data_depolarization)
        for layer in range(2):
            pairs: list[int] = []
            for stab in code.stabilizers:
                partner = stab.schedule[layer]
                if partner is not None:
                    pairs.extend((partner, stab.ancilla))
            circuit.add("CX", pairs)
            if noise.gate2_depolarization > 0:
                circuit.add("DEPOLARIZE2", pairs, noise.gate2_depolarization)
        circuit.add("MR", ancillas, noise.measurement_flip)
        if noise.reset_flip > 0:
            circuit.add("X_ERROR", ancillas, noise.reset_flip)
        for stab in code.stabilizers:
            if r == 0:
                records = (anc_record(0, stab.ancilla),)
            else:
                records = (
                    anc_record(r, stab.ancilla),
                    anc_record(r - 1, stab.ancilla),
                )
            circuit.add("DETECTOR", records)
            detector_coords.append((code.coords[stab.ancilla][0], 0, r))

    circuit.add("TICK")
    circuit.add("M", data, noise.measurement_flip)
    for stab in code.stabilizers:
        records = tuple(data_record(q) for q in stab.data) + (
            anc_record(rounds - 1, stab.ancilla),
        )
        circuit.add("DETECTOR", records)
        detector_coords.append((code.coords[stab.ancilla][0], 0, rounds))
    circuit.add("OBSERVABLE_INCLUDE", (data_record(0),), 0.0)

    return MemoryExperiment(
        circuit=circuit,
        code=code,  # type: ignore[arg-type]
        noise=noise,
        basis="z",
        rounds=rounds,
        detector_coords=detector_coords,
    )
