"""Declarative decoder registry: one dispatch path for every frontend.

The CLI's ``make_decoder`` if/elif ladder, the per-benchmark constructor
copies and the example scripts all used to hand-build decoders, each with
its own (slightly diverging) defaults.  This module replaces them with a
single registry: decoders declare themselves once via
:func:`register_decoder` with a factory over a built
:class:`~repro.experiments.setup.DecodingSetup`, and the CLI, sweeps,
``compare_decoders``, benchmarks and examples all resolve names through
:func:`make_decoder`.

Factories receive only the options their signature declares:
:func:`make_decoder` inspects the factory and silently drops the *shared
knobs* (``weight_threshold``, ``budget_ns``) that frontends pass to every
decoder uniformly, while any other unknown option raises.  Factories pull
pre-built stages (cached neighbor structures in particular) off the
setup, so constructing a decoder never recompiles what the pipeline
already holds.

Third-party decoders join the same dispatch by registering themselves::

    from repro.decoders.registry import register_decoder

    def _my_decoder(setup, *, my_knob=1.0):
        return MyDecoder(setup.ideal_gwt, knob=my_knob)

    register_decoder(
        "my-decoder", _my_decoder,
        capabilities=("software",),
        description="my exact decoder",
    )

after which ``repro ler --decoder my-decoder`` (add the ``"cli"``
capability), sweeps by name and ``compare_decoders`` all work unchanged.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "DecoderSpec",
    "decoder_names",
    "get_decoder_spec",
    "make_decoder",
    "register_decoder",
    "unregister_decoder",
]

#: Options every frontend forwards uniformly; a factory that does not
#: declare them simply does not receive them (instead of raising).
SHARED_KNOBS = frozenset({"weight_threshold", "budget_ns"})


@dataclass(frozen=True)
class DecoderSpec:
    """One registered decoder.

    Attributes:
        name: Registry (and CLI) name.
        factory: Builds the decoder from a ``DecodingSetup`` plus keyword
            options.
        capabilities: Free-form tags (``"cli"`` exposes the decoder as a
            ``--decoder`` choice; others: ``"exact"``, ``"realtime"``,
            ``"baseline"``, ``"streaming"``...).
        description: One-line human-readable summary.
    """

    name: str
    factory: Callable[..., Any]
    capabilities: tuple[str, ...] = field(default_factory=tuple)
    description: str = ""


_REGISTRY: dict[str, DecoderSpec] = {}


def register_decoder(
    name: str,
    factory: Callable[..., Any],
    *,
    capabilities: tuple[str, ...] | list[str] = (),
    description: str = "",
    replace: bool = False,
) -> DecoderSpec:
    """Register a decoder factory under a name.

    Args:
        name: Registry name (the CLI ``--decoder`` spelling when the
            ``"cli"`` capability is present).
        factory: ``factory(setup, **options) -> Decoder``.  Only options
            named in the factory's signature are forwarded.
        capabilities: Capability tags.
        description: One-line summary (shown by ``repro info``).
        replace: Allow overwriting an existing registration.

    Returns:
        The stored :class:`DecoderSpec`.

    Raises:
        ValueError: When ``name`` is already registered and ``replace``
            is False.
    """
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"decoder {name!r} is already registered; pass replace=True "
            "to overwrite"
        )
    spec = DecoderSpec(
        name=name,
        factory=factory,
        capabilities=tuple(capabilities),
        description=description,
    )
    _REGISTRY[name] = spec
    return spec


def unregister_decoder(name: str) -> None:
    """Remove a registration (primarily for tests of third-party flows)."""
    _REGISTRY.pop(name, None)


def decoder_names(capability: str | None = None) -> tuple[str, ...]:
    """Registered names, in registration order.

    Args:
        capability: When given, only decoders carrying this capability
            tag (e.g. ``"cli"`` for the ``--decoder`` choices).
    """
    return tuple(
        name
        for name, spec in _REGISTRY.items()
        if capability is None or capability in spec.capabilities
    )


def get_decoder_spec(name: str) -> DecoderSpec:
    """Look up one registration.

    Raises:
        ValueError: For unknown names (listing the registered ones).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown decoder {name!r}; pick from {decoder_names()}"
        ) from None


def make_decoder(name: str, setup, **options: Any) -> Any:
    """Instantiate a registered decoder against a built setup.

    Options are filtered against the factory's signature: shared knobs
    the factory does not declare are dropped, anything else unknown
    raises.

    Args:
        name: A registered decoder name.
        setup: The :class:`~repro.experiments.setup.DecodingSetup` (or
            pipeline facade) to attach to.
        **options: Decoder options (e.g. ``weight_threshold=5.5``).

    Returns:
        A ready-to-use decoder.

    Raises:
        ValueError: For unknown decoder names.
        TypeError: For options the factory does not accept (beyond the
            droppable shared knobs).
    """
    spec = get_decoder_spec(name)
    parameters = inspect.signature(spec.factory).parameters
    accepts_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    if not accepts_kwargs:
        accepted = {
            p.name
            for p in parameters.values()
            if p.kind
            in (
                inspect.Parameter.KEYWORD_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            )
        }
        unknown = set(options) - accepted - SHARED_KNOBS
        if unknown:
            raise TypeError(
                f"decoder {name!r} does not accept option(s) "
                f"{sorted(unknown)}; its factory takes {sorted(accepted - {'setup'})}"
            )
        options = {k: v for k, v in options.items() if k in accepted}
    return spec.factory(setup, **options)


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------


def _structure_for(setup, gwt) -> Any:
    """The setup's cached neighbor structure matching ``gwt``, if any."""
    if gwt is getattr(setup, "ideal_gwt", None):
        return setup.neighbor_structure
    if gwt is getattr(setup, "gwt", None):
        return setup.quantized_neighbor_structure
    return None


def _make_mwpm(
    setup,
    *,
    quantized: bool = False,
    measure_time: bool = False,
    use_sparse: bool = True,
    sparse_cache_size: int = 65536,
    gwt=None,
):
    from .mwpm import MWPMDecoder

    if not getattr(getattr(setup, "config", None), "dense_weights", True):
        # No all-pairs tables exist for this config: decode purely on the
        # decoding graph (the d >= 15 configuration).
        if quantized or gwt is not None:
            raise ValueError(
                "quantized/explicit weight tables need dense weights; this "
                "pipeline was configured with dense_weights=False (graph-"
                "only MWPM)"
            )
        return MWPMDecoder(
            None,
            graph=setup.sparse_graph,
            measure_time=measure_time,
            use_sparse=use_sparse,
            sparse_cache_size=sparse_cache_size,
        )
    table = gwt if gwt is not None else (setup.gwt if quantized else setup.ideal_gwt)
    structure = _structure_for(setup, table) if use_sparse else None
    # The graph-local engine is exact only against the ideal (unquantized)
    # all-pairs table, whose entries it re-derives during growth; it takes
    # the table engine's escape routes (unsafe pairs, oversized clusters).
    graph = (
        setup.graph
        if use_sparse and table is getattr(setup, "ideal_gwt", None)
        else None
    )
    return MWPMDecoder(
        table,
        graph=graph,
        measure_time=measure_time,
        use_sparse=use_sparse,
        sparse_cache_size=sparse_cache_size,
        structure=structure,
    )


def _make_astrea(
    setup,
    *,
    quantized: bool = True,
    timing=None,
    max_hamming_weight: int = 10,
    use_vectorized: bool = True,
    gwt=None,
):
    from .astrea import AstreaDecoder

    table = gwt if gwt is not None else (setup.gwt if quantized else setup.ideal_gwt)
    return AstreaDecoder(
        table,
        timing=timing,
        max_hamming_weight=max_hamming_weight,
        use_vectorized=use_vectorized,
    )


def _make_astrea_g(
    setup,
    *,
    quantized: bool = True,
    weight_threshold: float = 7.0,
    budget_ns: float | None = None,
    timing=None,
    fetch_width: int = 2,
    queue_capacity: int = 8,
    exhaustive_cutoff: int = 10,
    min_candidates: int = 2,
    use_vectorized: bool = True,
    gwt=None,
):
    from ..hw.latency import FpgaTiming
    from .astrea_g import AstreaGDecoder

    if timing is None and budget_ns is not None:
        timing = FpgaTiming(realtime_budget_ns=float(budget_ns))
    table = gwt if gwt is not None else (setup.gwt if quantized else setup.ideal_gwt)
    return AstreaGDecoder(
        table,
        weight_threshold=weight_threshold,
        fetch_width=fetch_width,
        queue_capacity=queue_capacity,
        timing=timing,
        exhaustive_cutoff=exhaustive_cutoff,
        min_candidates=min_candidates,
        use_vectorized=use_vectorized,
    )


def _make_union_find(setup, *, growth_resolution: float = 2.0):
    from .union_find import UnionFindDecoder

    return UnionFindDecoder(setup.graph, growth_resolution=growth_resolution)


def _make_clique(setup, *, quantized: bool = False, gwt=None):
    from .clique import CliqueDecoder

    table = gwt if gwt is not None else (setup.gwt if quantized else setup.ideal_gwt)
    return CliqueDecoder(
        setup.graph, table, structure=_structure_for(setup, table)
    )


def _make_cascade(
    setup,
    *,
    quantized: bool = False,
    max_local_weight: int | None = None,
    routing_table=None,
    gwt=None,
):
    from .cascade import CascadeDecoder

    if not getattr(getattr(setup, "config", None), "dense_weights", True):
        # No all-pairs tables exist: the front tier degenerates to the
        # trivial (empty-syndrome) tier over graph-only MWPM.
        if quantized or gwt is not None:
            raise ValueError(
                "quantized/explicit weight tables need dense weights; this "
                "pipeline was configured with dense_weights=False (graph-"
                "only cascade)"
            )
        return CascadeDecoder(None, graph=setup.sparse_graph)
    table = gwt if gwt is not None else (setup.gwt if quantized else setup.ideal_gwt)
    structure = _structure_for(setup, table)
    # Arm the terminal tier's graph-local engine exactly as _make_mwpm
    # does: only against the ideal table, whose entries it re-derives.
    graph = setup.graph if table is getattr(setup, "ideal_gwt", None) else None
    return CascadeDecoder(
        table,
        graph=graph,
        structure=structure,
        max_local_weight=max_local_weight,
        routing_table=routing_table,
    )


def _make_lilliput(setup, *, quantized: bool = False, gwt=None):
    from .lilliput import LilliputDecoder

    table = gwt if gwt is not None else (setup.gwt if quantized else setup.ideal_gwt)
    return LilliputDecoder(
        table,
        setup.experiment.num_detectors,
        structure=_structure_for(setup, table),
    )


def _make_single_round(setup, *, quantized: bool = False, gwt=None):
    from .single_round import SingleRoundDecoder

    table = gwt if gwt is not None else (setup.gwt if quantized else setup.ideal_gwt)
    return SingleRoundDecoder(table, setup.experiment)


def _make_sliding_window(
    setup,
    *,
    quantized: bool = False,
    window: int = 6,
    commit: int = 2,
    gwt=None,
):
    from .windowed import SlidingWindowDecoder

    table = gwt if gwt is not None else (setup.gwt if quantized else setup.ideal_gwt)
    return SlidingWindowDecoder(
        table, setup.graph, setup.experiment, window=window, commit=commit
    )


register_decoder(
    "mwpm",
    _make_mwpm,
    capabilities=("cli", "exact", "software"),
    description="exact software MWPM (sparse engine, ideal weights)",
)
register_decoder(
    "astrea",
    _make_astrea,
    capabilities=("cli", "exact", "realtime"),
    description="Astrea exhaustive-search accelerator (quantized GWT)",
)
register_decoder(
    "astrea-g",
    _make_astrea_g,
    capabilities=("cli", "realtime"),
    description="Astrea-G greedy-predecoded accelerator (quantized GWT)",
)
register_decoder(
    "union-find",
    _make_union_find,
    capabilities=("cli", "baseline", "realtime", "service-tier"),
    description="Union-Find (AFS-style) baseline on the primitive graph",
)
register_decoder(
    "clique",
    _make_clique,
    capabilities=("cli", "baseline", "service-tier"),
    description="Clique local pre-decoder with software-MWPM fallback",
)
register_decoder(
    "cascade",
    _make_cascade,
    capabilities=("cli", "exact", "software", "cascade", "service-tier"),
    description="closed-form front tier over exact MWPM (SLO-aware routing)",
)
register_decoder(
    "lilliput",
    _make_lilliput,
    capabilities=("cli", "baseline"),
    description="LILLIPUT lookup table programmed by MWPM (small codes)",
)
register_decoder(
    "single-round",
    _make_single_round,
    capabilities=("ablation",),
    description="per-round decoder blind to time correlations (ablation)",
)
register_decoder(
    "sliding-window",
    _make_sliding_window,
    capabilities=("streaming",),
    description="sliding-window streaming decoder over the GWT",
)
