"""Validity checking for decode results.

A decoder can be wrong in two very different ways: it can return a
*suboptimal but valid* correction (an accuracy problem) or an *invalid*
one -- a matching that does not even explain the observed syndrome (a
correctness bug).  This module checks the latter class mechanically and is
used by the test suite, the examples, and anyone extending the decoder
zoo:

* every active syndrome bit must be matched exactly once (to another
  active bit or to the boundary);
* no inactive bit may appear in the matching;
* the reported weight must equal the sum of the matched pairs' weights
  under the decoder's weight table (optional, table-based decoders only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs.weights import GlobalWeightTable
from .base import BOUNDARY, DecodeResult

__all__ = ["VerificationReport", "verify_decode_result"]


@dataclass
class VerificationReport:
    """Outcome of validating one decode result.

    Attributes:
        valid: True when no problems were found.
        problems: Human-readable description of each violation.
    """

    problems: list[str] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """Whether the result passed every check."""
        return not self.problems

    def __bool__(self) -> bool:
        return self.valid


def verify_decode_result(
    result: DecodeResult,
    active: list[int],
    *,
    gwt: GlobalWeightTable | None = None,
    weight_tolerance: float = 1e-6,
    semantics: str = "pairing",
) -> VerificationReport:
    """Check that a decode result is a valid correction for a syndrome.

    Args:
        result: The decode result to validate.
        active: The non-zero syndrome bits that were decoded.
        gwt: When given, also check the reported weight and prediction
            against the table (only meaningful for ``pairing`` semantics,
            where pairs refer to GWT shortest paths).
        weight_tolerance: Absolute tolerance on the weight check.
        semantics: ``"pairing"`` -- each active bit appears in exactly one
            pair (MWPM/Astrea-style decoders); ``"edges"`` -- the matching
            is a set of primitive graph edges whose endpoint parity must
            annihilate the defect set (Union-Find-style decoders, whose
            corrections may traverse inactive detectors).

    Returns:
        A :class:`VerificationReport` listing any violations.
    """
    if semantics not in ("pairing", "edges"):
        raise ValueError(f"unknown semantics {semantics!r}")
    report = VerificationReport()
    if not result.decoded:
        if result.matching:
            report.problems.append("declined result carries a matching")
        return report
    expected = sorted(set(active))
    if len(expected) != len(active):
        report.problems.append("duplicate active syndrome bits")
    for a, b in result.matching:
        if a == BOUNDARY:
            report.problems.append(f"pair ({a}, {b}) lists the boundary first")
        if a == b:
            report.problems.append(f"self-pair on detector {a}")
    if semantics == "edges":
        parity: dict[int, int] = {}
        for a, b in result.matching:
            for vertex in (a, b):
                if vertex != BOUNDARY:
                    parity[vertex] = parity.get(vertex, 0) ^ 1
        flipped = sorted(v for v, bit in parity.items() if bit)
        if flipped != expected:
            report.problems.append(
                f"edge correction flips {flipped}, expected {expected}"
            )
        return report
    seen: list[int] = []
    for a, b in result.matching:
        if a == BOUNDARY:
            continue
        seen.append(a)
        if b != BOUNDARY:
            seen.append(b)
    if sorted(seen) != expected:
        missing = set(expected) - set(seen)
        extra = set(seen) - set(expected)
        repeated = {x for x in seen if seen.count(x) > 1}
        if missing:
            report.problems.append(f"unmatched active bits: {sorted(missing)}")
        if extra:
            report.problems.append(f"matched inactive bits: {sorted(extra)}")
        if repeated:
            report.problems.append(f"bits matched twice: {sorted(repeated)}")
    if gwt is not None and report.valid:
        weight = 0.0
        parity = False
        for a, b in result.matching:
            if b == BOUNDARY:
                weight += gwt.weight(a, a)
                parity ^= gwt.parity(a, a)
            else:
                weight += gwt.weight(a, b)
                parity ^= gwt.parity(a, b)
        if abs(weight - result.weight) > weight_tolerance:
            report.problems.append(
                f"reported weight {result.weight} != table weight {weight}"
            )
        if parity != result.prediction:
            report.problems.append(
                f"reported prediction {result.prediction} != table parity {parity}"
            )
    return report
