"""SLO-aware decoder cascade: one routing/escalation subsystem.

The paper's architecture is itself a cascade -- a Clique pre-decoder
handles trivial syndromes, Astrea's search handles the bulk, and exact
software MWPM backstops the rest (sections 2.3.4, 5.6) -- and this repo
used to reproduce that shape three separate times: ``CliqueDecoder``'s
hardwired MWPM fallback, ``MWPMDecoder``'s anomaly-recovery rerun, and
the streaming service's backpressure degradation ladder.  This module is
the one place that logic now lives:

* :class:`Cascade` routes each row of a syndrome batch through an
  ordered list of :class:`CascadeTier`\\ s by cheap features (Hamming
  weight, per-defect cluster locality from
  :class:`~repro.graphs.decoding_graph.NeighborStructure`), escalating
  only the rows a tier declines -- or gets wrong per an optional
  verifier hook -- and counting routed/solved/escalated plus p50/p99
  solve latency per tier in a shared :class:`CascadeStats`.
* :class:`CascadeDecoder` is the registry-native decoder built on it:
  a closed-form front tier that is *bit-identical* to the sparse exact
  engine on the rows it accepts, backstopped by full
  :class:`~repro.decoders.mwpm.MWPMDecoder`.
* :class:`EscalationPolicy` is the counting/warning half of MWPM's
  sparse-to-dense anomaly recovery.
* :class:`TierLadder` is the shed/promote hysteresis the streaming
  service runs its degradation ladder on.
* :func:`cascade_tune` fits the routing threshold from a sampled
  syndrome census and emits a picklable :class:`RoutingTable` the
  pipeline's artifact store caches (``python -m repro cascade-tune``).

Exactness of the front tier: the sparse engine decomposes a syndrome
into close-connected components and solves singletons and mutual close
pairs by closed forms.  A row in which every active defect has at most
one active *close* neighbor (and no active *unsafe* pair) decomposes
entirely into such components, so the closed forms reproduce the exact
MWPM answer -- prediction, matching and weight.  Everything else
escalates whole to the terminal tier, which is the reference, so the
cascade's final answers are bit-identical to always running the
terminal tier.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..graphs.decoding_graph import BOUNDARY, NeighborStructure
from ..matching.sparse import default_tolerance
from ..stats import LatencyRecorder
from .base import DecodeResult, Decoder, DecoderFallbackWarning, validate_syndrome_batch

__all__ = [
    "Cascade",
    "CascadeDecoder",
    "CascadeStats",
    "CascadeTier",
    "ClosedFormTier",
    "DecoderTier",
    "EscalationPolicy",
    "PredecodeTier",
    "RoutingTable",
    "TierLadder",
    "TierOutcome",
    "TierStats",
    "TrivialTier",
    "cascade_tune",
    "load_or_tune_routing_table",
]

#: Latency samples a tier must accumulate before its latency SLO can
#: decline rows (p99 over fewer samples is noise, not a signal).
SLO_MIN_SAMPLES = 32


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------


def _tier_latency() -> LatencyRecorder:
    return LatencyRecorder(max_samples=4096)


@dataclass
class TierStats:
    """Counters of one cascade tier.

    For a non-terminal tier ``routed == declined + solved + escalated``
    once a batch completes: every row handed to the tier was either
    declined by routing (not attempted), solved, or attempted and
    escalated.

    Attributes:
        routed: Rows handed to this tier.
        solved: Rows this tier finalized.
        declined: Rows the tier's routing (feature gate or latency SLO)
            passed down without attempting.
        escalated: Rows the tier attempted but passed down (including
            verifier rejections).
        verifier_rejects: Escalations caused by the verifier hook
            rejecting a produced result.
        latency: Amortized per-row attempt wall-clock (seconds).
    """

    routed: int = 0
    solved: int = 0
    declined: int = 0
    escalated: int = 0
    verifier_rejects: int = 0
    latency: LatencyRecorder = field(default_factory=_tier_latency)

    def as_dict(self) -> dict:
        """Counters as a JSON-ready dict."""
        return {
            "routed": self.routed,
            "solved": self.solved,
            "declined": self.declined,
            "escalated": self.escalated,
            "verifier_rejects": self.verifier_rejects,
            "latency": self.latency.as_dict(),
        }


class CascadeStats:
    """Shared per-tier counters of one cascade (insertion-ordered)."""

    def __init__(self) -> None:
        self.tiers: dict[str, TierStats] = {}

    def tier(self, name: str) -> TierStats:
        """The (auto-created) stats bucket of one tier."""
        return self.tiers.setdefault(name, TierStats())

    @property
    def escalation_rate(self) -> float:
        """Fraction of first-tier rows that reached the last tier."""
        names = list(self.tiers)
        if not names or not self.tiers[names[0]].routed:
            return 0.0
        return self.tiers[names[-1]].routed / self.tiers[names[0]].routed

    def as_dict(self) -> dict:
        """Per-tier counters as a JSON-ready dict."""
        return {name: stats.as_dict() for name, stats in self.tiers.items()}


# ----------------------------------------------------------------------
# Tiers
# ----------------------------------------------------------------------


@dataclass
class TierOutcome:
    """What one tier did with the rows it attempted.

    Attributes:
        results: One entry per attempted row; ``None`` escalates the row
            to the next tier.
        residual: Optional replacement syndrome rows (aligned with the
            attempted batch) for escalated rows -- a pre-decoder that
            consumed some defects hands down only the leftovers.
        partial: Optional per-row ``(prediction, matching)`` local
            contributions of escalated rows, merged (XOR / concatenate)
            into whatever tier finally solves the row.
    """

    results: list[DecodeResult | None]
    residual: np.ndarray | None = None
    partial: list[tuple[bool, list[tuple[int, int]]] | None] | None = None


class CascadeTier:
    """One rung of a :class:`Cascade`.

    Subclasses override :meth:`attempt` (and usually :meth:`route`).
    Class attributes:

    * ``name``: stats key of the tier.
    * ``escalation_times_out``: escalating a row marks its final result
      ``timed_out`` (the Clique contract: missing the real-time path).
    * ``latency_slo_s``: decline whole batches once the tier's observed
      p99 attempt latency exceeds this bound (None disables).
    * ``verifier``: optional ``verifier(syndrome_row, result) -> bool``
      hook; a False verdict discards the tier's result and escalates
      the row on its *unmodified* syndrome.
    """

    name = "tier"
    escalation_times_out = False
    latency_slo_s: float | None = None
    verifier: Callable[[np.ndarray, DecodeResult], bool] | None = None

    def route(self, syndromes: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Bool mask of the rows this tier should attempt."""
        return np.ones(syndromes.shape[0], dtype=bool)

    def attempt(self, syndromes: np.ndarray) -> TierOutcome:
        """Decode the routed rows; ``None`` results escalate."""
        raise NotImplementedError


class TrivialTier(CascadeTier):
    """Accepts only empty syndromes (the graph-only cascade's front)."""

    name = "trivial"

    def route(self, syndromes: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return weights == 0

    def attempt(self, syndromes: np.ndarray) -> TierOutcome:
        return TierOutcome(
            [
                DecodeResult(prediction=False) if not any_ else None
                for any_ in syndromes.any(axis=1).tolist()
            ]
        )


class ClosedFormTier(CascadeTier):
    """Exact closed-form tier over the sparse engine's decomposition.

    Accepts exactly the rows whose active defects all have close-degree
    <= 1 within the row and which contain no active unsafe pair; those
    rows decompose into singleton and mutual-close-pair components whose
    closed forms *are* the exact MWPM answer (see the module docstring).
    Every other row escalates whole.

    Args:
        structure: Neighbor structure of ``gwt`` (full ``close`` /
            ``unsafe`` matrices; the capped kNN lists are not used).
        gwt: The weight table the closed forms read.
        max_weight: Optional Hamming-weight routing cap (rows heavier
            than this are declined without attempting) -- the knob
            :func:`cascade_tune` fits.
    """

    name = "closed-form"

    def __init__(
        self,
        structure: NeighborStructure,
        gwt,
        *,
        max_weight: int | None = None,
    ) -> None:
        self.max_weight = max_weight
        self._radii = structure.radii
        self._diag_par = np.diag(gwt.parities).copy()
        self._pair_w = gwt.weights
        self._pair_par = gwt.parities
        # Non-finite tables cannot be certified by closed forms; decline
        # everything so the terminal tier reproduces its exact anomaly
        # semantics (raise / dense degrade) unchanged.
        self._finite = bool(np.isfinite(gwt.weights).all())
        n = int(structure.num_detectors)
        self._close = np.ascontiguousarray(structure.close, dtype=bool)
        self._unsafe = np.ascontiguousarray(structure.unsafe, dtype=bool)
        self.syndrome_length = n

    def route(self, syndromes: np.ndarray, weights: np.ndarray) -> np.ndarray:
        if not self._finite:
            return np.zeros(syndromes.shape[0], dtype=bool)
        if self.max_weight is None:
            return np.ones(syndromes.shape[0], dtype=bool)
        return weights <= self.max_weight

    def _classify(self, syndromes: np.ndarray):
        """Per-defect close degree/partner and the per-row accept mask.

        Enumerates the active defect *pairs* of each row instead of
        gathering every close neighbor: the close matrix is nearly dense
        at useful distances (a padded neighbor gather touches O(n) cells
        per defect), while a weight-``w`` row only has ``w * (w - 1) / 2``
        pairs and the census weight is small.  Rows are bucketed by
        Hamming weight so each bucket is one rectangular gather plus two
        tiny matmuls.
        """
        num = syndromes.shape[0]
        rows, cols = np.nonzero(syndromes)
        ok = np.ones(num, dtype=bool)
        if rows.size == 0:
            return rows, cols, None, None, ok
        row_weights = np.bincount(rows, minlength=num)
        deg = np.zeros(rows.size, dtype=np.int64)
        partner = np.zeros(rows.size, dtype=np.int64)
        starts = np.concatenate(([0], np.cumsum(row_weights)))
        for w in np.unique(row_weights[row_weights > 1]):
            bucket = np.nonzero(row_weights == w)[0]
            # Flat positions of each bucket row's defects; cols are
            # ascending within a row, so ``mat`` rows are sorted too.
            pos = starts[bucket][:, None] + np.arange(w)[None, :]
            mat = cols[pos]
            iu, ju = np.triu_indices(int(w), 1)
            close_ab = self._close[mat[:, iu], mat[:, ju]]
            if self._unsafe.any():
                bad = self._unsafe[mat[:, iu], mat[:, ju]].any(axis=1)
            else:
                bad = np.zeros(bucket.size, dtype=bool)
            # Pair->endpoint incidence and "other endpoint position"
            # matrices turn the per-pair close flags into per-defect
            # degrees and (for degree 1) the partner's position.
            npairs = iu.size
            inc = np.zeros((npairs, w), dtype=np.int64)
            other = np.zeros((npairs, w), dtype=np.int64)
            pr = np.arange(npairs)
            inc[pr, iu] = 1
            inc[pr, ju] = 1
            other[pr, iu] = ju
            other[pr, ju] = iu
            close_i = close_ab.astype(np.int64)
            bdeg = close_i @ inc
            # Position sums only mean "the partner" at degree 1; clip so
            # the gather stays in bounds on (rejected) higher degrees.
            bpartner = np.take_along_axis(
                mat, np.minimum(close_i @ other, int(w) - 1), axis=1
            )
            ok[bucket] = ~bad & (bdeg <= 1).all(axis=1)
            deg[pos] = bdeg
            partner[pos] = bpartner
        return rows, cols, deg, partner, ok

    def local_mask(self, syndromes: np.ndarray) -> np.ndarray:
        """Rows this tier would solve exactly (ignoring ``max_weight``)."""
        if not self._finite:
            return np.zeros(syndromes.shape[0], dtype=bool)
        return self._classify(syndromes)[4]

    def attempt(self, syndromes: np.ndarray) -> TierOutcome:
        num = syndromes.shape[0]
        rows, cols, deg, partner, ok = self._classify(syndromes)
        if rows.size == 0:
            return TierOutcome(
                [DecodeResult(prediction=False) for _ in range(num)]
            )
        counts = np.bincount(rows, minlength=num)
        # Closed forms over the accepted rows: each degree-0 defect pays
        # its matching radius to the boundary, each mutual close pair is
        # matched directly (counted once, at its lower endpoint).
        sel = ok[rows]
        pair = sel & (deg == 1) & (cols < partner)
        bnd = sel & (deg == 0)
        pred = np.zeros(num, dtype=bool)
        np.logical_xor.at(
            pred, rows[pair], self._pair_par[cols[pair], partner[pair]]
        )
        np.logical_xor.at(pred, rows[bnd], self._diag_par[cols[bnd]])
        # Matching and weight streams, lex-sorted so each row's
        # components run in smallest-member-ascending order -- the same
        # accumulation order as the sparse engine, so the float weight
        # sums are bit-identical.
        m_rows = np.concatenate((rows[pair], rows[bnd]))
        m_lo = np.concatenate((cols[pair], cols[bnd]))
        m_hi = np.concatenate(
            (
                partner[pair],
                np.full(int(bnd.sum()), BOUNDARY, dtype=np.int64),
            )
        )
        m_w = np.concatenate(
            (self._pair_w[cols[pair], partner[pair]], self._radii[cols[bnd]])
        )
        order = np.lexsort((m_hi, m_lo, m_rows))
        m_rows = m_rows[order]
        pairs = list(zip(m_lo[order].tolist(), m_hi[order].tolist()))
        weight = np.bincount(m_rows, weights=m_w[order], minlength=num)
        moff = np.concatenate(
            ([0], np.cumsum(np.bincount(m_rows, minlength=num)))
        ).tolist()
        results: list[DecodeResult | None] = [
            (
                (
                    DecodeResult(
                        prediction=p, matching=pairs[a:b], weight=wt
                    )
                    if o
                    else None
                )
                if c
                else DecodeResult(prediction=False)
            )
            for c, o, p, wt, a, b in zip(
                counts.tolist(),
                ok.tolist(),
                pred.tolist(),
                weight.tolist(),
                moff[:-1],
                moff[1:],
            )
        ]
        return TierOutcome(results)


class PredecodeTier(CascadeTier):
    """Clique-style greedy local pre-decoder as a cascade tier.

    One vectorized pairing round over every defect of every routed row
    at once.  That is exact, not an approximation: a mutual degree-1
    pair has no other active neighbors by definition, and a degree-0
    boundary defect touches nobody, so consuming them never unlocks
    further local pairings -- a fixed-point loop would terminate after
    one productive pass.  Fully-consumed rows are final (one pre-decoder
    cycle, 4 ns); rows with leftovers escalate carrying their local
    prediction/matching as a partial plus the residual defects, and are
    flagged ``timed_out`` (the fallback path misses the real-time
    budget).
    """

    name = "clique"
    escalation_times_out = True

    def __init__(self, graph) -> None:
        self.syndrome_length = int(graph.num_detectors)
        # Neighbour map over primitive edges (boundary excluded).
        neighbors: dict[int, set[int]] = {}
        edge_parity: dict[tuple[int, int], bool] = {}
        boundary_parity: dict[int, bool] = {}
        for edge in graph.edges:
            if edge.v == BOUNDARY:
                # Keep the most probable boundary edge's parity.
                if edge.u not in boundary_parity:
                    boundary_parity[edge.u] = edge.flips_observable
                continue
            neighbors.setdefault(edge.u, set()).add(edge.v)
            neighbors.setdefault(edge.v, set()).add(edge.u)
            key = (min(edge.u, edge.v), max(edge.u, edge.v))
            if key not in edge_parity:
                edge_parity[key] = edge.flips_observable
        # Padded neighbor matrix (vertices x max-degree) with aligned
        # edge parities, plus direct boundary-edge presence/parity.
        n = self.syndrome_length
        max_deg = max((len(s) for s in neighbors.values()), default=0)
        self._nb_pad = np.zeros((max(n, 1), max(max_deg, 1)), dtype=np.int64)
        self._nb_mask = np.zeros_like(self._nb_pad, dtype=bool)
        self._nb_par = np.zeros_like(self._nb_pad, dtype=bool)
        for v, nbs in neighbors.items():
            for j, u in enumerate(sorted(nbs)):
                self._nb_pad[v, j] = u
                self._nb_mask[v, j] = True
                self._nb_par[v, j] = edge_parity[(min(u, v), max(u, v))]
        self._has_bnd = np.zeros(max(n, 1), dtype=bool)
        self._bnd_par = np.zeros(max(n, 1), dtype=bool)
        for v, parity in boundary_parity.items():
            self._has_bnd[v] = True
            self._bnd_par[v] = parity

    def attempt(self, syndromes: np.ndarray) -> TierOutcome:
        num, n = syndromes.shape
        rows, cols = np.nonzero(syndromes)
        if rows.size == 0:
            return TierOutcome(
                [DecodeResult(prediction=False) for _ in range(num)]
            )
        counts = np.bincount(rows, minlength=num)
        # Active-neighbor degree of every defect via one padded gather.
        nbs = self._nb_pad[cols]
        act = self._nb_mask[cols] & syndromes[rows[:, None], nbs]
        deg = act.sum(axis=1)
        one = deg == 1
        # The lone active neighbor of each degree-1 defect, and the
        # parity of the primitive edge towards it.
        j = np.argmax(act, axis=1)
        lanes = np.arange(rows.size)
        partner = nbs[lanes, j]
        edge_par = self._nb_par[cols, j]
        # A pair is consumed iff both endpoints have degree 1; adjacency
        # is symmetric, so the partner's lone neighbor is this defect.
        # Locate the partner's lane by binary search over the
        # (row, vertex) keys, which np.nonzero already emits sorted.
        keys = rows * n + cols
        pidx = np.searchsorted(keys, rows * n + partner)
        pdeg = deg[np.minimum(pidx, keys.size - 1)]
        paired = one & (pdeg == 1)
        bmatch = (deg == 0) & self._has_bnd[cols]
        resid = ~(paired | bmatch)
        # Per-row prediction: each pair's parity counted once (at its
        # lower endpoint) plus every boundary match's parity.
        pair_once = paired & (cols < partner)
        pred = np.zeros(num, dtype=bool)
        np.logical_xor.at(pred, rows[pair_once], edge_par[pair_once])
        np.logical_xor.at(pred, rows[bmatch], self._bnd_par[cols[bmatch]])
        # Locally consumed matches, grouped per row in sorted order.
        m_rows = np.concatenate((rows[pair_once], rows[bmatch]))
        m_lo = np.concatenate((cols[pair_once], cols[bmatch]))
        m_hi = np.concatenate(
            (
                partner[pair_once],
                np.full(int(bmatch.sum()), BOUNDARY, dtype=np.int64),
            )
        )
        order = np.lexsort((m_hi, m_lo, m_rows))
        m_rows = m_rows[order]
        pairs = list(zip(m_lo[order].tolist(), m_hi[order].tolist()))
        moff = np.concatenate(
            ([0], np.cumsum(np.bincount(m_rows, minlength=num)))
        ).tolist()
        row_resid = np.zeros(num, dtype=bool)
        row_resid[rows[resid]] = True
        residual = None
        partial: list[tuple[bool, list[tuple[int, int]]] | None] | None = None
        if row_resid.any():
            residual = np.zeros((num, n), dtype=bool)
            residual[rows[resid], cols[resid]] = True
            partial = [None] * num
        results: list[DecodeResult | None] = []
        pred_l = pred.tolist()
        resid_l = row_resid.tolist()
        cnt_l = counts.tolist()
        for i in range(num):
            if not cnt_l[i]:
                results.append(DecodeResult(prediction=False))
            elif not resid_l[i]:
                results.append(
                    DecodeResult(
                        prediction=pred_l[i],
                        matching=pairs[moff[i] : moff[i + 1]],
                        cycles=1,
                        latency_ns=4.0,  # one in-fridge pre-decoder cycle
                    )
                )
            else:
                results.append(None)
                partial[i] = (pred_l[i], pairs[moff[i] : moff[i + 1]])
        return TierOutcome(results, residual=residual, partial=partial)


class DecoderTier(CascadeTier):
    """Wraps any :class:`~repro.decoders.base.Decoder` as a tier."""

    def __init__(
        self,
        decoder,
        *,
        name: str | None = None,
        max_weight: int | None = None,
        latency_slo_s: float | None = None,
        verifier: Callable[[np.ndarray, DecodeResult], bool] | None = None,
    ) -> None:
        self.decoder = decoder
        self.name = name or getattr(decoder, "name", type(decoder).__name__)
        self.max_weight = max_weight
        self.latency_slo_s = latency_slo_s
        self.verifier = verifier

    def route(self, syndromes: np.ndarray, weights: np.ndarray) -> np.ndarray:
        if self.max_weight is None:
            return np.ones(syndromes.shape[0], dtype=bool)
        return weights <= self.max_weight

    def attempt(self, syndromes: np.ndarray) -> TierOutcome:
        return TierOutcome(list(self.decoder.decode_batch(syndromes)))


# ----------------------------------------------------------------------
# The cascade core
# ----------------------------------------------------------------------


class Cascade:
    """Ordered tiers plus the row-routing/escalation/merge loop.

    Args:
        tiers: Tier list, cheapest first; the last tier is *terminal*
            and must solve every row that reaches it (its routing gate,
            latency SLO and verifier are not consulted).
        stats: Shared :class:`CascadeStats` (created when None).
    """

    def __init__(
        self, tiers: Sequence[CascadeTier], stats: CascadeStats | None = None
    ) -> None:
        if not tiers:
            raise ValueError("a cascade needs at least one tier")
        self.tiers = list(tiers)
        self.stats = stats if stats is not None else CascadeStats()
        for tier in self.tiers:  # fix the stats ordering at build time
            self.stats.tier(tier.name)

    def run(
        self, syndromes: np.ndarray
    ) -> tuple[list[DecodeResult], list[str]]:
        """Route every row to a final result.

        Returns:
            ``(results, tier_names)`` -- per-row decode results and the
            name of the tier that finalized each row.
        """
        num = syndromes.shape[0]
        results: list[DecodeResult | None] = [None] * num
        tier_of = [""] * num
        # Escalation state accumulated across tiers, per original row.
        part_pred = np.zeros(num, dtype=bool)
        part_pairs: dict[int, list[tuple[int, int]]] = {}
        timed = np.zeros(num, dtype=bool)
        pending = np.arange(num)
        current = syndromes
        for t, tier in enumerate(self.tiers):
            if pending.size == 0:
                break
            terminal = t == len(self.tiers) - 1
            stats = self.stats.tier(tier.name)
            stats.routed += int(pending.size)
            weights = current.sum(axis=1)
            if terminal:
                mask = np.ones(pending.size, dtype=bool)
            elif (
                tier.latency_slo_s is not None
                and stats.latency.count >= SLO_MIN_SAMPLES
                and stats.latency.p99 > tier.latency_slo_s
            ):
                # The tier is blowing its latency SLO: decline whole
                # batches until its observed p99 recovers.
                mask = np.zeros(pending.size, dtype=bool)
            else:
                mask = np.asarray(tier.route(current, weights), dtype=bool)
            stats.declined += int(pending.size - mask.sum())
            keep = ~mask  # declined rows continue to the next tier as-is
            replaced: dict[int, np.ndarray] = {}
            attempted = np.flatnonzero(mask)
            if attempted.size:
                start = time.perf_counter()
                outcome = tier.attempt(current[attempted])
                elapsed = time.perf_counter() - start
                stats.latency.record_many(
                    elapsed / attempted.size, int(attempted.size)
                )
                if len(outcome.results) != attempted.size:
                    raise RuntimeError(
                        f"tier {tier.name!r} returned "
                        f"{len(outcome.results)} results for "
                        f"{attempted.size} rows"
                    )
                # Fast path: no verifier and no escalation state to merge
                # means a solved row's result is final as-is, so the only
                # per-row work is slotting it home.
                if (
                    tier.verifier is None
                    and outcome.partial is None
                    and outcome.residual is None
                    and not tier.escalation_times_out
                    and not part_pairs
                    and not part_pred.any()
                    and not timed.any()
                ):
                    rlist = outcome.results
                    none_mask = np.fromiter(
                        (r is None for r in rlist),
                        dtype=bool,
                        count=attempted.size,
                    )
                    nones = int(none_mask.sum())
                    if nones:
                        if terminal:
                            raise RuntimeError(
                                f"terminal tier {tier.name!r} declined a "
                                "row it must solve"
                            )
                        stats.escalated += nones
                        keep[attempted[none_mask]] = True
                        solved_ks = np.flatnonzero(~none_mask)
                    else:
                        solved_ks = np.arange(attempted.size)
                    stats.solved += int(solved_ks.size)
                    name = tier.name
                    for k, orig in zip(
                        solved_ks.tolist(),
                        pending[attempted[solved_ks]].tolist(),
                    ):
                        results[orig] = rlist[k]
                        tier_of[orig] = name
                    lanes = np.flatnonzero(keep)
                    if lanes.size == 0:
                        pending = pending[:0]
                        break
                    pending = pending[lanes]
                    current = current[lanes]
                    continue
                for k, lane in enumerate(attempted.tolist()):
                    res = outcome.results[k]
                    orig = int(pending[lane])
                    if res is None:
                        if terminal:
                            raise RuntimeError(
                                f"terminal tier {tier.name!r} declined a "
                                "row it must solve"
                            )
                        stats.escalated += 1
                        keep[lane] = True
                        if outcome.partial is not None:
                            part = outcome.partial[k]
                            if part is not None:
                                ppred, ppairs = part
                                part_pred[orig] ^= ppred
                                part_pairs.setdefault(orig, []).extend(ppairs)
                        if outcome.residual is not None:
                            replaced[lane] = outcome.residual[k]
                        if tier.escalation_times_out:
                            timed[orig] = True
                        continue
                    if (
                        not terminal
                        and tier.verifier is not None
                        and not tier.verifier(current[lane], res)
                    ):
                        # Wrong answer per the hook: drop it and escalate
                        # the row on its unmodified syndrome.
                        stats.verifier_rejects += 1
                        stats.escalated += 1
                        keep[lane] = True
                        continue
                    stats.solved += 1
                    if part_pred[orig] or orig in part_pairs or timed[orig]:
                        res = DecodeResult(
                            prediction=bool(part_pred[orig]) ^ res.prediction,
                            matching=sorted(
                                part_pairs.get(orig, []) + res.matching
                            ),
                            weight=res.weight,
                            cycles=res.cycles,
                            latency_ns=res.latency_ns,
                            decoded=res.decoded,
                            timed_out=bool(timed[orig]) or res.timed_out,
                        )
                    results[orig] = res
                    tier_of[orig] = tier.name
            lanes = np.flatnonzero(keep)
            if lanes.size == 0:
                pending = pending[:0]
                break
            next_current = current[lanes]  # fancy indexing copies
            if replaced:
                pos = {int(lane): i for i, lane in enumerate(lanes.tolist())}
                for lane, row in replaced.items():
                    next_current[pos[lane]] = row
            pending = pending[lanes]
            current = next_current
        if pending.size:
            raise RuntimeError(
                f"{pending.size} row(s) escaped the cascade unsolved"
            )
        return results, tier_of  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Escalation policy (MWPM anomaly recovery) and the service ladder
# ----------------------------------------------------------------------


class EscalationPolicy:
    """Counting/warning policy for single-decoder tier escalation.

    :class:`~repro.decoders.mwpm.MWPMDecoder` runs its sparse engine as
    tier zero; engine anomalies (``SparseEngineError``, unexpected
    failures, non-finite weights) escalate through this policy to the
    dense reference tier when one exists.

    Args:
        owner: Decoder name used in the emitted warning.
        tier: Name of the tier being escalated *from*.
        next_tier: Name of the tier escalated *to*; None means there is
            no next tier -- the event is counted and :meth:`escalate`
            returns False so the caller re-raises.
    """

    def __init__(
        self, owner: str, *, tier: str = "sparse", next_tier: str | None = None
    ) -> None:
        self.owner = owner
        self.tier = tier
        self.next_tier = next_tier
        #: Escalations observed (the decoder's ``fallback_events``).
        self.escalations = 0

    def escalate(self, reason: str, detail: str) -> bool:
        """Count one escalation; True when a next tier absorbs it.

        Emits a :class:`~repro.decoders.base.DecoderFallbackWarning`
        when the escalation is absorbed (the caller then runs the next
        tier); with no next tier the caller must re-raise.
        """
        self.escalations += 1
        if self.next_tier is None:
            return False
        warnings.warn(
            DecoderFallbackWarning(self.owner, reason, detail), stacklevel=4
        )
        return True


class TierLadder:
    """Shed/promote hysteresis over an ordered list of tier names.

    The streaming service's degradation ladder: under backpressure a
    stream sheds one rung down (cheaper tier); once its queue drains to
    half the limit it promotes one rung back up.  Kept separate from
    :class:`Cascade` because the service routes *streams*, not rows --
    but both consume the same ordered tier list and the same stats
    schema.
    """

    def __init__(self, tiers: Sequence[str]) -> None:
        if not tiers:
            raise ValueError("a tier ladder needs at least one tier")
        self.tiers = tuple(tiers)
        self.level = 0

    @property
    def current(self) -> str:
        """The active tier name."""
        return self.tiers[self.level]

    @property
    def degraded(self) -> bool:
        """Whether the ladder sits below its primary tier."""
        return self.level > 0

    def shed(self) -> str | None:
        """Drop one rung; the new tier, or None when already at bottom."""
        if self.level + 1 >= len(self.tiers):
            return None
        self.level += 1
        return self.current

    def consider_promote(self, queue_depth: int, queue_limit: int) -> str | None:
        """Climb one rung when the queue drained to half its limit.

        Returns:
            The new tier name, or None when no promotion happened.
        """
        if self.level and queue_depth <= queue_limit // 2:
            self.level -= 1
            return self.current
        return None


# ----------------------------------------------------------------------
# The registry-native cascade decoder
# ----------------------------------------------------------------------


class CascadeDecoder(Decoder):
    """Closed-form front tier backstopped by exact MWPM.

    Final predictions/matchings/weights are bit-identical to running
    the terminal tier alone on every syndrome (see the module
    docstring); the front tier only removes work from it.

    Args:
        gwt: Weight table, or None for the graph-only configuration
            (``graph`` required; the front tier then accepts only empty
            rows).
        graph: Optional decoding graph arming the terminal MWPM's
            graph-local engine (exact with the ideal table only).
        structure: Pre-built neighbor structure for ``gwt`` (computed
            when None).
        max_local_weight: Hamming-weight routing cap of the front tier
            (None attempts every row; :class:`RoutingTable` supplies a
            tuned value).
        routing_table: Tuned :class:`RoutingTable` (overrides
            ``max_local_weight`` when that is None).
        terminal: Override the terminal decoder (defaults to a fresh
            :class:`~repro.decoders.mwpm.MWPMDecoder`).
        verifier: Optional verifier hook installed on the front tier.
    """

    name = "Cascade"

    def __init__(
        self,
        gwt=None,
        *,
        graph=None,
        structure: NeighborStructure | None = None,
        max_local_weight: int | None = None,
        routing_table: "RoutingTable | None" = None,
        terminal=None,
        verifier: Callable[[np.ndarray, DecodeResult], bool] | None = None,
    ) -> None:
        from .mwpm import MWPMDecoder  # avoid a module-import cycle

        if routing_table is not None and max_local_weight is None:
            max_local_weight = routing_table.max_local_weight
        if terminal is None:
            terminal = MWPMDecoder(
                gwt, graph=graph, measure_time=False, structure=structure
            )
        self.gwt = gwt
        self.terminal = terminal
        self.routing_table = routing_table
        if gwt is not None:
            if structure is None:
                structure = NeighborStructure.from_weights(
                    gwt.weights,
                    gwt.parities,
                    tolerance=default_tolerance(gwt),
                )
            front: CascadeTier = ClosedFormTier(
                structure, gwt, max_weight=max_local_weight
            )
            self.syndrome_length = int(gwt.weights.shape[0])
        else:
            front = TrivialTier()
            self.syndrome_length = int(terminal.syndrome_length)
        front.verifier = verifier
        self._front = front
        self._cascade = Cascade([front, DecoderTier(terminal, name="mwpm")])
        self.stats = self._cascade.stats
        #: Finalizing tier name of each row of the last decode_batch.
        self.last_tiers: list[str] = []

    @property
    def escalation_rate(self) -> float:
        """Fraction of routed rows that reached the terminal tier."""
        return self.stats.escalation_rate

    def decode_active(self, active: list[int]) -> DecodeResult:
        syndrome = np.zeros((1, self.syndrome_length), dtype=bool)
        if len(active):
            syndrome[0, list(active)] = True
        results, tiers = self._cascade.run(syndrome)
        self.last_tiers = tiers
        return results[0]

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        syndromes = validate_syndrome_batch(syndromes, self.syndrome_length)
        results, tiers = self._cascade.run(syndromes)
        self.last_tiers = tiers
        return results


# ----------------------------------------------------------------------
# Calibration auto-tuner
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RoutingTable:
    """Tuned cascade routing thresholds, picklable and cacheable.

    Produced by :func:`cascade_tune` from a sampled syndrome census;
    cached in the pipeline's artifact store under the setup fingerprint
    (stage ``"routing_table"``).

    Attributes:
        distance: Code distance of the tuning census.
        physical_error_rate: Physical error rate of the tuning census.
        shots: Census size.
        seed: Census sampling seed.
        max_local_weight: Fitted front-tier Hamming-weight cap.
        local_fraction: Census fraction the front tier solves under the
            fitted cap.
        escalation_rate: Census fraction escalating under the fitted cap.
        accept_weights: Observed Hamming weights, ascending.
        accept_fractions: Front-tier acceptance fraction per observed
            weight (aligned with ``accept_weights``).
    """

    distance: int
    physical_error_rate: float
    shots: int
    seed: int
    max_local_weight: int
    local_fraction: float
    escalation_rate: float
    accept_weights: tuple[int, ...]
    accept_fractions: tuple[float, ...]

    def as_dict(self) -> dict:
        """JSON-ready summary."""
        return {
            "distance": self.distance,
            "physical_error_rate": self.physical_error_rate,
            "shots": self.shots,
            "seed": self.seed,
            "max_local_weight": self.max_local_weight,
            "local_fraction": self.local_fraction,
            "escalation_rate": self.escalation_rate,
            "accept_weights": list(self.accept_weights),
            "accept_fractions": list(self.accept_fractions),
        }


#: Routing caps below this are never fitted: weight <= 2 rows are the
#: overwhelming common case and always worth attempting locally.
_MIN_LOCAL_WEIGHT = 2


def cascade_tune(
    setup,
    *,
    shots: int = 20_000,
    seed: int = 7,
    min_accept: float = 0.05,
) -> RoutingTable:
    """Fit the front-tier routing cap from a sampled syndrome census.

    Samples ``shots`` syndromes from the setup's experiment, measures
    the closed-form tier's exact-acceptance fraction at each observed
    Hamming weight, and sets ``max_local_weight`` to the heaviest weight
    of the contiguous prefix whose acceptance stays at least
    ``min_accept`` -- beyond that the tier burns routing work on rows it
    almost always escalates anyway.

    Args:
        setup: A built :class:`~repro.experiments.setup.DecodingSetup`
            (dense weights required).
        shots: Census size.
        seed: Census sampling seed.
        min_accept: Minimum per-weight acceptance fraction kept local.

    Returns:
        The fitted :class:`RoutingTable`.
    """
    from ..sim.pauli_frame import PauliFrameSimulator

    gwt = setup.ideal_gwt
    structure = setup.neighbor_structure
    tier = ClosedFormTier(structure, gwt)
    sim = PauliFrameSimulator(setup.experiment.circuit, seed=seed)
    syndromes = np.asarray(sim.sample(shots).detectors, dtype=bool)
    local = tier.local_mask(syndromes)
    weights = syndromes.sum(axis=1)
    observed = np.unique(weights)
    fractions = [
        float(local[weights == w].mean()) for w in observed.tolist()
    ]
    max_local = _MIN_LOCAL_WEIGHT
    for w, frac in zip(observed.tolist(), fractions):
        if frac < min_accept and w > _MIN_LOCAL_WEIGHT:
            break
        max_local = max(max_local, int(w))
    routed = local & (weights <= max_local)
    local_fraction = float(routed.mean()) if len(routed) else 0.0
    config = setup.config
    return RoutingTable(
        distance=int(config.distance),
        physical_error_rate=float(config.physical_error_rate),
        shots=int(shots),
        seed=int(seed),
        max_local_weight=int(max_local),
        local_fraction=local_fraction,
        escalation_rate=1.0 - local_fraction,
        accept_weights=tuple(int(w) for w in observed.tolist()),
        accept_fractions=tuple(fractions),
    )


def load_or_tune_routing_table(
    setup,
    store=None,
    *,
    shots: int = 20_000,
    seed: int = 7,
    min_accept: float = 0.05,
) -> RoutingTable:
    """Routing table for a setup, cached in the artifact store.

    Loads stage ``"routing_table"`` under the setup fingerprint and
    re-tunes (then re-saves) when it is missing or was tuned with a
    different census (``shots``/``seed``).

    Args:
        setup: A built decoding setup.
        store: Artifact store (None: the environment default, which may
            itself be None -- then the table is tuned uncached).
        shots: Census size (also the cache-validity key).
        seed: Census seed (also the cache-validity key).
        min_accept: Minimum per-weight acceptance fraction kept local.
    """
    from ..pipeline.artifacts import ArtifactError, default_artifact_store

    if store is None:
        store = default_artifact_store()
    if store is not None:
        try:
            cached = store.load(setup.fingerprint, "routing_table")
        except ArtifactError:
            cached = None
        if (
            isinstance(cached, RoutingTable)
            and cached.shots == shots
            and cached.seed == seed
        ):
            return cached
    table = cascade_tune(setup, shots=shots, seed=seed, min_accept=min_accept)
    if store is not None:
        store.save(setup.fingerprint, "routing_table", table)
    return table
