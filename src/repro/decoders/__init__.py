"""The decoder zoo (see docs/decoders.md for the selection guide)."""

from .astrea import AstreaDecoder, HW6Decoder, exhaustive_search
from .astrea_g import AstreaGDecoder, PipelineSnapshot, weight_threshold_for
from .base import BOUNDARY, DecodeResult, Decoder
from .cascade import (
    Cascade,
    CascadeDecoder,
    CascadeStats,
    CascadeTier,
    ClosedFormTier,
    DecoderTier,
    EscalationPolicy,
    PredecodeTier,
    RoutingTable,
    TierLadder,
    TierOutcome,
    TierStats,
    TrivialTier,
    cascade_tune,
    load_or_tune_routing_table,
)
from .clique import CliqueDecoder
from .correction import (
    PhysicalCorrection,
    matching_to_correction,
    primitive_edge_parities,
)
from .lilliput import LilliputDecoder, lut_size_bytes
from .mwpm import MWPMDecoder
from .single_round import SingleRoundDecoder
from .union_find import UnionFindDecoder
from .verify import VerificationReport, verify_decode_result
from .windowed import SlidingWindowDecoder

__all__ = [
    "AstreaDecoder",
    "AstreaGDecoder",
    "BOUNDARY",
    "Cascade",
    "CascadeDecoder",
    "CascadeStats",
    "CascadeTier",
    "CliqueDecoder",
    "ClosedFormTier",
    "DecodeResult",
    "Decoder",
    "DecoderTier",
    "EscalationPolicy",
    "HW6Decoder",
    "LilliputDecoder",
    "MWPMDecoder",
    "PhysicalCorrection",
    "PipelineSnapshot",
    "PredecodeTier",
    "RoutingTable",
    "SingleRoundDecoder",
    "SlidingWindowDecoder",
    "TierLadder",
    "TierOutcome",
    "TierStats",
    "TrivialTier",
    "UnionFindDecoder",
    "VerificationReport",
    "cascade_tune",
    "exhaustive_search",
    "load_or_tune_routing_table",
    "lut_size_bytes",
    "matching_to_correction",
    "primitive_edge_parities",
    "verify_decode_result",
    "weight_threshold_for",
]
