"""The decoder zoo (see docs/decoders.md for the selection guide)."""

from .astrea import AstreaDecoder, HW6Decoder, exhaustive_search
from .astrea_g import AstreaGDecoder, PipelineSnapshot, weight_threshold_for
from .base import BOUNDARY, DecodeResult, Decoder
from .clique import CliqueDecoder
from .correction import (
    PhysicalCorrection,
    matching_to_correction,
    primitive_edge_parities,
)
from .lilliput import LilliputDecoder, lut_size_bytes
from .mwpm import MWPMDecoder
from .single_round import SingleRoundDecoder
from .union_find import UnionFindDecoder
from .verify import VerificationReport, verify_decode_result
from .windowed import SlidingWindowDecoder

__all__ = [
    "AstreaDecoder",
    "AstreaGDecoder",
    "BOUNDARY",
    "CliqueDecoder",
    "DecodeResult",
    "Decoder",
    "HW6Decoder",
    "LilliputDecoder",
    "MWPMDecoder",
    "PhysicalCorrection",
    "PipelineSnapshot",
    "SingleRoundDecoder",
    "SlidingWindowDecoder",
    "UnionFindDecoder",
    "VerificationReport",
    "exhaustive_search",
    "lut_size_bytes",
    "matching_to_correction",
    "primitive_edge_parities",
    "verify_decode_result",
    "weight_threshold_for",
]
