"""The Astrea-G decoder: greedy real-time MWPM for high Hamming weights.

Astrea cannot search syndromes beyond Hamming weight 10 (a weight-20
syndrome has 6.5e8 perfect matchings).  Astrea-G (paper sections 6-7)
makes the search tractable with two insights:

1. **Filter unlikely weights.**  Pairings whose weight exceeds a threshold
   ``W_th = -log10(0.01 * P_L)`` represent error events ~100x less likely
   than the logical error rate itself and are removed from the Local
   Weight Table, shrinking the search space dramatically (Figure 10).
2. **Search from low to high weights.**  Pre-matchings are expanded
   greedily -- the lowest-weight candidate pairs first -- through a
   three-stage Fetch/Sort/Commit pipeline fed by ``F`` priority queues of
   capacity ``E`` that order pre-matchings by the score ``s / b``
   (cumulative weight over matched bits).  Once only six syndrome bits
   remain unmatched, the HW6Decoder completes the matching exhaustively
   and the result updates the MWPM register.

The search terminates when the queues drain (the register then provably
holds the best matching *within the filtered space*) or when the 1 us
real-time budget expires (the register holds the best matching found so
far, which the greedy ordering makes very likely to be the MWPM).

This implementation executes the microarchitecture as an algorithm --
queues, scores, fetch width, eviction and the cycle budget -- so that both
Astrea-G's accuracy gap to MWPM (Figures 12-14) and its latency profile
are emergent properties rather than modeled constants.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from ..backend import from_device
from ..graphs.weights import GlobalWeightTable
from ..hw.latency import FpgaTiming, astrea_decode_cycles
from ..matching.boundary import MatchingProblem
from .astrea import (
    KERNEL_CHUNK_ROWS,
    HW6Decoder,
    batched_search,
    bucket_results,
    exhaustive_search,
    vectorized_search,
)
from .base import (
    DecodeResult,
    Decoder,
    matching_to_detectors,
    validate_syndrome_batch,
)

__all__ = ["AstreaGDecoder", "PipelineSnapshot", "weight_threshold_for"]

#: Pipeline depth of the Fetch/Sort/Commit datapath (cycles of fill).
PIPELINE_DEPTH = 3


def weight_threshold_for(logical_error_rate: float, margin: float = 0.01) -> float:
    """The paper's weight-threshold rule: ``-log10(margin * P_L)``.

    Args:
        logical_error_rate: Target logical error rate ``P_L`` of the code.
        margin: Suppression factor below ``P_L`` (paper: 0.01, i.e. events
            100x less likely than a logical error are filtered).

    Returns:
        The weight threshold ``W_th``.
    """
    if not 0 < logical_error_rate < 1:
        raise ValueError("logical_error_rate must be in (0, 1)")
    return float(-np.log10(margin * logical_error_rate))


@dataclass(frozen=True)
class _PreMatching:
    """A partial matching travelling through the pipeline.

    Attributes:
        pairs: Pairs committed so far (local node indices).
        matched_mask: Bitmask of matched local nodes.
        weight: Cumulative weight ``s`` of the committed pairs.
    """

    pairs: tuple[tuple[int, int], ...]
    matched_mask: int
    weight: float

    @property
    def matched_bits(self) -> int:
        """Number of matched syndrome bits ``b``."""
        return 2 * len(self.pairs)

    @property
    def score(self) -> float:
        """Priority-queue score ``s / b`` (lower is better)."""
        if not self.pairs:
            return 0.0
        return self.weight / self.matched_bits


@dataclass(frozen=True)
class PipelineSnapshot:
    """State of the greedy pipeline after one Fetch/Sort/Commit pass.

    Attributes:
        iteration: 1-based pipeline pass index.
        queue_sizes: Entries per priority queue after the pass.
        best_weight: Weight in the MWPM register (inf before the first
            completed matching).
        completions: Perfect matchings completed so far.
    """

    iteration: int
    queue_sizes: tuple[int, ...]
    best_weight: float
    completions: int


class AstreaGDecoder(Decoder):
    """Greedy filtered-search MWPM decoder (Astrea-G).

    Args:
        gwt: Global Weight Table (quantized for hardware fidelity).
        weight_threshold: Pair-weight cutoff ``W_th``; pairings above it are
            filtered from the Local Weight Table.  Use
            :func:`weight_threshold_for` to derive it from a target logical
            error rate (paper default: 7 for d = 7 at p = 1e-3).
        fetch_width: ``F``, the number of priority queues and the number of
            candidate pairs committed per expansion (paper default 2).
        queue_capacity: ``E``, entries per priority queue (paper default 8).
        timing: FPGA clocking parameters; sets the cycle budget.
        exhaustive_cutoff: Matching problems with at most this many nodes
            bypass the greedy pipeline and are searched exhaustively by the
            Astrea datapath.  The paper's combined design (Figure 11)
            routes every low-Hamming-weight syndrome -- up to Astrea's
            limit of 10 -- through the exact search, so 10 is the default;
            lower values make even mid-weight syndromes greedy (useful for
            ablations).
        min_candidates: Cheapest pairings per syndrome bit that survive
            filtering even above ``W_th``, guaranteeing the search can
            always complete a perfect matching.
        use_vectorized: Route the exact (low-Hamming-weight) datapath
            through the NumPy index-tensor kernel instead of the scalar
            reference loops; results are bit-identical.
    """

    name = "Astrea-G"

    def __init__(
        self,
        gwt: GlobalWeightTable,
        *,
        weight_threshold: float = 7.0,
        fetch_width: int = 2,
        queue_capacity: int = 8,
        timing: FpgaTiming | None = None,
        exhaustive_cutoff: int = 10,
        min_candidates: int = 2,
        use_vectorized: bool = True,
    ) -> None:
        if fetch_width < 1:
            raise ValueError("fetch_width must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if exhaustive_cutoff < 2 or exhaustive_cutoff > 10:
            raise ValueError("exhaustive_cutoff must be in 2..10")
        self.gwt = gwt
        self.syndrome_length = int(gwt.weights.shape[0])
        self.weight_threshold = weight_threshold
        self.fetch_width = fetch_width
        self.queue_capacity = queue_capacity
        self.timing = timing if timing is not None else FpgaTiming()
        self.exhaustive_cutoff = exhaustive_cutoff
        self.min_candidates = min_candidates
        self.use_vectorized = use_vectorized
        self.hw6 = HW6Decoder()

    def _exact_search(
        self, weights: np.ndarray
    ) -> tuple[list[tuple[int, int]], float]:
        """Exact MWPM of a small problem via the configured datapath."""
        if self.use_vectorized:
            pairs, weight, _accesses = vectorized_search(weights)
        else:
            pairs, weight, _accesses = exhaustive_search(weights, self.hw6)
        return pairs, weight

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode a syndrome with the greedy filtered pipeline."""
        hw = len(active)
        if hw == 0:
            return DecodeResult(prediction=False)
        problem = MatchingProblem.from_syndrome(self.gwt, active)
        m = problem.num_nodes
        if hw <= 2:
            # Trivial syndromes are handled inline at zero latency (Fig. 9).
            pairs, weight = self._exact_search(problem.weights)
            return self._result(problem, pairs, weight, cycles=0)
        transfer_cycles = hw + 1
        if m <= self.exhaustive_cutoff:
            # The Astrea datapath: exact search, Astrea's cycle cost.
            pairs, weight = self._exact_search(problem.weights)
            return self._result(
                problem,
                pairs,
                weight,
                cycles=transfer_cycles + astrea_decode_cycles(min(hw, m)),
            )
        pairs, weight, iterations, timed_out = self._pipeline(
            problem.weights, trace=None
        )
        cycles = min(
            transfer_cycles + PIPELINE_DEPTH + iterations,
            self.timing.budget_cycles,
        )
        return self._result(
            problem, pairs, weight, cycles=cycles, timed_out=timed_out
        )

    def decode_with_trace(
        self, active: list[int]
    ) -> tuple[DecodeResult, list[PipelineSnapshot]]:
        """Decode while recording the pipeline's per-pass state.

        For syndromes handled by the exact Astrea datapath (at most
        ``exhaustive_cutoff`` matching nodes) the trace is empty: no
        pipeline pass occurs.

        Args:
            active: Non-zero syndrome bit indices.

        Returns:
            Tuple ``(result, snapshots)``; one snapshot per pipeline pass.
        """
        hw = len(active)
        trace: list[PipelineSnapshot] = []
        if hw == 0:
            return DecodeResult(prediction=False), trace
        problem = MatchingProblem.from_syndrome(self.gwt, active)
        m = problem.num_nodes
        if hw <= 2 or m <= self.exhaustive_cutoff:
            return self.decode_active(active), trace
        pairs, weight, iterations, timed_out = self._pipeline(
            problem.weights, trace=trace
        )
        cycles = min(
            (hw + 1) + PIPELINE_DEPTH + iterations, self.timing.budget_cycles
        )
        return (
            self._result(problem, pairs, weight, cycles=cycles, timed_out=timed_out),
            trace,
        )

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        Syndromes routed to the exact Astrea datapath (Hamming weight <= 2
        or at most ``exhaustive_cutoff`` matching nodes) are bucketed by
        weight and searched with one :func:`batched_search` kernel call per
        bucket; higher weights fall back to the per-syndrome greedy
        pipeline, whose search state is inherently sequential.  Results are
        identical to per-row :meth:`decode`.
        """
        syndromes = validate_syndrome_batch(syndromes, self.syndrome_length)
        results: list[DecodeResult | None] = [None] * syndromes.shape[0]
        hw = syndromes.sum(axis=1)
        for w in np.unique(hw):
            w = int(w)
            rows = np.nonzero(hw == w)[0]
            if w == 0:
                for i in rows:
                    results[i] = DecodeResult(prediction=False)
                continue
            m = w if w % 2 == 0 else w + 1
            if w > 2 and m > self.exhaustive_cutoff:
                for i in rows:
                    active = [int(x) for x in np.nonzero(syndromes[i])[0]]
                    results[i] = self.decode_active(active)
                continue
            if w <= 2:
                cycles = 0
            else:
                cycles = (w + 1) + astrea_decode_cycles(min(w, m))
            latency_ns = self.timing.to_ns(cycles)
            for start in range(0, len(rows), KERNEL_CHUNK_ROWS):
                chunk = rows[start : start + KERNEL_CHUNK_ROWS]
                active = np.nonzero(syndromes[chunk])[1].reshape(len(chunk), w)
                batch = MatchingProblem.from_syndrome_batch(self.gwt, active)
                pair_tensor, weights, predictions = (
                    from_device(r)
                    for r in batched_search(batch.weights, batch.parities)
                )
                bucket = bucket_results(
                    batch,
                    pair_tensor,
                    weights,
                    predictions,
                    cycles=cycles,
                    latency_ns=latency_ns,
                )
                for j, i in enumerate(chunk):
                    results[i] = bucket[j]
        return results

    def _result(
        self,
        problem: MatchingProblem,
        pairs: list[tuple[int, int]],
        weight: float,
        *,
        cycles: int,
        timed_out: bool = False,
    ) -> DecodeResult:
        return DecodeResult(
            prediction=problem.prediction(pairs),
            matching=matching_to_detectors(pairs, problem.active, problem.has_virtual),
            weight=weight,
            cycles=cycles,
            latency_ns=self.timing.to_ns(cycles),
            timed_out=timed_out,
        )

    # ------------------------------------------------------------------
    # The Fetch / Sort / Commit pipeline
    # ------------------------------------------------------------------

    def _candidate_table(self, weights: np.ndarray) -> list[list[int]]:
        """The Local Weight Table after threshold filtering.

        For each node, partners are sorted by ascending pair weight and
        those above ``W_th`` are dropped -- except that the cheapest
        ``min_candidates`` always survive so a perfect matching remains
        reachable.
        """
        m = weights.shape[0]
        table: list[list[int]] = []
        for i in range(m):
            order = sorted((j for j in range(m) if j != i), key=lambda j: weights[i, j])
            kept = [
                j
                for rank, j in enumerate(order)
                if rank < self.min_candidates
                or weights[i, j] <= self.weight_threshold
            ]
            table.append(kept)
        return table

    def _pipeline(
        self,
        weights: np.ndarray,
        trace: list[PipelineSnapshot] | None = None,
    ) -> tuple[list[tuple[int, int]], float, int, bool]:
        """Run the greedy search; returns (pairs, weight, iterations, timeout)."""
        m = weights.shape[0]
        candidates = self._candidate_table(weights)
        full_mask = (1 << m) - 1
        budget = self.timing.budget_cycles - PIPELINE_DEPTH - (m + 1)
        tiebreak = itertools.count()
        # One min-heap per queue, keyed by (score, insertion order).
        queues: list[list[tuple[float, int, _PreMatching]]] = [
            [] for _ in range(self.fetch_width)
        ]
        best_pairs: list[tuple[int, int]] | None = None
        best_weight = float("inf")
        next_queue = 0

        def push(pm: _PreMatching) -> None:
            nonlocal next_queue
            queue = queues[next_queue]
            next_queue = (next_queue + 1) % self.fetch_width
            if len(queue) < self.queue_capacity:
                heapq.heappush(queue, (pm.score, next(tiebreak), pm))
                return
            # Queue full: evict the worst entry if the newcomer beats it.
            worst_index = max(range(len(queue)), key=lambda k: queue[k][0])
            if queue[worst_index][0] > pm.score:
                queue[worst_index] = (pm.score, next(tiebreak), pm)
                heapq.heapify(queue)

        def complete(pm: _PreMatching) -> None:
            """HW6Decoder base case: finish the last six unmatched bits."""
            nonlocal best_pairs, best_weight, completions
            completions += 1
            remaining = [i for i in range(m) if not pm.matched_mask >> i & 1]
            tail_pairs, tail_weight = self.hw6.decode(weights, remaining)
            total = pm.weight + tail_weight
            if total < best_weight:
                best_weight = total
                best_pairs = list(pm.pairs) + tail_pairs

        def expand(pm: _PreMatching) -> None:
            """Fetch/Sort/Commit one pre-matching."""
            first = next(
                i for i in range(m) if not pm.matched_mask >> i & 1
            )
            options = [
                j
                for j in candidates[first]
                if not pm.matched_mask >> j & 1
            ]
            if not options:
                # All filtered partners are taken; fall back to the cheapest
                # remaining partner so the search can always progress.
                options = sorted(
                    (
                        j
                        for j in range(m)
                        if j != first and not pm.matched_mask >> j & 1
                    ),
                    key=lambda j: weights[first, j],
                )
            for j in options[: self.fetch_width]:
                child = _PreMatching(
                    pairs=pm.pairs + ((first, j),),
                    matched_mask=pm.matched_mask | 1 << first | 1 << j,
                    weight=pm.weight + float(weights[first, j]),
                )
                unmatched = m - child.matched_bits
                if unmatched <= HW6Decoder.MAX_NODES:
                    complete(child)
                else:
                    push(child)

        completions = 0

        def snapshot(iteration: int) -> None:
            if trace is not None:
                trace.append(
                    PipelineSnapshot(
                        iteration=iteration,
                        queue_sizes=tuple(len(q) for q in queues),
                        best_weight=best_weight,
                        completions=completions,
                    )
                )

        iterations = 1
        expand(_PreMatching(pairs=(), matched_mask=0, weight=0.0))
        snapshot(1)
        timed_out = False
        while any(queues):
            if iterations >= budget:
                timed_out = True
                break
            iterations += 1
            for queue in queues:
                if queue:
                    _score, _tb, pm = heapq.heappop(queue)
                    expand(pm)
            snapshot(iterations)
        if best_pairs is None:
            # Unreachable with min_candidates >= 1, but keep a safe
            # fallback: greedily complete the empty pre-matching.
            best_pairs, best_weight = self._greedy_fallback(weights)
        return best_pairs, best_weight, iterations, timed_out

    def _greedy_fallback(
        self, weights: np.ndarray
    ) -> tuple[list[tuple[int, int]], float]:
        """Pair nodes greedily by ascending weight (safety net)."""
        m = weights.shape[0]
        unmatched = set(range(m))
        pairs: list[tuple[int, int]] = []
        total = 0.0
        while unmatched:
            i = min(unmatched)
            unmatched.discard(i)
            j = min(unmatched, key=lambda k: weights[i, k])
            unmatched.discard(j)
            pairs.append((i, j))
            total += float(weights[i, j])
        return pairs, total
