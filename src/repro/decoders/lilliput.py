"""LILLIPUT-style lookup-table decoder (paper sections 2.3.2 and 5.6).

LILLIPUT programs a lookup table offline with MWPM decisions and indexes it
with the raw syndrome at runtime -- perfectly accurate (it *is* MWPM) but
exponentially expensive in memory: one entry per possible syndrome vector.
The paper reports 2 * 2^60 bytes for distance 5 with five rounds and
2 * 2^168-class sizes for distance 7, which is why the design stops at
distance 3 (or distance 5 with only two rounds).

This reproduction provides:

* a working LUT decoder for configurations whose table fits in memory
  (distance 3: 2^16 entries), programmed lazily by an MWPM teacher --
  semantically identical to an eagerly programmed table;
* :func:`lut_size_bytes`, the memory-cost model used in the scalability
  comparison of section 5.6 and the Table 4 "N/A" entries beyond d = 3.
"""

from __future__ import annotations

import numpy as np

from ..graphs.weights import GlobalWeightTable
from .base import DecodeResult, Decoder, validate_syndrome_batch
from .mwpm import MWPMDecoder

__all__ = ["LilliputDecoder", "lut_size_bytes"]

#: Largest LUT (in entries) this reproduction will materialise.
MAX_PRACTICAL_ENTRIES = 1 << 26


def lut_size_bytes(
    distance: int, rounds: int | None = None, entry_bytes: int = 2
) -> int:
    """Memory footprint of a LILLIPUT lookup table.

    One entry per possible per-basis syndrome vector: ``rounds`` rounds of
    ``(d^2 - 1)/2`` parity bits plus the final data-derived round.

    Args:
        distance: Code distance.
        rounds: Measured syndrome rounds (default: ``distance``).
        entry_bytes: Bytes per table entry (correction + metadata).

    Returns:
        Table size in bytes (astronomically large beyond small codes).
    """
    if rounds is None:
        rounds = distance
    bits = (rounds + 1) * (distance * distance - 1) // 2
    return entry_bytes * (1 << bits)


class LilliputDecoder(Decoder):
    """Lookup-table decoder programmed by MWPM.

    Args:
        gwt: Global Weight Table used by the MWPM teacher.
        num_detectors: Syndrome-vector length; the table has ``2^n`` logical
            entries.  Rejected when the table cannot fit in practice,
            reproducing LILLIPUT's scalability wall.
        structure: Pre-built neighbor structure for ``gwt``, forwarded to
            the MWPM teacher's sparse engine.
    """

    name = "LILLIPUT"

    def __init__(
        self, gwt: GlobalWeightTable, num_detectors: int, *, structure=None
    ) -> None:
        if (1 << num_detectors) > MAX_PRACTICAL_ENTRIES:
            raise MemoryError(
                f"a {num_detectors}-bit syndrome needs a 2^{num_detectors}-entry "
                "LUT; LILLIPUT does not scale to this configuration "
                "(paper section 5.6)"
            )
        self.num_detectors = num_detectors
        self._teacher = MWPMDecoder(gwt, measure_time=False, structure=structure)
        # Lazily programmed table: syndrome key -> (prediction, weight).
        self._table: dict[int, tuple[bool, float]] = {}

    @property
    def programmed_entries(self) -> int:
        """Number of LUT entries programmed so far."""
        return len(self._table)

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode by (lazily programmed) table lookup; exact MWPM."""
        key = 0
        for i in active:
            if i >= self.num_detectors:
                raise ValueError(f"detector {i} outside the {self.num_detectors}-bit table")
            key |= 1 << i
        cached = self._table.get(key)
        if cached is None:
            taught = self._teacher.decode_active(sorted(active))
            cached = (taught.prediction, taught.weight)
            self._table[key] = cached
        prediction, weight = cached
        # A real LUT answers in one access; model a single cycle.
        return DecodeResult(
            prediction=prediction, weight=weight, cycles=1, latency_ns=4.0
        )

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        Rows are packed into integer table keys with one vectorized
        shift-and-sum, deduplicated with ``np.unique``, and only the
        not-yet-programmed unique syndromes are sent to the MWPM teacher
        (itself via ``decode_batch``).  Results are identical to per-row
        :meth:`decode` -- every answer still models a single LUT access.
        """
        # Width is checked separately: vectors longer than the table are
        # tolerated when the extra bits are all zero (and trimmed).
        syndromes = validate_syndrome_batch(syndromes, None)
        n = syndromes.shape[1]
        if n > self.num_detectors:
            extra = np.nonzero(syndromes[:, self.num_detectors :].any(axis=0))[0]
            if extra.size:
                raise ValueError(
                    f"detector {self.num_detectors + int(extra[0])} outside "
                    f"the {self.num_detectors}-bit table"
                )
            syndromes = syndromes[:, : self.num_detectors]
            n = self.num_detectors
        keys = syndromes @ (np.uint64(1) << np.arange(n, dtype=np.uint64))
        unique_keys, first_rows, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        missing = [
            j for j, key in enumerate(unique_keys) if int(key) not in self._table
        ]
        if missing:
            taught = self._teacher.decode_batch(syndromes[first_rows[missing]])
            for j, result in zip(missing, taught):
                self._table[int(unique_keys[j])] = (result.prediction, result.weight)
        lut = [self._table[int(key)] for key in unique_keys]
        return [
            DecodeResult(
                prediction=lut[j][0], weight=lut[j][1], cycles=1, latency_ns=4.0
            )
            for j in inverse
        ]
