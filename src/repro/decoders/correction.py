"""From matchings to physical corrections.

A matching pairs syndrome defects; the *correction* the decoder must send
back to the control processor (paper Figure 1a) is the set of primitive
error mechanisms along the matched shortest paths.  This module expands a
matching into that edge set:

* each matched pair contributes its shortest path's primitive edges;
* an edge crossed an even number of times cancels (the corrections
  annihilate), exactly as Pauli corrections compose;
* the correction's logical effect is the XOR of the surviving edges'
  ``flips_observable`` flags, which by construction equals the decoder's
  reported prediction.

The expansion is what a control processor would use to update its Pauli
frame; the experiment harness does not need it (predictions suffice for
logical-error accounting), but tests use it to validate the
matching-to-parity bookkeeping end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graphs.decoding_graph import BOUNDARY, DecodingGraph

__all__ = [
    "PhysicalCorrection",
    "matching_to_correction",
    "primitive_edge_parities",
]


def primitive_edge_parities(
    graph: DecodingGraph,
) -> dict[tuple[int, int], bool]:
    """Observable-flip flag of each primitive (min-weight) edge.

    Keys are ``(u, v)`` with the boundary rewritten to the dense index
    ``graph.num_detectors`` and endpoints sorted -- the same edge selection
    the all-pairs Dijkstra uses, so path parities recompose exactly.
    """
    boundary = graph.num_detectors
    edge_parity: dict[tuple[int, int], bool] = {}
    edge_weight: dict[tuple[int, int], float] = {}
    for edge in graph.edges:
        u = edge.u
        v = boundary if edge.v == BOUNDARY else edge.v
        key = (min(u, v), max(u, v))
        if key not in edge_weight or edge.weight < edge_weight[key]:
            edge_weight[key] = edge.weight
            edge_parity[key] = edge.flips_observable
    return edge_parity


@dataclass
class PhysicalCorrection:
    """A set of primitive decoding-graph edges to apply as corrections.

    Attributes:
        edges: Surviving (odd-multiplicity) primitive edges, as normalised
            ``(u, v)`` pairs with the smaller detector first and
            :data:`BOUNDARY` second.
        flips_observable: Net logical effect of applying all edges.
    """

    edges: list[tuple[int, int]] = field(default_factory=list)
    flips_observable: bool = False

    def defect_set(self) -> list[int]:
        """Detectors flipped by this correction (endpoint parity)."""
        parity: dict[int, int] = {}
        for u, v in self.edges:
            for vertex in (u, v):
                if vertex != BOUNDARY:
                    parity[vertex] = parity.get(vertex, 0) ^ 1
        return sorted(vertex for vertex, bit in parity.items() if bit)


def matching_to_correction(
    graph: DecodingGraph, matching: list[tuple[int, int]]
) -> PhysicalCorrection:
    """Expand a matching into its primitive-edge correction.

    Args:
        graph: The decoding graph (provides shortest-path reconstruction
            and per-edge observable flags).
        matching: Matched pairs in detector-index terms, with
            :data:`BOUNDARY` as the second element of boundary matches
            (the :class:`~repro.decoders.base.DecodeResult` convention).

    Returns:
        The :class:`PhysicalCorrection`; its ``defect_set`` equals the
        matched detectors and its ``flips_observable`` equals the XOR of
        the matching's pair parities.
    """
    edge_parity = primitive_edge_parities(graph)
    boundary = graph.num_detectors
    multiplicity: dict[tuple[int, int], int] = {}
    for a, b in matching:
        for u, v in graph.shortest_path(a, b):
            du = boundary if u == BOUNDARY else u
            dv = boundary if v == BOUNDARY else v
            key = (min(du, dv), max(du, dv))
            multiplicity[key] = multiplicity.get(key, 0) + 1

    surviving: list[tuple[int, int]] = []
    flips = False
    for key, count in sorted(multiplicity.items()):
        if count % 2 == 0:
            continue
        flips ^= edge_parity[key]
        u, v = key
        if v == boundary:
            surviving.append((u, BOUNDARY))
        else:
            surviving.append((u, v))
    return PhysicalCorrection(edges=surviving, flips_observable=flips)
