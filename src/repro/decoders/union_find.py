"""Union-Find decoder -- the algorithm behind the AFS baseline.

The AFS decoder (paper section 2.3.3) trades accuracy for speed by
replacing MWPM with the Union-Find decoder of Delfosse and Nickerson: grow
clusters around syndrome defects until every cluster is *even* (contains an
even number of defects) or touches the boundary, then *peel* the grown
region to extract a correction.  Union-Find is almost-linear time but does
not minimise the total weight of the correction, which costs it 100x-1000x
in logical error rate relative to MWPM in the paper's target regime
(Figure 4, Table 4).

This implementation follows the standard algorithm:

1. every defect seeds a cluster; the virtual boundary is a special vertex;
2. odd, non-boundary clusters grow by half an edge per round across their
   entire vertex boundary; fully-grown edges merge clusters (union-find
   with parity and boundary flags);
3. once all clusters are even or boundary-connected, a spanning forest of
   each cluster's grown edges is peeled leaf-to-root, emitting the edges
   whose removal flips defect parity;
4. the predicted logical flip is the XOR of ``flips_observable`` over the
   emitted edges.
"""

from __future__ import annotations

import numpy as np

from ..graphs.decoding_graph import BOUNDARY, DecodingGraph
from .base import DecodeResult, Decoder, validate_syndrome_batch

__all__ = ["UnionFindDecoder"]


class _ClusterForest:
    """Union-find over graph vertices with defect parity and boundary flags."""

    def __init__(self, num_vertices: int, boundary_vertex: int) -> None:
        self.parent = list(range(num_vertices))
        self.rank = [0] * num_vertices
        self.parity = [0] * num_vertices
        self.touches_boundary = [False] * num_vertices
        self.touches_boundary[boundary_vertex] = True

    def find(self, v: int) -> int:
        root = v
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[v] != root:
            self.parent[v], v = root, self.parent[v]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.parity[ra] ^= self.parity[rb]
        self.touches_boundary[ra] = (
            self.touches_boundary[ra] or self.touches_boundary[rb]
        )
        return ra

    def is_active(self, root: int) -> bool:
        """A cluster keeps growing while odd and boundary-free."""
        return bool(self.parity[root]) and not self.touches_boundary[root]


class UnionFindDecoder(Decoder):
    """Cluster-growth + peeling decoder on the primitive decoding graph.

    Growth is *weighted* (as in AFS and the weighted Union-Find variant of
    Huang, Newman and Brown): an edge of weight ``w`` takes a number of
    growth steps proportional to ``w``, so likelier error mechanisms are
    traversed first.

    Args:
        graph: The decoding graph (primitive edges, not the all-pairs GWT).
        growth_resolution: Growth steps per unit of edge weight; higher
            values track weights more precisely at the cost of more
            rounds.  ``0`` selects *unweighted* growth (every edge takes
            one step, the original Union-Find formulation) -- useful for
            ablating the weighted variant AFS relies on.
    """

    name = "Union-Find (AFS)"

    def __init__(self, graph: DecodingGraph, *, growth_resolution: float = 2.0) -> None:
        if growth_resolution < 0:
            raise ValueError("growth_resolution must be >= 0")
        self.graph = graph
        self.syndrome_length = int(graph.num_detectors)
        self.growth_resolution = growth_resolution
        self._boundary = graph.num_detectors  # dense index of the boundary
        self._last_growth_rounds = 0
        # Dense edge list: (u, v, flips_observable), boundary rewritten.
        self._edges: list[tuple[int, int, bool]] = []
        self._lengths: list[int] = []
        self._incident: list[list[int]] = [
            [] for _ in range(graph.num_detectors + 1)
        ]
        for edge in graph.edges:
            u, v = edge.u, edge.v
            if v == BOUNDARY:
                v = self._boundary
            index = len(self._edges)
            self._edges.append((u, v, edge.flips_observable))
            if growth_resolution == 0:
                self._lengths.append(1)
            else:
                self._lengths.append(
                    max(1, round(edge.weight * growth_resolution))
                )
            self._incident[u].append(index)
            self._incident[v].append(index)
        # Array mirrors of the edge structures for the batched growth path.
        num_edges = len(self._edges)
        self._eu_arr = np.fromiter(
            (e[0] for e in self._edges), dtype=np.int64, count=num_edges
        )
        self._ev_arr = np.fromiter(
            (e[1] for e in self._edges), dtype=np.int64, count=num_edges
        )
        self._eflips_arr = np.fromiter(
            (e[2] for e in self._edges), dtype=bool, count=num_edges
        )
        self._len_arr = np.asarray(self._lengths, dtype=np.int64)
        counts = np.fromiter(
            (len(inc) for inc in self._incident),
            dtype=np.int64,
            count=len(self._incident),
        )
        self._inc_indptr = np.concatenate(([0], np.cumsum(counts)))
        self._inc_indices = np.fromiter(
            (e for inc in self._incident for e in inc),
            dtype=np.int64,
            count=int(counts.sum()),
        )
        # Padded incidence matrix over detector vertices only (the boundary
        # vertex has huge degree but can never be an *active* cluster
        # member, so the growth loop never looks it up).  A single padded
        # gather replaces the arange/repeat CSR expansion per round.
        det_counts = counts[:-1]
        max_deg = int(det_counts.max()) if det_counts.size else 0
        self._inc_pad = np.full(
            (max(len(self._incident) - 1, 1), max(max_deg, 1)),
            num_edges,
            dtype=np.int64,
        )
        for v, inc in enumerate(self._incident[:-1]):
            self._inc_pad[v, : len(inc)] = inc
        self._inc_mask = self._inc_pad != num_edges

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode by Union-Find cluster growth and peeling."""
        if not active:
            return DecodeResult(prediction=False)
        defects = set(active)
        grown = self._grow(defects)
        correction = self._peel(grown, defects)
        # Coarse AFS-style hardware latency model: one cycle per growth
        # round plus one per peeled edge, at the 250 MHz FPGA clock.  The
        # AFS paper reports tens of nanoseconds on average, which this
        # reproduces in order of magnitude.
        cycles = self._last_growth_rounds + len(correction)
        prediction = False
        weight = 0.0
        matching: list[tuple[int, int]] = []
        for index in correction:
            u, v, flips = self._edges[index]
            prediction ^= flips
            weight += 1.0
            if v == self._boundary:
                matching.append((u, BOUNDARY))
            else:
                matching.append((min(u, v), max(u, v)))
        return DecodeResult(
            prediction=prediction,
            matching=sorted(matching),
            weight=weight,
            cycles=cycles,
            latency_ns=cycles * 4.0,
        )

    #: Unique syndrome rows grown together per batched-growth call; bounds
    #: the (rows, vertices) and (rows, edges) working arrays.
    # Rows per growth chunk.  Moderate chunks keep the dense per-round
    # (rows, edges) state cache-resident and, combined with weight-sorted
    # chunk assignment, let light chunks drain in very few rounds, while
    # the sparse membership/chase machinery keeps per-round work bounded
    # by touched coordinates; sweeping d=7 batches showed a flat optimum
    # around 1k rows.
    _GROW_CHUNK_ROWS = 1024

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        The batch is deduplicated to its unique syndrome rows, then cluster
        growth runs for all unique rows at once as *frontier-array rounds*:
        each round resolves cluster roots by pointer jumping over a dense
        ``(rows, vertices)`` parent array, computes per-cluster defect
        parity with one ``bincount``, expands every active cluster's
        frontier through the incident-edge CSR, and merges newly grown
        edges with a vectorised hooking loop.  Rows whose clusters are all
        even or boundary-connected drop out of the working set, so the
        per-round cost tracks the surviving frontier, not the batch size.
        Peeling (cheap, output-sized) stays scalar per unique row.

        Results are bit-identical to per-row :meth:`decode`: the grown edge
        set depends only on the cluster partition (which is union-order
        independent) and per-row round counts replicate the scalar
        check-then-grow loop exactly.
        """
        syndromes = validate_syndrome_batch(syndromes, self.syndrome_length)
        num = syndromes.shape[0]
        if num == 0:
            return []
        nonempty = np.nonzero(syndromes.any(axis=1))[0]
        results: list[DecodeResult | None] = [None] * num
        if nonempty.size:
            # Dedup on bit-packed rows (unique on ~n/8 bytes per row beats
            # unique on n bools); representatives index the original rows.
            # A radix lexsort over the uint64 words is noticeably faster
            # than np.unique's void-compare sort.
            packed = np.packbits(syndromes[nonempty], axis=1)
            width = packed.shape[1]
            pad = (-width) % 8
            if pad:
                padded = np.zeros(
                    (packed.shape[0], width + pad), dtype=np.uint8
                )
                padded[:, :width] = packed
                packed = padded
            words = packed.view(np.uint64)
            sort_order = np.lexsort(words.T[::-1])
            sorted_words = words[sort_order]
            new_group = np.empty(sort_order.size, dtype=bool)
            new_group[0] = True
            np.any(
                sorted_words[1:] != sorted_words[:-1],
                axis=1,
                out=new_group[1:],
            )
            inverse = np.empty(sort_order.size, dtype=np.int64)
            inverse[sort_order] = np.cumsum(new_group) - 1
            rep_index = sort_order[new_group]
            unique_rows = syndromes[nonempty][rep_index]
            per_unique = self._decode_unique_rows(unique_rows)
            last_rounds = 0
            for pos, row in zip(nonempty, inverse.reshape(-1)):
                prediction, matching, weight, cycles, rounds = per_unique[row]
                last_rounds = rounds
                results[pos] = DecodeResult(
                    prediction=prediction,
                    matching=list(matching),
                    weight=weight,
                    cycles=cycles,
                    latency_ns=cycles * 4.0,
                )
            # Mirror the scalar loop, which leaves the counter at the last
            # non-empty row's growth rounds.
            self._last_growth_rounds = last_rounds
        for pos in range(num):
            if results[pos] is None:
                results[pos] = DecodeResult(prediction=False)
        return results  # type: ignore[return-value]

    def _decode_unique_rows(
        self, unique_rows: np.ndarray
    ) -> list[tuple[bool, list[tuple[int, int]], float, int, int]]:
        """Grow + peel each unique syndrome row; return result tuples."""
        num_unique = unique_rows.shape[0]
        out: list[tuple[bool, list[tuple[int, int]], float, int, int]] = (
            [None] * num_unique  # type: ignore[list-item]
        )
        # Group rows of similar weight into the same chunk: light chunks
        # drain in a few frontier rounds, and only the heavy tail keeps
        # iterating, instead of every chunk paying for its slowest row.
        order = np.argsort(unique_rows.sum(axis=1), kind="stable")
        sorted_rows = unique_rows[order]
        order_list = order.tolist()
        # Growth and peeling run per chunk (their dense per-round state
        # stays small); the correction pair lists are re-based to global
        # row indices so result assembly runs once over the whole set.
        corr_rows_parts: list[np.ndarray] = []
        corr_edges_parts: list[np.ndarray] = []
        rounds_all = np.zeros(num_unique, dtype=np.int64)
        for start in range(0, num_unique, self._GROW_CHUNK_ROWS):
            chunk = sorted_rows[start : start + self._GROW_CHUNK_ROWS]
            grown_rows, grown_edges, rounds = self._grow_batch(chunk)
            cr, ce = self._peel_batch(chunk, grown_rows, grown_edges)
            corr_rows_parts.append(cr + start)
            corr_edges_parts.append(ce)
            rounds_all[start : start + chunk.shape[0]] = rounds
        corr_rows = np.concatenate(corr_rows_parts)
        corr_edges = np.concatenate(corr_edges_parts)
        corr_counts = np.bincount(corr_rows, minlength=num_unique)
        cycles_arr = rounds_all + corr_counts
        # Assemble predictions and matching pairs for every row with array
        # ops; one lexsort groups each row's pairs in (row, lo, hi) order,
        # so no per-row Python sort is needed.
        if corr_edges.size:
            flips = self._eflips_arr[corr_edges]
            flip_counts = np.bincount(corr_rows[flips], minlength=num_unique)
            preds = (flip_counts & 1).astype(bool).tolist()
            mu = self._eu_arr[corr_edges]
            mv = self._ev_arr[corr_edges]
            at_boundary = mv == self._boundary
            lo = np.where(at_boundary, mu, np.minimum(mu, mv))
            hi = np.where(at_boundary, BOUNDARY, np.maximum(mu, mv))
            grouped = np.lexsort((hi, lo, corr_rows))
            pairs = list(zip(lo[grouped].tolist(), hi[grouped].tolist()))
        else:
            preds = [False] * num_unique
            pairs = []
        offsets = np.concatenate(([0], np.cumsum(corr_counts))).tolist()
        counts_list = corr_counts.tolist()
        cycles_list = cycles_arr.tolist()
        rounds_list = rounds_all.tolist()
        for i in range(num_unique):
            out[order_list[i]] = (
                preds[i],
                pairs[offsets[i] : offsets[i + 1]],
                float(counts_list[i]),
                cycles_list[i],
                rounds_list[i],
            )
        return out

    def _grow_batch(
        self, chunk: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Grow clusters for every row of ``chunk`` simultaneously.

        Returns ``(grown_rows, grown_edges, rounds)``: row ``i``'s
        fully-grown edge set is ``grown_edges[grown_rows == i]``, and
        ``rounds`` holds per-row growth-round counts, exactly matching
        what :meth:`_grow` computes row by row.  The grown pair list may
        contain duplicates (an edge reached from both endpoints in the
        same round); :meth:`_peel_batch` is duplicate-tolerant.
        """
        num_rows = chunk.shape[0]
        n = self.graph.num_detectors
        num_vertices = n + 1
        num_edges = len(self._edges)
        rounds = np.zeros(num_rows, dtype=np.int64)
        _empty = np.zeros(0, dtype=np.int64)
        out_rows: list[np.ndarray] = []
        out_edges: list[np.ndarray] = []
        if num_edges == 0:
            return _empty, _empty, rounds
        # Working arrays.  Finished rows are marked in ``finished`` and only
        # compacted away once enough of them accumulate, so the common case
        # (a handful of rows finishing per iteration) does not pay a full
        # copy of the (rows, edges) state every round.  Edges completing in
        # a round are emitted to the output lists immediately, so no final
        # scan of the growth matrix is ever needed.
        # ``parent`` is a lazy parent-pointer forest: it is never globally
        # compressed -- readers chase exactly the sparse coordinates they
        # need (with writeback, so chains stay shallow).
        parent = np.tile(np.arange(num_vertices, dtype=np.int32), (num_rows, 1))
        growth = np.zeros((num_rows, num_edges), dtype=np.int32)
        open_edges = np.ones((num_rows, num_edges), dtype=bool)
        row_ids = np.arange(num_rows, dtype=np.int64)
        finished = np.zeros(num_rows, dtype=bool)
        max_rounds = max(self._lengths, default=1) * (num_edges + 2)
        int_max = np.iinfo(np.int64).max
        # Cluster membership as sparse (row, vertex) coordinates, seeded by
        # the defects -- which stay a prefix of the list (length
        # ``dr_size``) under appends and filtering.  ``member`` mirrors the
        # list as a bitmap so endpoints of grown edges are appended only on
        # first sight: without the filter the list accumulates one copy per
        # completed incident edge (~2.5x at d = 7) and the per-round chase
        # pays for every copy.
        ic_r, ic_v = np.nonzero(chunk)
        dr_size = ic_r.size
        member = np.zeros((num_rows, num_vertices), dtype=bool)
        member[ic_r, ic_v] = True
        # Scratch bitmap for the per-round first-sight scan; always all-False
        # between rounds.
        newb = np.zeros(num_rows * num_vertices, dtype=bool)
        # Per-row constants, shrunk by slicing at compaction.
        row_offsets = np.arange(num_rows, dtype=np.int64) * num_vertices
        bnd_verts = np.full(num_rows, n, dtype=ic_v.dtype)
        # Between merge events the partition -- and therefore each row's
        # frontier -- is static, so a row whose nearest frontier edge is
        # ``delta`` steps from completion can take all ``delta`` growth
        # rounds at once.  Every loop iteration below thus completes at
        # least one edge per live row, bounding iterations by the edge
        # count instead of by the (weighted) round count.
        for _it in range(num_edges + 4):
            live_rows = parent.shape[0]
            if live_rows == 0:
                break
            # Members of finished rows never matter again; pruning them
            # keeps the chase set proportional to the live frontier.
            if finished.any():
                alive = ~finished[ic_r]
                dr_size = int(np.count_nonzero(alive[:dr_size]))
                ic_r = ic_r[alive]
                ic_v = ic_v[alive]
            # One combined chase resolves every root this round needs: all
            # member coords (whose prefix is the defect list) plus each
            # row's boundary vertex.
            ic_base = ic_r * num_vertices
            roots_c = self._chase_roots(
                parent,
                np.concatenate((ic_base, row_offsets)),
                np.concatenate((ic_v, bnd_verts)),
            )
            ic_root = roots_c[: ic_r.size]
            broots = roots_c[ic_r.size :]
            # Per-component defect parity scattered at the roots; the
            # boundary component never grows.
            parity = np.zeros(live_rows * num_vertices, dtype=bool)
            np.logical_xor.at(
                parity, ic_base[:dr_size] + ic_root[:dr_size], True
            )
            parity[row_offsets + broots] = False
            # Active (row, vertex) pairs: cluster members whose root is odd.
            act = parity[ic_base + ic_root]
            ar = ic_r[act]
            av = ic_v[act]
            row_live = np.zeros(live_rows, dtype=bool)
            row_live[ar] = True
            finished |= ~row_live
            if not row_live.any():
                break
            if int(finished.sum()) * 4 >= live_rows:
                keep = np.nonzero(~finished)[0]
                new_of = np.full(live_rows, -1, dtype=np.int64)
                new_of[keep] = np.arange(keep.size, dtype=np.int64)
                parent = np.ascontiguousarray(parent[keep])
                growth = growth[keep]
                open_edges = open_edges[keep]
                member = np.ascontiguousarray(member[keep])
                row_ids = row_ids[keep]
                icmask = ~finished[ic_r]
                dr_size = int(np.count_nonzero(icmask[:dr_size]))
                ic_r = new_of[ic_r[icmask]]
                ic_v = ic_v[icmask]
                ar = new_of[ar]
                live_rows = keep.size
                row_offsets = row_offsets[:live_rows]
                bnd_verts = bnd_verts[:live_rows]
                finished = np.zeros(live_rows, dtype=bool)
                row_live = np.zeros(live_rows, dtype=bool)
                row_live[ar] = True
            # Frontier: not-fully-grown edges incident to active vertices.
            # The expanded (row, edge) list is *not* deduplicated -- every
            # operation below is duplicate-tolerant (duplicates of a pair
            # carry identical values), which is far cheaper than building
            # and rescanning a dense dedup bitmap each round.
            em = self._inc_pad[av]
            valid = self._inc_mask[av]
            edge_idx = em[valid]
            frontier_rows = np.broadcast_to(ar[:, None], em.shape)[valid]
            # Flat (row, edge) indices are built once and shared by every
            # fancy gather/scatter on the two (rows, edges) matrices.
            growth_flat = growth.reshape(-1)
            open_flat = open_edges.reshape(-1)
            cand_flat = frontier_rows * num_edges + edge_idx
            is_open = open_flat[cand_flat]
            f_flat = cand_flat[is_open]
            f_rows = frontier_rows[is_open]
            f_edges = edge_idx[is_open]
            # Per-row skip: the scalar loop would spend ``remaining`` rounds
            # before the row's nearest edge completes; take them all now.
            remaining = self._len_arr[f_edges] - growth_flat[f_flat]
            row_delta = np.full(live_rows, int_max, dtype=np.int64)
            np.minimum.at(row_delta, f_rows, remaining)
            stuck = row_live & (row_delta == int_max)
            if stuck.any():
                # Odd clusters with no open incident edges can never merge;
                # the scalar loop burns its defensive round budget on them.
                rounds[row_ids[np.nonzero(stuck)[0]]] = max_rounds
                finished |= stuck
                row_live &= ~stuck
                if not row_live.any():
                    break
            rounds[row_ids[row_live]] += row_delta[row_live]
            # Duplicate (row, edge) pairs write the same value: fancy
            # in-place add is buffered (one read-modify-write per position),
            # and ``row_delta`` is constant within a row.
            growth_flat[f_flat] += row_delta[f_rows]
            done = remaining == row_delta[f_rows]
            g_rows = f_rows[done]
            g_edges = f_edges[done]
            open_flat[f_flat[done]] = False
            out_rows.append(row_ids[g_rows])
            out_edges.append(g_edges)
            g_u = self._eu_arr[g_edges]
            g_v = self._ev_arr[g_edges]
            # First-sight filter: the ``member`` bitmap drops pairs already
            # on the list from earlier rounds, and a scatter into the
            # ``newb`` scratch + flatnonzero collapses the same endpoint
            # reached through several edges this round (cheaper than a
            # hash/sort unique -- the scan is one pass over a bool matrix).
            nk = np.concatenate((g_rows, g_rows)) * num_vertices
            nk += np.concatenate((g_u, g_v))
            member_flat = member.reshape(-1)
            newb[nk[~member_flat[nk]]] = True
            new_keys = np.flatnonzero(newb[: live_rows * num_vertices])
            newb[new_keys] = False
            member_flat[new_keys] = True
            ic_r = np.concatenate((ic_r, new_keys // num_vertices))
            ic_v = np.concatenate((ic_v, new_keys % num_vertices))
            self._union_sparse(parent, g_rows, g_u, g_v)
        if not out_rows:
            return _empty, _empty, rounds
        return np.concatenate(out_rows), np.concatenate(out_edges), rounds

    def _peel_batch(
        self,
        chunk: np.ndarray,
        grown_rows: np.ndarray,
        grown_edges: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Peel every row's grown region at once.

        Builds the same canonical spanning forests as :meth:`_peel` --
        layered BFS from each component's root (the boundary when present,
        else the smallest vertex), smallest-index edge into the previous
        layer -- then emits, level by level from the deepest, the tree
        edge above every vertex whose subtree carries odd defect parity.
        Returns ``(corr_rows, corr_edges)`` in no particular order; each
        (row, edge) pair appears exactly once.
        """
        num_rows = chunk.shape[0]
        n = self.graph.num_detectors
        num_vertices = n + 1
        _empty = np.zeros(0, dtype=np.int64)
        if grown_rows.size == 0:
            return _empty, _empty
        gr = grown_rows
        ge = grown_edges
        gu = self._eu_arr[ge]
        gv = self._ev_arr[ge]
        # Component roots via hooking unions in *priority* space, where the
        # boundary vertex maps to 0 so it always wins root selection and
        # every other vertex keeps its relative order (v -> v + 1).  The
        # resulting root is then exactly "boundary if present, else the
        # smallest vertex of the component".
        pu = (gu + 1) % num_vertices
        pv = (gv + 1) % num_vertices
        parent = np.tile(np.arange(num_vertices, dtype=np.int32), (num_rows, 1))
        self._union_sparse(parent, gr, pu, pv)
        # BFS layers over the grown subgraph from each component root.  The
        # vertices discovered at each layer are remembered so the peel
        # phase can walk sparse per-layer vertex lists instead of scanning
        # the dense (rows, vertices) matrix once per layer.
        dist = np.full((num_rows, num_vertices), -1, dtype=np.int32)
        root_prio = self._chase_roots(parent, gr * num_vertices, pu)
        root_vert = (root_prio.astype(np.int64) + num_vertices - 1) % num_vertices
        dist[gr, root_vert] = 0
        int_max = np.iinfo(np.int64).max
        parent_edge = np.full(num_rows * num_vertices, int_max, dtype=np.int64)
        seen = np.zeros(num_rows * num_vertices, dtype=bool)
        layers: list[tuple[np.ndarray, np.ndarray]] = []
        # The working edge set shrinks as both endpoints get discovered:
        # an edge is dropped once it can never classify a new vertex, so
        # later (deeper) layers scan only the still-unreached fringe.
        wr, wu, wv, we = gr, gu, gv, ge
        for layer in range(num_vertices + 1):
            du = dist[wr, wu]
            dv = dist[wr, wv]
            forward = (du == layer) & (dv == -1)
            backward = (dv == layer) & (du == -1)
            if not (forward.any() or backward.any()):
                break
            cand_rows = np.concatenate((wr[forward], wr[backward]))
            cand_verts = np.concatenate((wv[forward], wu[backward]))
            cand_edges = np.concatenate((we[forward], we[backward]))
            keys = cand_rows * num_vertices + cand_verts
            np.minimum.at(parent_edge, keys, cand_edges)
            dist[cand_rows, cand_verts] = layer + 1
            # Scatter/flatnonzero dedup of the layer's keys -- cheaper than
            # a sort-based unique, and the scratch resets via the hits only.
            seen[keys] = True
            uniq = np.flatnonzero(seen)
            seen[uniq] = False
            layers.append((uniq // num_vertices, uniq % num_vertices))
            keep = ((du == -1) | (dv == -1)) & ~forward & ~backward
            wr = wr[keep]
            wu = wu[keep]
            wv = wv[keep]
            we = we[keep]
        # Peel deepest layer first: a vertex emits its parent edge exactly
        # when its subtree holds odd defect parity; the emission toggles the
        # parent, so parities are final by the time a layer is processed.
        parity = np.zeros((num_rows, num_vertices), dtype=bool)
        parity[:, :n] = chunk
        parity_flat = parity.reshape(-1)
        corr_rows: list[np.ndarray] = []
        corr_edges: list[np.ndarray] = []
        for rows_k, verts_k in reversed(layers):
            has_defect = parity[rows_k, verts_k]
            if not has_defect.any():
                continue
            rr = rows_k[has_defect]
            vv = verts_k[has_defect]
            edges = parent_edge[rr * num_vertices + vv]
            corr_rows.append(rr)
            corr_edges.append(edges)
            parents = self._eu_arr[edges] + self._ev_arr[edges] - vv
            np.logical_xor.at(
                parity_flat, rr * num_vertices + parents, True
            )
        if not corr_rows:
            return _empty, _empty
        return np.concatenate(corr_rows), np.concatenate(corr_edges)

    @staticmethod
    def _chase_roots(
        parent: np.ndarray, base: np.ndarray, verts: np.ndarray
    ) -> np.ndarray:
        """Resolve roots for sparse coords; path-compress them in place.

        ``base`` holds precomputed flat row offsets (``row * num_vertices``)
        and ``verts`` the vertex of each coordinate.  The resolved roots are
        written back at the queried coordinates, so repeated chases over
        overlapping coordinate sets stay shallow.
        """
        flat = parent.reshape(-1)
        idx = base + verts
        cur = flat[idx]
        nxt = flat[base + cur]
        moved = nxt != cur
        if not moved.any():
            return cur  # every queried vertex already points at its root
        # Most coords converge after one jump (writeback compression keeps
        # trees shallow); keep chasing only the lanes that still move.
        cur = nxt
        sel0 = np.nonzero(moved)[0]
        sel = sel0
        sbase = base[sel]
        scur = cur[sel]
        while True:
            snxt = flat[sbase + scur]
            cur[sel] = snxt
            smoved = snxt != scur
            if not smoved.any():
                break
            sel = sel[smoved]
            sbase = sbase[smoved]
            scur = snxt[smoved]
        # Only lanes that moved need compressing; the rest already point
        # at their root.
        flat[idx[sel0]] = cur[sel0]
        return cur

    @classmethod
    def _union_sparse(
        cls,
        parent: np.ndarray,
        rows: np.ndarray,
        va: np.ndarray,
        vb: np.ndarray,
    ) -> None:
        """Union the ``(row, va, vb)`` pairs into a parent-pointer matrix.

        Links always point the larger root at the smaller one, keeping each
        component's smallest vertex as its root (the forest stays acyclic
        because parents strictly decrease).  Only the pair endpoints are
        ever chased -- the matrix as a whole is *not* kept compressed, so
        other readers must resolve their own coordinates via
        :meth:`_chase_roots`.
        """
        num_vertices = parent.shape[1]
        flat = parent.reshape(-1)
        base = rows * num_vertices
        base2 = np.concatenate((base, base))
        verts2 = np.concatenate((va, vb))
        while True:
            r = cls._chase_roots(parent, base2, verts2)
            nv = r.size // 2
            ra = r[:nv]
            rb = r[nv:]
            unequal = ra != rb
            if not unequal.any():
                return
            ua = ra[unequal]
            ub = rb[unequal]
            hi = np.maximum(ua, ub)
            lo = np.minimum(ua, ub)
            np.minimum.at(flat, base2[:nv][unequal] + hi, lo)
            # A pair whose endpoints already share a root stays merged when
            # other trees link; only just-linked pairs can still disagree
            # (several links may race for the same root), so shrink to them.
            keep = np.concatenate((unequal, unequal))
            base2 = base2[keep]
            verts2 = verts2[keep]

    # ------------------------------------------------------------------
    # Phase 1: cluster growth
    # ------------------------------------------------------------------

    def _grow(self, defects: set[int]) -> set[int]:
        """Grow clusters until even/boundary; return fully-grown edge set."""
        self._last_growth_rounds = 0
        n = self.graph.num_detectors + 1
        forest = _ClusterForest(n, self._boundary)
        for d in defects:
            forest.parity[d] = 1
        growth = [0] * len(self._edges)
        # Vertices currently inside some cluster (seeded by the defects).
        in_cluster = set(defects)
        grown: set[int] = set()
        # Bound the loop defensively; each round either merges clusters or
        # grows edges, so termination is guaranteed well before this.
        max_rounds = max(self._lengths, default=1) * (len(self._edges) + 2)
        for _round in range(max_rounds):
            active_roots = {
                forest.find(v) for v in in_cluster
            }
            active_roots = {r for r in active_roots if forest.is_active(r)}
            if not active_roots:
                break
            self._last_growth_rounds += 1
            # Grow all boundary edges of active clusters by one step.
            to_grow: set[int] = set()
            for v in list(in_cluster):
                if forest.find(v) not in active_roots:
                    continue
                for index in self._incident[v]:
                    if growth[index] < self._lengths[index]:
                        to_grow.add(index)
            newly_grown: list[int] = []
            for index in to_grow:
                growth[index] += 1
                if growth[index] >= self._lengths[index]:
                    newly_grown.append(index)
            for index in newly_grown:
                grown.add(index)
                u, v, _flips = self._edges[index]
                in_cluster.update((u, v))
                forest.union(u, v)
        return grown

    # ------------------------------------------------------------------
    # Phase 2: peeling
    # ------------------------------------------------------------------

    def _peel(self, grown: set[int], defects: set[int]) -> list[int]:
        """Peel spanning forests of the grown region; return correction.

        The spanning forest is *canonical*: layered BFS from each
        component's root (the boundary when present, else the smallest
        vertex), with every newly reached vertex adopting the
        smallest-index grown edge into the previous layer.  The emitted
        correction is therefore a function of the grown edge set alone --
        independent of set-iteration or traversal order -- which keeps this
        scalar path bit-identical to the batched :meth:`_peel_batch`.
        """
        # Build adjacency restricted to grown edges.
        adjacency: dict[int, list[tuple[int, int]]] = {}
        for index in sorted(grown):
            u, v, _flips = self._edges[index]
            adjacency.setdefault(u, []).append((v, index))
            adjacency.setdefault(v, []).append((u, index))
        visited: set[int] = set()
        correction: list[int] = []
        syndrome = set(defects)
        for seed in sorted(adjacency):
            if seed in visited:
                continue
            # Collect the connected component.
            component = {seed}
            stack = [seed]
            while stack:
                v = stack.pop()
                for w, _index in adjacency[v]:
                    if w not in component:
                        component.add(w)
                        stack.append(w)
            visited |= component
            # Spanning tree rooted at the boundary when present, so that
            # leftover odd parity is absorbed there.
            root = self._boundary if self._boundary in component else seed
            parent_of: dict[int, int] = {}
            ordered = [root]
            frontier = [root]
            reached = {root}
            while frontier:
                discovered: dict[int, int] = {}
                for v in frontier:
                    for w, index in adjacency[v]:
                        if w in reached:
                            continue
                        best = discovered.get(w)
                        if best is None or index < best:
                            discovered[w] = index
                frontier = sorted(discovered)
                for w in frontier:
                    reached.add(w)
                    parent_of[w] = discovered[w]
                    ordered.append(w)
            # Peel children-first: emit the tree edge above each vertex that
            # still carries a defect, toggling the parent's defect state.
            for v in reversed(ordered):
                if v == root or v not in syndrome:
                    continue
                index = parent_of[v]
                u, w, _flips = self._edges[index]
                parent = u + w - v
                correction.append(index)
                syndrome.discard(v)
                if parent != self._boundary:
                    if parent in syndrome:
                        syndrome.discard(parent)
                    else:
                        syndrome.add(parent)
        return correction
