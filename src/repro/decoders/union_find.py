"""Union-Find decoder -- the algorithm behind the AFS baseline.

The AFS decoder (paper section 2.3.3) trades accuracy for speed by
replacing MWPM with the Union-Find decoder of Delfosse and Nickerson: grow
clusters around syndrome defects until every cluster is *even* (contains an
even number of defects) or touches the boundary, then *peel* the grown
region to extract a correction.  Union-Find is almost-linear time but does
not minimise the total weight of the correction, which costs it 100x-1000x
in logical error rate relative to MWPM in the paper's target regime
(Figure 4, Table 4).

This implementation follows the standard algorithm:

1. every defect seeds a cluster; the virtual boundary is a special vertex;
2. odd, non-boundary clusters grow by half an edge per round across their
   entire vertex boundary; fully-grown edges merge clusters (union-find
   with parity and boundary flags);
3. once all clusters are even or boundary-connected, a spanning forest of
   each cluster's grown edges is peeled leaf-to-root, emitting the edges
   whose removal flips defect parity;
4. the predicted logical flip is the XOR of ``flips_observable`` over the
   emitted edges.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graphs.decoding_graph import BOUNDARY, DecodingGraph
from .base import DecodeResult, Decoder, validate_syndrome_batch

__all__ = ["UnionFindDecoder"]


class _ClusterForest:
    """Union-find over graph vertices with defect parity and boundary flags."""

    def __init__(self, num_vertices: int, boundary_vertex: int) -> None:
        self.parent = list(range(num_vertices))
        self.rank = [0] * num_vertices
        self.parity = [0] * num_vertices
        self.touches_boundary = [False] * num_vertices
        self.touches_boundary[boundary_vertex] = True

    def find(self, v: int) -> int:
        root = v
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[v] != root:
            self.parent[v], v = root, self.parent[v]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.parity[ra] ^= self.parity[rb]
        self.touches_boundary[ra] = (
            self.touches_boundary[ra] or self.touches_boundary[rb]
        )
        return ra

    def is_active(self, root: int) -> bool:
        """A cluster keeps growing while odd and boundary-free."""
        return bool(self.parity[root]) and not self.touches_boundary[root]


class UnionFindDecoder(Decoder):
    """Cluster-growth + peeling decoder on the primitive decoding graph.

    Growth is *weighted* (as in AFS and the weighted Union-Find variant of
    Huang, Newman and Brown): an edge of weight ``w`` takes a number of
    growth steps proportional to ``w``, so likelier error mechanisms are
    traversed first.

    Args:
        graph: The decoding graph (primitive edges, not the all-pairs GWT).
        growth_resolution: Growth steps per unit of edge weight; higher
            values track weights more precisely at the cost of more
            rounds.  ``0`` selects *unweighted* growth (every edge takes
            one step, the original Union-Find formulation) -- useful for
            ablating the weighted variant AFS relies on.
    """

    name = "Union-Find (AFS)"

    def __init__(self, graph: DecodingGraph, *, growth_resolution: float = 2.0) -> None:
        if growth_resolution < 0:
            raise ValueError("growth_resolution must be >= 0")
        self.graph = graph
        self.syndrome_length = int(graph.num_detectors)
        self.growth_resolution = growth_resolution
        self._boundary = graph.num_detectors  # dense index of the boundary
        self._last_growth_rounds = 0
        # Dense edge list: (u, v, flips_observable), boundary rewritten.
        self._edges: list[tuple[int, int, bool]] = []
        self._lengths: list[int] = []
        self._incident: list[list[int]] = [
            [] for _ in range(graph.num_detectors + 1)
        ]
        for edge in graph.edges:
            u, v = edge.u, edge.v
            if v == BOUNDARY:
                v = self._boundary
            index = len(self._edges)
            self._edges.append((u, v, edge.flips_observable))
            if growth_resolution == 0:
                self._lengths.append(1)
            else:
                self._lengths.append(
                    max(1, round(edge.weight * growth_resolution))
                )
            self._incident[u].append(index)
            self._incident[v].append(index)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode by Union-Find cluster growth and peeling."""
        if not active:
            return DecodeResult(prediction=False)
        defects = set(active)
        grown = self._grow(defects)
        correction = self._peel(grown, defects)
        # Coarse AFS-style hardware latency model: one cycle per growth
        # round plus one per peeled edge, at the 250 MHz FPGA clock.  The
        # AFS paper reports tens of nanoseconds on average, which this
        # reproduces in order of magnitude.
        cycles = self._last_growth_rounds + len(correction)
        prediction = False
        weight = 0.0
        matching: list[tuple[int, int]] = []
        for index in correction:
            u, v, flips = self._edges[index]
            prediction ^= flips
            weight += 1.0
            if v == self._boundary:
                matching.append((u, BOUNDARY))
            else:
                matching.append((min(u, v), max(u, v)))
        return DecodeResult(
            prediction=prediction,
            matching=sorted(matching),
            weight=weight,
            cycles=cycles,
            latency_ns=cycles * 4.0,
        )

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        Cluster growth is inherently sequential per syndrome (each round
        depends on the merges of the previous one), so the speedup here
        comes from extracting every row's active indices with a single
        ``np.nonzero`` instead of one scan per row.  Results are identical
        to per-row :meth:`decode`.
        """
        syndromes = validate_syndrome_batch(syndromes, self.syndrome_length)
        num = syndromes.shape[0]
        rows, cols = np.nonzero(syndromes)
        counts = np.bincount(rows, minlength=num)
        splits = np.split(cols, np.cumsum(counts)[:-1])
        return [
            self.decode_active([int(i) for i in active])
            if active.size
            else DecodeResult(prediction=False)
            for active in splits
        ]

    # ------------------------------------------------------------------
    # Phase 1: cluster growth
    # ------------------------------------------------------------------

    def _grow(self, defects: set[int]) -> set[int]:
        """Grow clusters until even/boundary; return fully-grown edge set."""
        self._last_growth_rounds = 0
        n = self.graph.num_detectors + 1
        forest = _ClusterForest(n, self._boundary)
        for d in defects:
            forest.parity[d] = 1
        growth = [0] * len(self._edges)
        # Vertices currently inside some cluster (seeded by the defects).
        in_cluster = set(defects)
        grown: set[int] = set()
        # Bound the loop defensively; each round either merges clusters or
        # grows edges, so termination is guaranteed well before this.
        max_rounds = max(self._lengths, default=1) * (len(self._edges) + 2)
        for _round in range(max_rounds):
            active_roots = {
                forest.find(v) for v in in_cluster
            }
            active_roots = {r for r in active_roots if forest.is_active(r)}
            if not active_roots:
                break
            self._last_growth_rounds += 1
            # Grow all boundary edges of active clusters by one step.
            to_grow: set[int] = set()
            for v in list(in_cluster):
                if forest.find(v) not in active_roots:
                    continue
                for index in self._incident[v]:
                    if growth[index] < self._lengths[index]:
                        to_grow.add(index)
            newly_grown: list[int] = []
            for index in to_grow:
                growth[index] += 1
                if growth[index] >= self._lengths[index]:
                    newly_grown.append(index)
            for index in newly_grown:
                grown.add(index)
                u, v, _flips = self._edges[index]
                in_cluster.update((u, v))
                forest.union(u, v)
        return grown

    # ------------------------------------------------------------------
    # Phase 2: peeling
    # ------------------------------------------------------------------

    def _peel(self, grown: set[int], defects: set[int]) -> list[int]:
        """Peel spanning forests of the grown region; return correction."""
        # Build adjacency restricted to grown edges.
        adjacency: dict[int, list[tuple[int, int]]] = {}
        for index in grown:
            u, v, _flips = self._edges[index]
            adjacency.setdefault(u, []).append((v, index))
            adjacency.setdefault(v, []).append((u, index))
        visited: set[int] = set()
        correction: list[int] = []
        syndrome = set(defects)
        for seed in sorted(adjacency):
            if seed in visited:
                continue
            # Collect the connected component.
            component = {seed}
            queue = deque([seed])
            while queue:
                v = queue.popleft()
                for w, _index in adjacency[v]:
                    if w not in component:
                        component.add(w)
                        queue.append(w)
            visited |= component
            # Spanning tree rooted at the boundary when present, so that
            # leftover odd parity is absorbed there.
            root = self._boundary if self._boundary in component else seed
            parent_of: dict[int, tuple[int, int]] = {}
            ordered = [root]
            queue = deque([root])
            seen = {root}
            while queue:
                v = queue.popleft()
                for w, index in adjacency[v]:
                    if w in seen:
                        continue
                    seen.add(w)
                    parent_of[w] = (v, index)
                    ordered.append(w)
                    queue.append(w)
            # Peel children-first: emit the tree edge above each vertex that
            # still carries a defect, toggling the parent's defect state.
            for v in reversed(ordered):
                if v == root or v not in syndrome:
                    continue
                parent, index = parent_of[v]
                correction.append(index)
                syndrome.discard(v)
                if parent != self._boundary:
                    if parent in syndrome:
                        syndrome.discard(parent)
                    else:
                        syndrome.add(parent)
        return correction
