"""Clique-style hierarchical decoder (paper sections 2.3.4 and 5.6).

The Clique decoder is a hierarchical design: a tiny in-fridge pre-decoder
handles the *common case* -- isolated errors whose defects can be paired
locally without ambiguity -- and everything else falls back to a software
MWPM decoder.  The paper highlights two weaknesses that this reproduction
preserves:

* the fallback path is not real-time (it is the software MWPM decoder, so
  hard syndromes dominate the critical path), and
* greedy local pairing is not globally optimal, costing up to ~3.8x in
  logical error rate versus MWPM (Table 4).

The pre-decoder model: a defect is *locally explainable* when it has
exactly one adjacent defect on the primitive decoding graph (mutually) --
those two are paired -- or no adjacent defects but a direct boundary edge
-- it is matched to the boundary.  If every defect is consumed this way the
syndrome was decoded entirely by the pre-decoder; otherwise the remaining
defects are re-decoded with MWPM and the shot is flagged as having missed
the real-time path.

This is exactly a two-tier :class:`~repro.decoders.cascade.Cascade`
(:class:`~repro.decoders.cascade.PredecodeTier` over a terminal MWPM
tier), and since PR 10 it is built as one: routing, partial-result
merging and per-tier telemetry live in the cascade subsystem rather
than in a private fallback loop here.
"""

from __future__ import annotations

import numpy as np

from ..graphs.decoding_graph import DecodingGraph
from ..graphs.weights import GlobalWeightTable
from .base import DecodeResult, Decoder, validate_syndrome_batch
from .cascade import Cascade, DecoderTier, PredecodeTier
from .mwpm import MWPMDecoder

__all__ = ["CliqueDecoder"]


class CliqueDecoder(Decoder):
    """Greedy local pre-decoder with software-MWPM fallback.

    Args:
        graph: Primitive decoding graph (defines locality).
        gwt: Global Weight Table for the MWPM fallback.
        structure: Pre-built neighbor structure for ``gwt``, forwarded to
            the MWPM fallback's sparse engine.
    """

    name = "Clique+MWPM"

    def __init__(
        self,
        graph: DecodingGraph,
        gwt: GlobalWeightTable,
        *,
        structure=None,
    ) -> None:
        self.graph = graph
        self.syndrome_length = int(graph.num_detectors)
        self.fallback = MWPMDecoder(gwt, measure_time=True, structure=structure)
        #: Whether the last decode stayed entirely in the pre-decoder.
        self.last_was_local = True
        self._predecode = PredecodeTier(graph)
        self._cascade = Cascade(
            [self._predecode, DecoderTier(self.fallback, name="mwpm")]
        )
        #: Per-tier routed/solved/escalated/latency counters.
        self.stats = self._cascade.stats

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode locally where unambiguous; fall back to MWPM otherwise."""
        syndrome = np.zeros((1, self.syndrome_length), dtype=bool)
        if len(active):
            syndrome[0, list(active)] = True
        results, tiers = self._cascade.run(syndrome)
        self.last_was_local = tiers[0] == self._predecode.name
        return results[0]

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        The pre-decoder tier runs one vectorized pairing round over
        every defect of every shot at once (exact -- see
        :class:`~repro.decoders.cascade.PredecodeTier`), and all
        hard-to-decode shots escalate their residual defects to one
        batched terminal-MWPM solve.  Results are identical to per-row
        :meth:`decode`, including the ``last_was_local`` flag of the
        final row.
        """
        syndromes = validate_syndrome_batch(syndromes, self.syndrome_length)
        results, tiers = self._cascade.run(syndromes)
        self.last_was_local = not tiers or tiers[-1] == self._predecode.name
        return results
