"""Clique-style hierarchical decoder (paper sections 2.3.4 and 5.6).

The Clique decoder is a hierarchical design: a tiny in-fridge pre-decoder
handles the *common case* -- isolated errors whose defects can be paired
locally without ambiguity -- and everything else falls back to a software
MWPM decoder.  The paper highlights two weaknesses that this reproduction
preserves:

* the fallback path is not real-time (it is the software MWPM decoder, so
  hard syndromes dominate the critical path), and
* greedy local pairing is not globally optimal, costing up to ~3.8x in
  logical error rate versus MWPM (Table 4).

The pre-decoder model: a defect is *locally explainable* when it has
exactly one adjacent defect on the primitive decoding graph (mutually) --
those two are paired -- or no adjacent defects but a direct boundary edge
-- it is matched to the boundary.  If every defect is consumed this way the
syndrome was decoded entirely by the pre-decoder; otherwise the remaining
defects are re-decoded with MWPM and the shot is flagged as having missed
the real-time path.
"""

from __future__ import annotations

import numpy as np

from ..graphs.decoding_graph import BOUNDARY, DecodingGraph
from ..graphs.weights import GlobalWeightTable
from .base import DecodeResult, Decoder, validate_syndrome_batch
from .mwpm import MWPMDecoder

__all__ = ["CliqueDecoder"]


class CliqueDecoder(Decoder):
    """Greedy local pre-decoder with software-MWPM fallback.

    Args:
        graph: Primitive decoding graph (defines locality).
        gwt: Global Weight Table for the MWPM fallback.
        structure: Pre-built neighbor structure for ``gwt``, forwarded to
            the MWPM fallback's sparse engine.
    """

    name = "Clique+MWPM"

    def __init__(
        self,
        graph: DecodingGraph,
        gwt: GlobalWeightTable,
        *,
        structure=None,
    ) -> None:
        self.graph = graph
        self.syndrome_length = int(graph.num_detectors)
        self.fallback = MWPMDecoder(gwt, measure_time=True, structure=structure)
        #: Whether the last decode stayed entirely in the pre-decoder.
        self.last_was_local = True
        # Neighbour map over primitive edges (boundary excluded).
        self._neighbors: dict[int, set[int]] = {}
        self._edge_parity: dict[tuple[int, int], bool] = {}
        self._boundary_parity: dict[int, bool] = {}
        for edge in graph.edges:
            if edge.v == BOUNDARY:
                current = self._boundary_parity.get(edge.u)
                # Keep the most probable boundary edge's parity.
                if current is None:
                    self._boundary_parity[edge.u] = edge.flips_observable
                continue
            self._neighbors.setdefault(edge.u, set()).add(edge.v)
            self._neighbors.setdefault(edge.v, set()).add(edge.u)
            key = (min(edge.u, edge.v), max(edge.u, edge.v))
            if key not in self._edge_parity:
                self._edge_parity[key] = edge.flips_observable
        # Array mirrors for the batched pre-decoder: padded neighbor matrix
        # (vertices x max-degree) with aligned edge parities, plus direct
        # boundary-edge presence/parity vectors.
        n = self.syndrome_length
        max_deg = max((len(s) for s in self._neighbors.values()), default=0)
        self._nb_pad = np.zeros((max(n, 1), max(max_deg, 1)), dtype=np.int64)
        self._nb_mask = np.zeros_like(self._nb_pad, dtype=bool)
        self._nb_par = np.zeros_like(self._nb_pad, dtype=bool)
        for v, nbs in self._neighbors.items():
            for j, u in enumerate(sorted(nbs)):
                self._nb_pad[v, j] = u
                self._nb_mask[v, j] = True
                self._nb_par[v, j] = self._edge_parity[(min(u, v), max(u, v))]
        self._has_bnd = np.zeros(max(n, 1), dtype=bool)
        self._bnd_par = np.zeros(max(n, 1), dtype=bool)
        for v, parity in self._boundary_parity.items():
            self._has_bnd[v] = True
            self._bnd_par[v] = parity

    def _local_pairing(
        self, active: list[int]
    ) -> tuple[bool, list[tuple[int, int]], set[int]]:
        """The pre-decoder pass: greedy unambiguous pairing.

        Returns:
            Tuple ``(prediction, matching, leftover)`` -- the parity and
            pairs consumed locally, plus the defects the pre-decoder could
            not explain (empty when the shot stayed on the real-time path).
        """
        defects = set(active)
        prediction = False
        matching: list[tuple[int, int]] = []
        progress = True
        while progress:
            progress = False
            for defect in sorted(defects):
                if defect not in defects:
                    continue
                adjacent = self._neighbors.get(defect, set()) & defects
                if len(adjacent) == 1:
                    partner = next(iter(adjacent))
                    partner_adjacent = (
                        self._neighbors.get(partner, set()) & defects
                    )
                    if partner_adjacent == {defect}:
                        key = (min(defect, partner), max(defect, partner))
                        prediction ^= self._edge_parity[key]
                        matching.append(key)
                        defects.discard(defect)
                        defects.discard(partner)
                        progress = True
                elif not adjacent and defect in self._boundary_parity:
                    prediction ^= self._boundary_parity[defect]
                    matching.append((defect, BOUNDARY))
                    defects.discard(defect)
                    progress = True
        return prediction, matching, defects

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode locally where unambiguous; fall back to MWPM otherwise."""
        if not active:
            self.last_was_local = True
            return DecodeResult(prediction=False)
        prediction, matching, defects = self._local_pairing(active)
        if not defects:
            self.last_was_local = True
            return DecodeResult(
                prediction=prediction,
                matching=sorted(matching),
                cycles=1,
                latency_ns=4.0,  # one cycle of the in-fridge pre-decoder
            )
        # Hard-to-decode event: hand the remaining defects to software MWPM.
        self.last_was_local = False
        fallback = self.fallback.decode_active(sorted(defects))
        return DecodeResult(
            prediction=prediction ^ fallback.prediction,
            matching=sorted(matching + fallback.matching),
            weight=fallback.weight,
            latency_ns=fallback.latency_ns,  # measured software wall-clock
            timed_out=True,  # the fallback path misses the real-time budget
        )

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        The pre-decoder pass is a *single* vectorized round over every
        defect of every shot at once.  That is exact, not an
        approximation: a mutual degree-1 pair has no other active
        neighbors by definition, and a degree-0 boundary defect touches
        nobody, so consuming them never unlocks further local pairings --
        the scalar while-progress loop always terminates after one
        productive pass.  All hard-to-decode shots then hand their
        residual defects to one ``fallback.decode_batch`` call, so the
        MWPM fallback gets its bucketed/batched construction instead of
        row-at-a-time solves.  Results are identical to per-row
        :meth:`decode`, including the ``last_was_local`` flag of the
        final row.
        """
        syndromes = validate_syndrome_batch(syndromes, self.syndrome_length)
        num, n = syndromes.shape
        rows, cols = np.nonzero(syndromes)
        counts = np.bincount(rows, minlength=num)
        if rows.size == 0:
            self.last_was_local = True
            return [DecodeResult(prediction=False) for _ in range(num)]
        # Active-neighbor degree of every defect via one padded gather.
        nbs = self._nb_pad[cols]
        act = self._nb_mask[cols] & syndromes[rows[:, None], nbs]
        deg = act.sum(axis=1)
        one = deg == 1
        # The lone active neighbor of each degree-1 defect, and the parity
        # of the primitive edge towards it.
        j = np.argmax(act, axis=1)
        lanes = np.arange(rows.size)
        partner = nbs[lanes, j]
        edge_par = self._nb_par[cols, j]
        # A pair is consumed iff both endpoints have degree 1; adjacency is
        # symmetric, so the partner's lone neighbor is then this defect.
        # Locate the partner's lane by binary search over the (row, vertex)
        # keys, which np.nonzero already emits sorted.
        keys = rows * n + cols
        pidx = np.searchsorted(keys, rows * n + partner)
        pdeg = deg[np.minimum(pidx, keys.size - 1)]
        paired = one & (pdeg == 1)
        bmatch = (deg == 0) & self._has_bnd[cols]
        resid = ~(paired | bmatch)
        # Per-row prediction: each pair's parity counted once (at its lower
        # endpoint) plus every boundary match's parity.
        pair_once = paired & (cols < partner)
        pred = np.zeros(num, dtype=bool)
        np.logical_xor.at(pred, rows[pair_once], edge_par[pair_once])
        np.logical_xor.at(pred, rows[bmatch], self._bnd_par[cols[bmatch]])
        # Locally consumed matches, grouped per row in sorted tuple order.
        m_rows = np.concatenate((rows[pair_once], rows[bmatch]))
        m_lo = np.concatenate((cols[pair_once], cols[bmatch]))
        m_hi = np.concatenate(
            (
                partner[pair_once],
                np.full(int(bmatch.sum()), BOUNDARY, dtype=np.int64),
            )
        )
        order = np.lexsort((m_hi, m_lo, m_rows))
        m_rows = m_rows[order]
        pairs = list(zip(m_lo[order].tolist(), m_hi[order].tolist()))
        moff = np.concatenate(
            ([0], np.cumsum(np.bincount(m_rows, minlength=num)))
        ).tolist()
        # One batched fallback solve over the rows with leftovers.
        row_resid = np.zeros(num, dtype=bool)
        row_resid[rows[resid]] = True
        ridx = np.flatnonzero(row_resid)
        rmap = np.zeros(num, dtype=np.int64)
        rmap[ridx] = np.arange(ridx.size)
        fallbacks: list[DecodeResult] = []
        if ridx.size:
            residual = np.zeros((ridx.size, n), dtype=bool)
            residual[rmap[rows[resid]], cols[resid]] = True
            fallbacks = self.fallback.decode_batch(residual)
        results: list[DecodeResult] = []
        pred_list = pred.tolist()
        resid_list = row_resid.tolist()
        counts_list = counts.tolist()
        for i in range(num):
            if not counts_list[i]:
                results.append(DecodeResult(prediction=False))
            elif not resid_list[i]:
                results.append(
                    DecodeResult(
                        prediction=pred_list[i],
                        matching=pairs[moff[i] : moff[i + 1]],
                        cycles=1,
                        latency_ns=4.0,
                    )
                )
            else:
                fallback = fallbacks[rmap[i]]
                results.append(
                    DecodeResult(
                        prediction=pred_list[i] ^ fallback.prediction,
                        matching=sorted(
                            pairs[moff[i] : moff[i + 1]] + fallback.matching
                        ),
                        weight=fallback.weight,
                        latency_ns=fallback.latency_ns,
                        timed_out=True,
                    )
                )
        self.last_was_local = not resid_list[num - 1]
        return results
