"""Clique-style hierarchical decoder (paper sections 2.3.4 and 5.6).

The Clique decoder is a hierarchical design: a tiny in-fridge pre-decoder
handles the *common case* -- isolated errors whose defects can be paired
locally without ambiguity -- and everything else falls back to a software
MWPM decoder.  The paper highlights two weaknesses that this reproduction
preserves:

* the fallback path is not real-time (it is the software MWPM decoder, so
  hard syndromes dominate the critical path), and
* greedy local pairing is not globally optimal, costing up to ~3.8x in
  logical error rate versus MWPM (Table 4).

The pre-decoder model: a defect is *locally explainable* when it has
exactly one adjacent defect on the primitive decoding graph (mutually) --
those two are paired -- or no adjacent defects but a direct boundary edge
-- it is matched to the boundary.  If every defect is consumed this way the
syndrome was decoded entirely by the pre-decoder; otherwise the remaining
defects are re-decoded with MWPM and the shot is flagged as having missed
the real-time path.
"""

from __future__ import annotations

import numpy as np

from ..graphs.decoding_graph import BOUNDARY, DecodingGraph
from ..graphs.weights import GlobalWeightTable
from .base import DecodeResult, Decoder, validate_syndrome_batch
from .mwpm import MWPMDecoder

__all__ = ["CliqueDecoder"]


class CliqueDecoder(Decoder):
    """Greedy local pre-decoder with software-MWPM fallback.

    Args:
        graph: Primitive decoding graph (defines locality).
        gwt: Global Weight Table for the MWPM fallback.
        structure: Pre-built neighbor structure for ``gwt``, forwarded to
            the MWPM fallback's sparse engine.
    """

    name = "Clique+MWPM"

    def __init__(
        self,
        graph: DecodingGraph,
        gwt: GlobalWeightTable,
        *,
        structure=None,
    ) -> None:
        self.graph = graph
        self.syndrome_length = int(graph.num_detectors)
        self.fallback = MWPMDecoder(gwt, measure_time=True, structure=structure)
        #: Whether the last decode stayed entirely in the pre-decoder.
        self.last_was_local = True
        # Neighbour map over primitive edges (boundary excluded).
        self._neighbors: dict[int, set[int]] = {}
        self._edge_parity: dict[tuple[int, int], bool] = {}
        self._boundary_parity: dict[int, bool] = {}
        for edge in graph.edges:
            if edge.v == BOUNDARY:
                current = self._boundary_parity.get(edge.u)
                # Keep the most probable boundary edge's parity.
                if current is None:
                    self._boundary_parity[edge.u] = edge.flips_observable
                continue
            self._neighbors.setdefault(edge.u, set()).add(edge.v)
            self._neighbors.setdefault(edge.v, set()).add(edge.u)
            key = (min(edge.u, edge.v), max(edge.u, edge.v))
            if key not in self._edge_parity:
                self._edge_parity[key] = edge.flips_observable

    def _local_pairing(
        self, active: list[int]
    ) -> tuple[bool, list[tuple[int, int]], set[int]]:
        """The pre-decoder pass: greedy unambiguous pairing.

        Returns:
            Tuple ``(prediction, matching, leftover)`` -- the parity and
            pairs consumed locally, plus the defects the pre-decoder could
            not explain (empty when the shot stayed on the real-time path).
        """
        defects = set(active)
        prediction = False
        matching: list[tuple[int, int]] = []
        progress = True
        while progress:
            progress = False
            for defect in sorted(defects):
                if defect not in defects:
                    continue
                adjacent = self._neighbors.get(defect, set()) & defects
                if len(adjacent) == 1:
                    partner = next(iter(adjacent))
                    partner_adjacent = (
                        self._neighbors.get(partner, set()) & defects
                    )
                    if partner_adjacent == {defect}:
                        key = (min(defect, partner), max(defect, partner))
                        prediction ^= self._edge_parity[key]
                        matching.append(key)
                        defects.discard(defect)
                        defects.discard(partner)
                        progress = True
                elif not adjacent and defect in self._boundary_parity:
                    prediction ^= self._boundary_parity[defect]
                    matching.append((defect, BOUNDARY))
                    defects.discard(defect)
                    progress = True
        return prediction, matching, defects

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode locally where unambiguous; fall back to MWPM otherwise."""
        if not active:
            self.last_was_local = True
            return DecodeResult(prediction=False)
        prediction, matching, defects = self._local_pairing(active)
        if not defects:
            self.last_was_local = True
            return DecodeResult(
                prediction=prediction,
                matching=sorted(matching),
                cycles=1,
                latency_ns=4.0,  # one cycle of the in-fridge pre-decoder
            )
        # Hard-to-decode event: hand the remaining defects to software MWPM.
        self.last_was_local = False
        fallback = self.fallback.decode_active(sorted(defects))
        return DecodeResult(
            prediction=prediction ^ fallback.prediction,
            matching=sorted(matching + fallback.matching),
            weight=fallback.weight,
            latency_ns=fallback.latency_ns,  # measured software wall-clock
            timed_out=True,  # the fallback path misses the real-time budget
        )

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        The pre-decoder pass runs per row, but all hard-to-decode shots
        hand their residual defects to one ``fallback.decode_batch`` call,
        so the MWPM fallback gets its bucketed/batched construction instead
        of row-at-a-time solves.  Results are identical to per-row
        :meth:`decode`, including the ``last_was_local`` flag of the final
        row.
        """
        syndromes = validate_syndrome_batch(syndromes, self.syndrome_length)
        num, n = syndromes.shape
        rows, cols = np.nonzero(syndromes)
        counts = np.bincount(rows, minlength=num)
        splits = np.split(cols, np.cumsum(counts)[:-1])
        results: list[DecodeResult | None] = [None] * num
        local: list[tuple[int, bool, list[tuple[int, int]], set[int]]] = []
        residual_rows: list[int] = []
        for i, active in enumerate(splits):
            if not active.size:
                results[i] = DecodeResult(prediction=False)
                self.last_was_local = True
                continue
            prediction, matching, defects = self._local_pairing(
                [int(x) for x in active]
            )
            if not defects:
                results[i] = DecodeResult(
                    prediction=prediction,
                    matching=sorted(matching),
                    cycles=1,
                    latency_ns=4.0,
                )
                self.last_was_local = True
            else:
                local.append((i, prediction, matching, defects))
                residual_rows.append(i)
        if local:
            residual = np.zeros((len(local), n), dtype=bool)
            for j, (_i, _p, _m, defects) in enumerate(local):
                residual[j, sorted(defects)] = True
            fallbacks = self.fallback.decode_batch(residual)
            for (i, prediction, matching, _defects), fallback in zip(
                local, fallbacks
            ):
                results[i] = DecodeResult(
                    prediction=prediction ^ fallback.prediction,
                    matching=sorted(matching + fallback.matching),
                    weight=fallback.weight,
                    latency_ns=fallback.latency_ns,
                    timed_out=True,
                )
            if residual_rows and residual_rows[-1] == num - 1:
                self.last_was_local = False
        return results
