"""Clique-style hierarchical decoder (paper sections 2.3.4 and 5.6).

The Clique decoder is a hierarchical design: a tiny in-fridge pre-decoder
handles the *common case* -- isolated errors whose defects can be paired
locally without ambiguity -- and everything else falls back to a software
MWPM decoder.  The paper highlights two weaknesses that this reproduction
preserves:

* the fallback path is not real-time (it is the software MWPM decoder, so
  hard syndromes dominate the critical path), and
* greedy local pairing is not globally optimal, costing up to ~3.8x in
  logical error rate versus MWPM (Table 4).

The pre-decoder model: a defect is *locally explainable* when it has
exactly one adjacent defect on the primitive decoding graph (mutually) --
those two are paired -- or no adjacent defects but a direct boundary edge
-- it is matched to the boundary.  If every defect is consumed this way the
syndrome was decoded entirely by the pre-decoder; otherwise the remaining
defects are re-decoded with MWPM and the shot is flagged as having missed
the real-time path.
"""

from __future__ import annotations

from ..graphs.decoding_graph import BOUNDARY, DecodingGraph
from ..graphs.weights import GlobalWeightTable
from .base import DecodeResult, Decoder
from .mwpm import MWPMDecoder

__all__ = ["CliqueDecoder"]


class CliqueDecoder(Decoder):
    """Greedy local pre-decoder with software-MWPM fallback.

    Args:
        graph: Primitive decoding graph (defines locality).
        gwt: Global Weight Table for the MWPM fallback.
    """

    name = "Clique+MWPM"

    def __init__(self, graph: DecodingGraph, gwt: GlobalWeightTable) -> None:
        self.graph = graph
        self.fallback = MWPMDecoder(gwt, measure_time=True)
        #: Whether the last decode stayed entirely in the pre-decoder.
        self.last_was_local = True
        # Neighbour map over primitive edges (boundary excluded).
        self._neighbors: dict[int, set[int]] = {}
        self._edge_parity: dict[tuple[int, int], bool] = {}
        self._boundary_parity: dict[int, bool] = {}
        for edge in graph.edges:
            if edge.v == BOUNDARY:
                current = self._boundary_parity.get(edge.u)
                # Keep the most probable boundary edge's parity.
                if current is None:
                    self._boundary_parity[edge.u] = edge.flips_observable
                continue
            self._neighbors.setdefault(edge.u, set()).add(edge.v)
            self._neighbors.setdefault(edge.v, set()).add(edge.u)
            key = (min(edge.u, edge.v), max(edge.u, edge.v))
            if key not in self._edge_parity:
                self._edge_parity[key] = edge.flips_observable

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode locally where unambiguous; fall back to MWPM otherwise."""
        if not active:
            self.last_was_local = True
            return DecodeResult(prediction=False)
        defects = set(active)
        prediction = False
        matching: list[tuple[int, int]] = []
        progress = True
        while progress:
            progress = False
            for defect in sorted(defects):
                if defect not in defects:
                    continue
                adjacent = self._neighbors.get(defect, set()) & defects
                if len(adjacent) == 1:
                    partner = next(iter(adjacent))
                    partner_adjacent = (
                        self._neighbors.get(partner, set()) & defects
                    )
                    if partner_adjacent == {defect}:
                        key = (min(defect, partner), max(defect, partner))
                        prediction ^= self._edge_parity[key]
                        matching.append(key)
                        defects.discard(defect)
                        defects.discard(partner)
                        progress = True
                elif not adjacent and defect in self._boundary_parity:
                    prediction ^= self._boundary_parity[defect]
                    matching.append((defect, BOUNDARY))
                    defects.discard(defect)
                    progress = True
        if not defects:
            self.last_was_local = True
            return DecodeResult(
                prediction=prediction,
                matching=sorted(matching),
                cycles=1,
                latency_ns=4.0,  # one cycle of the in-fridge pre-decoder
            )
        # Hard-to-decode event: hand the remaining defects to software MWPM.
        self.last_was_local = False
        fallback = self.fallback.decode_active(sorted(defects))
        return DecodeResult(
            prediction=prediction ^ fallback.prediction,
            matching=sorted(matching + fallback.matching),
            weight=fallback.weight,
            latency_ns=fallback.latency_ns,  # measured software wall-clock
            timed_out=True,  # the fallback path misses the real-time budget
        )
