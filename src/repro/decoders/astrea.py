"""The Astrea decoder: exhaustive real-time MWPM up to Hamming weight 10.

Astrea (paper section 5) observes that a syndrome of Hamming weight ``w``
has only ``(w-1)!!`` perfect matchings -- at most 945 for ``w = 10`` -- and
simply evaluates all of them.  The hardware is built around the
*HW6Decoder*, a combinational unit that evaluates the 15 perfect matchings
of six nodes in a single cycle using thirty 8-bit adders (Figure 7a):

* Hamming weights 0-2 are trivial (no search needed);
* weights 3-6 take one HW6Decoder evaluation;
* weights 7-8 pre-match one pair (7 choices) and complete each with the
  HW6Decoder (Figure 7b) -- 7 accesses;
* weights 9-10 pre-match two pairs (9 x 7 = 63 choices) -- 63 accesses.

Because the search is exhaustive over exactly the matchings MWPM considers
(with the boundary folded into the weights, see
:mod:`repro.matching.boundary`), Astrea's output is *identical* to the
software MWPM decoder for every syndrome it accepts -- the Table 4 claim,
asserted directly by the test suite.

Syndromes above the cutoff (Hamming weight > 10) are not decoded; they are
rarer than the logical error rate for d <= 7 at p = 1e-4 (Table 2), which
is why ignoring them does not measurably affect accuracy in Astrea's target
regime.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..graphs.weights import GlobalWeightTable
from ..hw.latency import FpgaTiming, astrea_total_cycles
from ..matching.boundary import MatchingProblem
from .base import DecodeResult, Decoder, matching_to_detectors

__all__ = ["HW6Decoder", "AstreaDecoder", "exhaustive_search"]


@lru_cache(maxsize=None)
def _matchings_of(m: int) -> tuple[tuple[tuple[int, int], ...], ...]:
    """All perfect matchings of ``m`` nodes (cached; m in {0, 2, 4, 6})."""
    if m == 0:
        return ((),)
    out = []
    nodes = list(range(m))
    first = nodes[0]
    for idx in range(1, m):
        partner = nodes[idx]
        rest = nodes[1:idx] + nodes[idx + 1 :]
        remap = {local: original for local, original in enumerate(rest)}
        for sub in _matchings_of(m - 2):
            out.append(
                ((first, partner),)
                + tuple((remap[a], remap[b]) for a, b in sub)
            )
    return tuple(out)


class HW6Decoder:
    """Astrea's fundamental building block (Figure 7a).

    Evaluates every perfect matching of up to six nodes against a weight
    matrix and returns the minimum.  In hardware this is a single-cycle
    network of thirty 8-bit adders; in this model it is an exhaustive
    evaluation whose access count the latency model charges one cycle.
    """

    MAX_NODES = 6

    def decode(
        self, weights: np.ndarray, nodes: list[int]
    ) -> tuple[list[tuple[int, int]], float]:
        """Find the minimum-weight perfect matching of the given nodes.

        Args:
            weights: Full problem weight matrix.
            nodes: The (at most six, even count) node indices to match.

        Returns:
            Tuple ``(pairs, total_weight)`` over the original node indices.
        """
        m = len(nodes)
        if m % 2 or m > self.MAX_NODES:
            raise ValueError(f"HW6Decoder matches an even count <= 6, got {m}")
        best_pairs: tuple[tuple[int, int], ...] = ()
        best_weight = float("inf") if m else 0.0
        for matching in _matchings_of(m):
            total = 0.0
            for a, b in matching:
                total += weights[nodes[a], nodes[b]]
            if total < best_weight:
                best_weight = total
                best_pairs = matching
        return [(nodes[a], nodes[b]) for a, b in best_pairs], best_weight


class AstreaDecoder(Decoder):
    """Exhaustive-search MWPM decoder for Hamming weights up to 10.

    Args:
        gwt: Global Weight Table of the code/noise configuration (use a
            quantized table to model the 8-bit hardware faithfully).
        timing: FPGA clocking parameters.
        max_hamming_weight: Syndromes above this weight are declined
            (``decoded=False`` with a "no flip" prediction), reproducing
            Astrea's design limit of 10.
    """

    name = "Astrea"

    def __init__(
        self,
        gwt: GlobalWeightTable,
        *,
        timing: FpgaTiming | None = None,
        max_hamming_weight: int = 10,
    ) -> None:
        if max_hamming_weight > 10:
            raise ValueError(
                "Astrea's pre-matching network supports at most weight 10; "
                "use AstreaGDecoder beyond that"
            )
        self.gwt = gwt
        self.timing = timing if timing is not None else FpgaTiming()
        self.max_hamming_weight = max_hamming_weight
        self.hw6 = HW6Decoder()
        #: HW6Decoder accesses performed by the last decode (7 for weight
        #: 7-8, 63 for 9-10), exposed for the latency/ablation benches.
        self.last_hw6_accesses = 0

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode by brute-force search (exact MWPM) up to the cutoff."""
        hw = len(active)
        if hw > self.max_hamming_weight:
            self.last_hw6_accesses = 0
            return DecodeResult(prediction=False, decoded=False)
        problem = MatchingProblem.from_syndrome(self.gwt, active)
        pairs, weight, accesses = self._search(problem.weights)
        self.last_hw6_accesses = accesses
        cycles = astrea_total_cycles(hw)
        return DecodeResult(
            prediction=problem.prediction(pairs),
            matching=matching_to_detectors(pairs, problem.active, problem.has_virtual),
            weight=weight,
            cycles=cycles,
            latency_ns=self.timing.to_ns(cycles),
        )

    # ------------------------------------------------------------------
    # Search structure (Figure 7)
    # ------------------------------------------------------------------

    def _search(
        self, weights: np.ndarray
    ) -> tuple[list[tuple[int, int]], float, int]:
        """Exhaustive search structured around the HW6Decoder."""
        return exhaustive_search(weights, self.hw6)


def exhaustive_search(
    weights: np.ndarray, hw6: HW6Decoder
) -> tuple[list[tuple[int, int]], float, int]:
    """Astrea's full search: exact MWPM of up to 10 nodes (Figure 7).

    Args:
        weights: Effective pair-weight matrix of an even node count <= 10.
        hw6: The HW6Decoder building block to complete matchings with.

    Returns:
        Tuple ``(pairs, total_weight, hw6_accesses)``.
    """
    m = weights.shape[0]
    if m == 0:
        return [], 0.0, 0
    if m <= 6:
        pairs, weight = hw6.decode(weights, list(range(m)))
        return pairs, weight, 1
    if m == 8:
        return _search_with_prematch(weights, list(range(8)), 1, hw6)
    if m == 10:
        return _search_with_prematch(weights, list(range(10)), 2, hw6)
    raise ValueError(f"exhaustive search supports at most 10 nodes, got {m}")


def _search_with_prematch(
    weights: np.ndarray, nodes: list[int], depth: int, hw6: HW6Decoder
) -> tuple[list[tuple[int, int]], float, int]:
    """Pre-match ``depth`` pairs, complete the rest with the HW6Decoder.

    Mirrors Figure 7(b): the first node is paired with each remaining
    node; at depth 2 a second pre-match pair is chosen the same way,
    giving the 7 (weight 8) and 63 (weight 10) HW6Decoder accesses of
    the paper's latency model.
    """
    best_pairs: list[tuple[int, int]] = []
    best_weight = float("inf")
    accesses = 0
    first = nodes[0]
    for idx in range(1, len(nodes)):
        partner = nodes[idx]
        rest = nodes[1:idx] + nodes[idx + 1 :]
        head_weight = float(weights[first, partner])
        if depth == 1:
            sub_pairs, sub_weight = hw6.decode(weights, rest)
            sub_accesses = 1
        else:
            sub_pairs, sub_weight, sub_accesses = _search_with_prematch(
                weights, rest, depth - 1, hw6
            )
        accesses += sub_accesses
        total = head_weight + sub_weight
        if total < best_weight:
            best_weight = total
            best_pairs = [(first, partner)] + sub_pairs
    return best_pairs, best_weight, accesses
