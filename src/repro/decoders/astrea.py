"""The Astrea decoder: exhaustive real-time MWPM up to Hamming weight 10.

Astrea (paper section 5) observes that a syndrome of Hamming weight ``w``
has only ``(w-1)!!`` perfect matchings -- at most 945 for ``w = 10`` -- and
simply evaluates all of them.  The hardware is built around the
*HW6Decoder*, a combinational unit that evaluates the 15 perfect matchings
of six nodes in a single cycle using thirty 8-bit adders (Figure 7a):

* Hamming weights 0-2 are trivial (no search needed);
* weights 3-6 take one HW6Decoder evaluation;
* weights 7-8 pre-match one pair (7 choices) and complete each with the
  HW6Decoder (Figure 7b) -- 7 accesses;
* weights 9-10 pre-match two pairs (9 x 7 = 63 choices) -- 63 accesses.

Because the search is exhaustive over exactly the matchings MWPM considers
(with the boundary folded into the weights, see
:mod:`repro.matching.boundary`), Astrea's output is *identical* to the
software MWPM decoder for every syndrome it accepts -- the Table 4 claim,
asserted directly by the test suite.

Syndromes above the cutoff (Hamming weight > 10) are not decoded; they are
rarer than the logical error rate for d <= 7 at p = 1e-4 (Table 2), which
is why ignoring them does not measurably affect accuracy in Astrea's target
regime.
"""

from __future__ import annotations

import numpy as np

from ..backend import from_device
from ..graphs.weights import GlobalWeightTable
from ..hw.latency import FpgaTiming, astrea_total_cycles
from ..matching.boundary import MatchingProblem
from ..matching.search import (
    all_perfect_matchings,
    batched_search,
    hw6_accesses_for,
    matchings_tensor,
    vectorized_search,
)
from .base import (
    BOUNDARY,
    DecodeResult,
    Decoder,
    matching_to_detectors,
    validate_syndrome_batch,
)

__all__ = [
    "HW6Decoder",
    "AstreaDecoder",
    "exhaustive_search",
    "matchings_tensor",
    "vectorized_search",
    "batched_search",
    "bucket_results",
]

#: Rows per batched-kernel invocation; bounds the size of the per-bucket
#: gather tensor (``rows x 945 x 5`` float64 at Hamming weight 10).
KERNEL_CHUNK_ROWS = 4096

# The index-tensor kernels (matchings_tensor, vectorized_search,
# batched_search) live in :mod:`repro.matching.search` since the sparse
# exact-MWPM engine also consumes them; they are re-exported here for
# backward compatibility.  The scalar HW6Decoder reference implementation
# below retains the hardware-model structure (Figure 7) and the
# access-count bookkeeping of the latency benches.
_matchings_of = all_perfect_matchings
_hw6_accesses_for = hw6_accesses_for


def bucket_results(
    batch,
    pair_tensor: np.ndarray,
    weights: np.ndarray,
    predictions: np.ndarray,
    *,
    cycles: int,
    latency_ns: float,
) -> list[DecodeResult]:
    """Materialise :class:`DecodeResult` objects for one decoded bucket.

    Performs the local-node -> detector-index translation of
    :func:`~repro.decoders.base.matching_to_detectors` for the whole bucket
    with array operations (the translation is the per-row hot spot once the
    search itself is vectorized).

    Args:
        batch: The bucket's :class:`MatchingProblemBatch`.
        pair_tensor: ``(B, m / 2, 2)`` winning matchings from
            :func:`batched_search`.
        weights: ``(B,)`` matching weights.
        predictions: ``(B,)`` bool logical-flip predictions.
        cycles: Modeled cycle count shared by the bucket.
        latency_ns: Modeled latency shared by the bucket.

    Returns:
        One :class:`DecodeResult` per bucket row, identical to the scalar
        path's output.
    """
    num, npairs, _ = pair_tensor.shape
    weight_list = weights.tolist()
    pred_list = predictions.tolist()
    if npairs == 0:
        return [
            DecodeResult(
                prediction=pred_list[j],
                weight=weight_list[j],
                cycles=cycles,
                latency_ns=latency_ns,
            )
            for j in range(num)
        ]
    lookup = batch.active
    if batch.has_virtual:
        pad = np.full((num, 1), BOUNDARY, dtype=lookup.dtype)
        lookup = np.concatenate([lookup, pad], axis=1)
    rows = np.arange(num)[:, None]
    da = lookup[rows, pair_tensor[:, :, 0]]
    db = lookup[rows, pair_tensor[:, :, 1]]
    lo = np.minimum(da, db)
    hi = np.maximum(da, db)
    # Boundary matches list the detector first, BOUNDARY second.
    virtual = lo == BOUNDARY
    first = np.where(virtual, hi, lo)
    second = np.where(virtual, lo, hi)
    # Each detector appears in at most one pair, so sorting on the first
    # element alone reproduces matching_to_detectors' lexicographic order.
    order = np.argsort(first, axis=1)
    first = np.take_along_axis(first, order, axis=1)
    second = np.take_along_axis(second, order, axis=1)
    matchings = np.stack([first, second], axis=2).tolist()
    return [
        DecodeResult(
            prediction=pred_list[j],
            matching=[(a, b) for a, b in matchings[j]],
            weight=weight_list[j],
            cycles=cycles,
            latency_ns=latency_ns,
        )
        for j in range(num)
    ]


class HW6Decoder:
    """Astrea's fundamental building block (Figure 7a).

    Evaluates every perfect matching of up to six nodes against a weight
    matrix and returns the minimum.  In hardware this is a single-cycle
    network of thirty 8-bit adders; in this model it is an exhaustive
    evaluation whose access count the latency model charges one cycle.
    """

    MAX_NODES = 6

    def decode(
        self, weights: np.ndarray, nodes: list[int]
    ) -> tuple[list[tuple[int, int]], float]:
        """Find the minimum-weight perfect matching of the given nodes.

        Args:
            weights: Full problem weight matrix.
            nodes: The (at most six, even count) node indices to match.

        Returns:
            Tuple ``(pairs, total_weight)`` over the original node indices.
        """
        m = len(nodes)
        if m % 2 or m > self.MAX_NODES:
            raise ValueError(f"HW6Decoder matches an even count <= 6, got {m}")
        best_pairs: tuple[tuple[int, int], ...] = ()
        best_weight = float("inf") if m else 0.0
        for matching in _matchings_of(m):
            total = 0.0
            for a, b in matching:
                total += weights[nodes[a], nodes[b]]
            if total < best_weight:
                best_weight = total
                best_pairs = matching
        return [(nodes[a], nodes[b]) for a, b in best_pairs], best_weight


class AstreaDecoder(Decoder):
    """Exhaustive-search MWPM decoder for Hamming weights up to 10.

    Args:
        gwt: Global Weight Table of the code/noise configuration (use a
            quantized table to model the 8-bit hardware faithfully).
        timing: FPGA clocking parameters.
        max_hamming_weight: Syndromes above this weight are declined
            (``decoded=False`` with a "no flip" prediction), reproducing
            Astrea's design limit of 10.
        use_vectorized: Evaluate all candidate matchings with the NumPy
            index-tensor kernel (:func:`vectorized_search`) instead of the
            scalar reference loops.  Bit-identical results either way; the
            scalar path is retained as the reference implementation (and
            for the access-count bookkeeping of the latency benches).
    """

    name = "Astrea"

    def __init__(
        self,
        gwt: GlobalWeightTable,
        *,
        timing: FpgaTiming | None = None,
        max_hamming_weight: int = 10,
        use_vectorized: bool = True,
    ) -> None:
        if max_hamming_weight > 10:
            raise ValueError(
                "Astrea's pre-matching network supports at most weight 10; "
                "use AstreaGDecoder beyond that"
            )
        self.gwt = gwt
        self.syndrome_length = int(gwt.weights.shape[0])
        self.timing = timing if timing is not None else FpgaTiming()
        self.max_hamming_weight = max_hamming_weight
        self.use_vectorized = use_vectorized
        self.hw6 = HW6Decoder()
        #: HW6Decoder accesses performed by the last decode (7 for weight
        #: 7-8, 63 for 9-10), exposed for the latency/ablation benches.
        self.last_hw6_accesses = 0

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode by brute-force search (exact MWPM) up to the cutoff."""
        hw = len(active)
        if hw > self.max_hamming_weight:
            self.last_hw6_accesses = 0
            return DecodeResult(prediction=False, decoded=False)
        problem = MatchingProblem.from_syndrome(self.gwt, active)
        pairs, weight, accesses = self._search(problem.weights)
        self.last_hw6_accesses = accesses
        cycles = astrea_total_cycles(hw)
        return DecodeResult(
            prediction=problem.prediction(pairs),
            matching=matching_to_detectors(pairs, problem.active, problem.has_virtual),
            weight=weight,
            cycles=cycles,
            latency_ns=self.timing.to_ns(cycles),
        )

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        Syndromes are bucketed by Hamming weight; every bucket's weight
        submatrices are gathered from the GWT at once
        (:meth:`MatchingProblem.from_syndrome_batch`) and all its candidate
        matchings evaluated by one :func:`batched_search` kernel call.
        Results are identical to per-row :meth:`decode`
        (``last_hw6_accesses`` is not updated by the batch path).
        """
        syndromes = validate_syndrome_batch(syndromes, self.syndrome_length)
        results: list[DecodeResult | None] = [None] * syndromes.shape[0]
        hw = syndromes.sum(axis=1)
        for w in np.unique(hw):
            w = int(w)
            rows = np.nonzero(hw == w)[0]
            if w > self.max_hamming_weight:
                for i in rows:
                    results[i] = DecodeResult(prediction=False, decoded=False)
                continue
            cycles = astrea_total_cycles(w)
            latency_ns = self.timing.to_ns(cycles)
            for start in range(0, len(rows), KERNEL_CHUNK_ROWS):
                chunk = rows[start : start + KERNEL_CHUNK_ROWS]
                active = np.nonzero(syndromes[chunk])[1].reshape(len(chunk), w)
                batch = MatchingProblem.from_syndrome_batch(self.gwt, active)
                pair_tensor, weights, predictions = (
                    from_device(r)
                    for r in batched_search(batch.weights, batch.parities)
                )
                bucket = bucket_results(
                    batch,
                    pair_tensor,
                    weights,
                    predictions,
                    cycles=cycles,
                    latency_ns=latency_ns,
                )
                for j, i in enumerate(chunk):
                    results[i] = bucket[j]
        return results

    # ------------------------------------------------------------------
    # Search structure (Figure 7)
    # ------------------------------------------------------------------

    def _search(
        self, weights: np.ndarray
    ) -> tuple[list[tuple[int, int]], float, int]:
        """Exhaustive search structured around the HW6Decoder."""
        if self.use_vectorized:
            return vectorized_search(weights)
        return exhaustive_search(weights, self.hw6)


def exhaustive_search(
    weights: np.ndarray, hw6: HW6Decoder
) -> tuple[list[tuple[int, int]], float, int]:
    """Astrea's full search: exact MWPM of up to 10 nodes (Figure 7).

    Args:
        weights: Effective pair-weight matrix of an even node count <= 10.
        hw6: The HW6Decoder building block to complete matchings with.

    Returns:
        Tuple ``(pairs, total_weight, hw6_accesses)``.
    """
    m = weights.shape[0]
    if m == 0:
        return [], 0.0, 0
    if m <= 6:
        pairs, weight = hw6.decode(weights, list(range(m)))
        return pairs, weight, 1
    if m == 8:
        return _search_with_prematch(weights, list(range(8)), 1, hw6)
    if m == 10:
        return _search_with_prematch(weights, list(range(10)), 2, hw6)
    raise ValueError(f"exhaustive search supports at most 10 nodes, got {m}")


def _search_with_prematch(
    weights: np.ndarray, nodes: list[int], depth: int, hw6: HW6Decoder
) -> tuple[list[tuple[int, int]], float, int]:
    """Pre-match ``depth`` pairs, complete the rest with the HW6Decoder.

    Mirrors Figure 7(b): the first node is paired with each remaining
    node; at depth 2 a second pre-match pair is chosen the same way,
    giving the 7 (weight 8) and 63 (weight 10) HW6Decoder accesses of
    the paper's latency model.
    """
    best_pairs: list[tuple[int, int]] = []
    best_weight = float("inf")
    accesses = 0
    first = nodes[0]
    for idx in range(1, len(nodes)):
        partner = nodes[idx]
        rest = nodes[1:idx] + nodes[idx + 1 :]
        head_weight = float(weights[first, partner])
        if depth == 1:
            sub_pairs, sub_weight = hw6.decode(weights, rest)
            sub_accesses = 1
        else:
            sub_pairs, sub_weight, sub_accesses = _search_with_prematch(
                weights, rest, depth - 1, hw6
            )
        accesses += sub_accesses
        total = head_weight + sub_weight
        if total < best_weight:
            best_weight = total
            best_pairs = [(first, partner)] + sub_pairs
    return best_pairs, best_weight, accesses
