"""Common decoder interface.

Every decoder in this repository -- the software MWPM baseline, Astrea,
Astrea-G and the prior-work comparators -- consumes a syndrome (the
detector bits of one logical cycle) and produces a :class:`DecodeResult`:
a predicted logical-observable flip, the matching it derived, and a latency
estimate (modeled hardware cycles for the hardware designs, measured
wall-clock for software decoders).

A *logical error* occurs when the prediction disagrees with the actual
observable flip sampled alongside the syndrome; the experiment harness in
:mod:`repro.experiments.memory` does that accounting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..backend import from_device

__all__ = [
    "DecodeResult",
    "Decoder",
    "DecoderFallbackWarning",
    "BOUNDARY",
    "matching_to_detectors",
    "validate_syndrome",
    "validate_syndrome_batch",
]

from ..graphs.decoding_graph import BOUNDARY
from ..matching.boundary import matching_to_detectors


class DecoderFallbackWarning(UserWarning):
    """A decoder degraded to its reference path instead of aborting.

    Emitted (via :func:`warnings.warn`) when an accelerated decode path
    hits an internal inconsistency -- e.g. a sparse-engine anomaly or a
    non-finite matching weight -- and the decoder recovers by re-decoding
    the syndrome on its dense/reference path.  The warning carries the
    decoder name and a machine-readable reason so supervised experiment
    runs can log and count degradations.

    Attributes:
        decoder: Name of the decoder that degraded.
        reason: Short machine-readable reason code.
        detail: Human-readable description of the anomaly.
    """

    def __init__(self, decoder: str, reason: str, detail: str) -> None:
        self.decoder = decoder
        self.reason = reason
        self.detail = detail
        super().__init__(
            f"{decoder}: {reason}: {detail}; degraded to the reference path"
        )


def _binary_failure(values: np.ndarray) -> str | None:
    """Describe the first non-binary entry of ``values`` (None when clean)."""
    if values.dtype == bool:
        return None
    if values.dtype.kind not in "biuf":
        return f"unsupported syndrome dtype {values.dtype}"
    bad = ~((values == 0) | (values == 1))
    if bad.any():
        index = np.argwhere(bad)[0]
        return (
            f"non-binary value {values[tuple(index)]!r} at index "
            f"{tuple(int(i) for i in index)}"
        )
    return None


def validate_syndrome(
    syndrome: np.ndarray, expected_length: int | None = None
) -> np.ndarray:
    """Validate one syndrome vector and normalise it to ``bool``.

    Args:
        syndrome: 1-D array-like of 0/1 (or boolean) detector bits.
        expected_length: When given, the required number of detector bits.

    Returns:
        The syndrome as a 1-D boolean array.

    Raises:
        ValueError: On a non-1-D input, a length mismatch, a non-numeric
            dtype, or any value other than 0/1 (including NaN).
    """
    # Accept device arrays from the active array backend; decoders are
    # host-side consumers, so the seam crossing happens here, once.
    arr = np.asarray(from_device(syndrome))
    if arr.ndim != 1:
        raise ValueError(
            f"decode expects a 1-D syndrome vector, got shape {arr.shape}"
        )
    if expected_length is not None and arr.shape[0] != expected_length:
        raise ValueError(
            f"syndrome has {arr.shape[0]} detector bits, expected "
            f"{expected_length}"
        )
    failure = _binary_failure(arr)
    if failure is not None:
        raise ValueError(f"invalid syndrome: {failure}")
    return arr.astype(bool, copy=False)


def validate_syndrome_batch(
    syndromes: np.ndarray, expected_length: int | None = None
) -> np.ndarray:
    """Validate a syndrome matrix and normalise it to ``bool``.

    Args:
        syndromes: 2-D array-like, one syndrome per row.
        expected_length: When given, the required number of detector bits.

    Returns:
        The syndromes as a ``(shots, detectors)`` boolean matrix.

    Raises:
        ValueError: On a non-2-D input, a row-length mismatch, a
            non-numeric dtype, or any value other than 0/1 (including NaN).
    """
    arr = np.asarray(from_device(syndromes))
    if arr.ndim != 2:
        raise ValueError(
            "decode_batch expects a (shots, detectors) matrix, got shape "
            f"{arr.shape}"
        )
    if expected_length is not None and arr.shape[1] != expected_length:
        raise ValueError(
            f"syndromes have {arr.shape[1]} detector bits, expected "
            f"{expected_length}"
        )
    failure = _binary_failure(arr)
    if failure is not None:
        raise ValueError(f"invalid syndrome batch: {failure}")
    return arr.astype(bool, copy=False)


@dataclass(slots=True)
class DecodeResult:
    """Outcome of decoding one syndrome.

    Attributes:
        prediction: Predicted logical-observable flip.
        matching: Matched pairs in *detector index* terms; a pair's second
            element is :data:`BOUNDARY` for a boundary match.
        weight: Aggregate weight of the matching.
        cycles: Modeled hardware cycles consumed (0 for software decoders).
        latency_ns: Latency estimate -- modeled from cycles for hardware
            decoders, measured wall-clock for software decoders.
        decoded: False when the decoder declined the syndrome (e.g. Astrea
            beyond Hamming weight 10); the prediction is then "no flip".
        timed_out: True when a real-time decoder hit its deadline before
            exhausting its search (the result is then best-effort).
    """

    prediction: bool
    matching: list[tuple[int, int]] = field(default_factory=list)
    weight: float = 0.0
    cycles: int = 0
    latency_ns: float = 0.0
    decoded: bool = True
    timed_out: bool = False


class Decoder(ABC):
    """Abstract base class of all decoders.

    Subclasses implement :meth:`decode_active`; syndromes arrive either as
    boolean vectors (:meth:`decode`) or as active-index lists.
    """

    #: Human-readable decoder name (used in reports and benchmarks).
    name: str = "decoder"

    #: Expected syndrome-vector length; ``None`` disables length checks
    #: (subclasses set it when the code geometry is known at build time).
    syndrome_length: int | None = None

    @abstractmethod
    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode a syndrome given its non-zero detector indices."""

    def decode(self, syndrome: np.ndarray) -> DecodeResult:
        """Decode a syndrome given as a boolean/0-1 vector.

        Raises:
            ValueError: When the syndrome is not a 1-D binary vector of
                the decoder's expected length.
        """
        validated = validate_syndrome(syndrome, self.syndrome_length)
        active = [int(i) for i in np.nonzero(validated)[0]]
        return self.decode_active(active)

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode each row of a (shots, detectors) syndrome matrix.

        Raises:
            ValueError: When the input is not a 2-D binary matrix whose
                rows match the decoder's expected syndrome length.
        """
        validated = validate_syndrome_batch(syndromes, self.syndrome_length)
        return [
            self.decode_active([int(i) for i in np.nonzero(row)[0]])
            for row in validated
        ]
