"""Common decoder interface.

Every decoder in this repository -- the software MWPM baseline, Astrea,
Astrea-G and the prior-work comparators -- consumes a syndrome (the
detector bits of one logical cycle) and produces a :class:`DecodeResult`:
a predicted logical-observable flip, the matching it derived, and a latency
estimate (modeled hardware cycles for the hardware designs, measured
wall-clock for software decoders).

A *logical error* occurs when the prediction disagrees with the actual
observable flip sampled alongside the syndrome; the experiment harness in
:mod:`repro.experiments.memory` does that accounting.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DecodeResult", "Decoder", "BOUNDARY", "matching_to_detectors"]

from ..graphs.decoding_graph import BOUNDARY
from ..matching.boundary import matching_to_detectors


@dataclass
class DecodeResult:
    """Outcome of decoding one syndrome.

    Attributes:
        prediction: Predicted logical-observable flip.
        matching: Matched pairs in *detector index* terms; a pair's second
            element is :data:`BOUNDARY` for a boundary match.
        weight: Aggregate weight of the matching.
        cycles: Modeled hardware cycles consumed (0 for software decoders).
        latency_ns: Latency estimate -- modeled from cycles for hardware
            decoders, measured wall-clock for software decoders.
        decoded: False when the decoder declined the syndrome (e.g. Astrea
            beyond Hamming weight 10); the prediction is then "no flip".
        timed_out: True when a real-time decoder hit its deadline before
            exhausting its search (the result is then best-effort).
    """

    prediction: bool
    matching: list[tuple[int, int]] = field(default_factory=list)
    weight: float = 0.0
    cycles: int = 0
    latency_ns: float = 0.0
    decoded: bool = True
    timed_out: bool = False


class Decoder(ABC):
    """Abstract base class of all decoders.

    Subclasses implement :meth:`decode_active`; syndromes arrive either as
    boolean vectors (:meth:`decode`) or as active-index lists.
    """

    #: Human-readable decoder name (used in reports and benchmarks).
    name: str = "decoder"

    @abstractmethod
    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode a syndrome given its non-zero detector indices."""

    def decode(self, syndrome: np.ndarray) -> DecodeResult:
        """Decode a syndrome given as a boolean/0-1 vector."""
        active = [int(i) for i in np.nonzero(np.asarray(syndrome))[0]]
        return self.decode_active(active)

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode each row of a (shots, detectors) syndrome matrix."""
        return [self.decode(row) for row in syndromes]
