"""A NISQ+-style single-round (time-blind) decoder.

NISQ+, QECOOL and QULATIS trade accuracy for speed partly by decoding
fewer than ``d`` syndrome rounds at a time -- NISQ+ uses just one.  The
consequence (paper section 2.3.3): measurement errors, which fire the same
parity check in *consecutive* rounds, cannot be recognised as such, and
each firing is corrected as if it were a data error.

This decoder reproduces that design point on our stack: it slices the
syndrome vector into detector layers, decodes every layer independently
with exact MWPM *restricted to intra-layer pairings* (plus the boundary),
and XORs the layer predictions.  A measurement error -- one fault firing
the same check in two consecutive layers -- is thus mis-decoded as two
separate data-error events, which is precisely what costs these designs
orders of magnitude in logical error rate against full-history decoders
(see ``benchmarks/bench_ext_rounds.py``).
"""

from __future__ import annotations

import numpy as np

from ..circuits.memory import MemoryExperiment
from ..graphs.weights import GlobalWeightTable
from ..matching.blossom import min_weight_perfect_matching
from .base import DecodeResult, Decoder

__all__ = ["SingleRoundDecoder"]


class SingleRoundDecoder(Decoder):
    """Decode each detector layer independently (time-blind MWPM).

    Args:
        gwt: Global Weight Table of the full experiment.
        experiment: The memory experiment (provides the layer structure).
    """

    name = "Single-round (NISQ+-style)"

    def __init__(self, gwt: GlobalWeightTable, experiment: MemoryExperiment) -> None:
        self.gwt = gwt
        layers = [t for (_x, _y, t) in experiment.detector_coords]
        self._layer_of = np.array(layers, dtype=np.int64)
        self._num_layers = max(layers) + 1 if layers else 0

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode layer by layer, blind to time correlations."""
        if not active:
            return DecodeResult(prediction=False)
        prediction = False
        matching: list[tuple[int, int]] = []
        weight = 0.0
        by_layer: dict[int, list[int]] = {}
        for detector in active:
            by_layer.setdefault(int(self._layer_of[detector]), []).append(detector)
        for layer in sorted(by_layer):
            bits = sorted(by_layer[layer])
            pairs, layer_weight, layer_parity = self._decode_layer(bits)
            matching.extend(pairs)
            weight += layer_weight
            prediction ^= layer_parity
        return DecodeResult(
            prediction=prediction,
            matching=sorted(matching),
            weight=weight,
            cycles=1,
            latency_ns=4.0,  # the speed is the point of these designs
        )

    def _decode_layer(
        self, bits: list[int]
    ) -> tuple[list[tuple[int, int]], float, bool]:
        """Exact MWPM over one layer's defects using intra-layer weights."""
        from ..matching.boundary import MatchingProblem

        problem = MatchingProblem.from_syndrome(self.gwt, bits)
        if problem.num_nodes == 0:
            return [], 0.0, False
        pairs = min_weight_perfect_matching(problem.weights)
        from .base import matching_to_detectors

        return (
            matching_to_detectors(pairs, problem.active, problem.has_virtual),
            problem.total_weight(pairs),
            problem.prediction(pairs),
        )
