"""Sliding-window (streaming) decoding.

The paper's decoders consume one logical cycle -- ``d`` rounds -- as a
block.  A fault-tolerant computer running many logical cycles back to back
cannot wait for all syndrome data before acting; the standard remedy is
*sliding-window* decoding: decode a window of ``w`` detector layers,
commit only the corrections in its oldest ``c`` layers, slide forward by
``c``, and re-decode -- carrying *residual defects* forward wherever a
committed correction chain was cut at the commit boundary.

:class:`SlidingWindowDecoder` implements this on top of the repository's
matching stack:

1. each window's defects (real XOR residual) are decoded with exact MWPM;
2. the matching is expanded to primitive decoding-graph edges
   (:mod:`repro.decoders.correction`);
3. edges touching the commit region are committed -- their logical
   parities accumulate into the prediction, and their endpoints outside
   the region toggle the residual-defect state seen by the next window;
4. the final window commits everything.

With a window spanning the whole experiment this reduces *exactly* to
block MWPM decoding (asserted in the tests); short windows trade accuracy
for bounded decode latency per round, and the bench quantifies the trade.
"""

from __future__ import annotations

import numpy as np

from ..circuits.memory import MemoryExperiment
from ..graphs.decoding_graph import BOUNDARY, DecodingGraph
from ..graphs.weights import GlobalWeightTable
from ..matching.blossom import min_weight_perfect_matching
from ..matching.boundary import MatchingProblem
from .base import DecodeResult, Decoder
from .correction import primitive_edge_parities

__all__ = ["SlidingWindowDecoder"]


class SlidingWindowDecoder(Decoder):
    """Streaming MWPM over overlapping windows of detector layers.

    Args:
        gwt: Global Weight Table of the full experiment.
        graph: The decoding graph (for path expansion).
        experiment: The memory experiment (provides the layer structure).
        window: Layers decoded together per step (>= 2).
        commit: Layers committed (and slid past) per step; must be below
            ``window`` so later layers provide lookahead.
    """

    name = "Sliding-window MWPM"

    def __init__(
        self,
        gwt: GlobalWeightTable,
        graph: DecodingGraph,
        experiment: MemoryExperiment,
        *,
        window: int = 6,
        commit: int = 2,
    ) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if not 1 <= commit < window:
            raise ValueError("commit must satisfy 1 <= commit < window")
        self.gwt = gwt
        self.graph = graph
        self.window = window
        self.commit = commit
        layers = [t for (_x, _y, t) in experiment.detector_coords]
        if len(layers) != graph.num_detectors:
            raise ValueError("experiment and graph disagree on detector count")
        self._layer_of = np.array(layers, dtype=np.int64)
        self._num_layers = max(layers) + 1 if layers else 0
        self._edge_parity = primitive_edge_parities(graph)
        self._boundary = graph.num_detectors

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Stream the syndrome through overlapping windows."""
        if not active:
            return DecodeResult(prediction=False)
        defects = np.zeros(self.graph.num_detectors, dtype=bool)
        defects[list(active)] = True
        prediction = False
        committed_edges: list[tuple[int, int]] = []
        start = 0
        windows = 0
        while True:
            end = min(start + self.window, self._num_layers)
            final = end >= self._num_layers
            commit_end = self._num_layers if final else start + self.commit
            in_window = (
                (self._layer_of >= start) & (self._layer_of < end) & defects
            )
            window_active = [int(i) for i in np.nonzero(in_window)[0]]
            windows += 1
            if window_active:
                edges = self._window_edges(window_active)
                for u, v in edges:
                    if not self._edge_committed(u, v, commit_end):
                        continue
                    key = self._edge_key(u, v)
                    prediction ^= self._edge_parity[key]
                    committed_edges.append((u, v))
                    for vertex in (u, v):
                        if vertex != BOUNDARY:
                            defects[vertex] = not defects[vertex]
            if final:
                break
            start += self.commit
        leftover = [int(i) for i in np.nonzero(defects)[0]]
        if leftover:
            raise AssertionError(
                f"sliding window left unresolved defects: {leftover}"
            )
        return DecodeResult(
            prediction=prediction,
            matching=sorted(
                (min(u, v), max(u, v)) if v != BOUNDARY else (u, BOUNDARY)
                for u, v in committed_edges
            ),
            weight=float(len(committed_edges)),
            cycles=windows,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _window_edges(
        self, window_active: list[int]
    ) -> list[tuple[int, int]]:
        """Exact MWPM of one window, expanded to primitive edges."""
        problem = MatchingProblem.from_syndrome(self.gwt, window_active)
        pairs = min_weight_perfect_matching(problem.weights)
        edges: dict[tuple[int, int], int] = {}
        virtual = len(problem.active)
        for a, b in pairs:
            u = BOUNDARY if (problem.has_virtual and a == virtual) else problem.active[a]
            v = BOUNDARY if (problem.has_virtual and b == virtual) else problem.active[b]
            for x, y in self.graph.shortest_path(u, v):
                key = self._edge_key(x, y)
                edges[key] = edges.get(key, 0) + 1
        out: list[tuple[int, int]] = []
        for (x, y), count in sorted(edges.items()):
            if count % 2:
                out.append((x, BOUNDARY if y == self._boundary else y))
        return out

    def _edge_key(self, u: int, v: int) -> tuple[int, int]:
        du = self._boundary if u == BOUNDARY else u
        dv = self._boundary if v == BOUNDARY else v
        return (min(du, dv), max(du, dv))

    def _edge_committed(self, u: int, v: int, commit_end: int) -> bool:
        """An edge commits when its earliest real endpoint is committed."""
        layers = [
            int(self._layer_of[x]) for x in (u, v) if x != BOUNDARY
        ]
        if not layers:
            return True  # boundary-boundary (cannot occur in practice)
        return min(layers) < commit_end