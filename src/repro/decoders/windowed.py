"""Sliding-window (streaming) decoding.

The paper's decoders consume one logical cycle -- ``d`` rounds -- as a
block.  A fault-tolerant computer running many logical cycles back to back
cannot wait for all syndrome data before acting; the standard remedy is
*sliding-window* decoding: decode a window of ``w`` detector layers,
commit only the corrections in its oldest ``c`` layers, slide forward by
``c``, and re-decode -- carrying *residual defects* forward wherever a
committed correction chain was cut at the commit boundary.

:class:`SlidingWindowDecoder` implements this on top of the repository's
matching stack:

1. each window's defects (real XOR residual) are decoded with exact MWPM
   (the vectorized exhaustive search for small windows, blossom beyond);
2. the matching is expanded to primitive decoding-graph edges
   (:mod:`repro.decoders.correction`);
3. edges touching the commit region are committed -- their logical
   parities accumulate into the prediction, and their endpoints outside
   the region toggle the residual-defect state seen by the next window;
4. the final window commits everything.

With a window spanning the whole experiment this reduces *exactly* to
block MWPM decoding (asserted in the tests); short windows trade accuracy
for bounded decode latency per round, and the bench quantifies the trade.

The window-step machinery is public -- :meth:`~SlidingWindowDecoder.window_plan`,
:meth:`~SlidingWindowDecoder.window_edges`,
:meth:`~SlidingWindowDecoder.window_edges_batch` and
:meth:`~SlidingWindowDecoder.commit_edges` -- because the streaming decode
service (:mod:`repro.service`) drives the same commit/residual bookkeeping
incrementally, with the window solves shipped to a warm worker pool.
:meth:`~SlidingWindowDecoder.decode_batch` runs many shots through the
plan in lockstep so every window step becomes one cross-shot call into
the batched matching kernels, bit-identical to the scalar path.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..backend import from_device
from ..circuits.memory import MemoryExperiment
from ..graphs.decoding_graph import BOUNDARY, DecodingGraph
from ..graphs.weights import GlobalWeightTable
from ..matching.blossom import min_weight_perfect_matching
from ..matching.boundary import MatchingProblem
from ..matching.search import MAX_SEARCH_NODES, batched_search, vectorized_search
from .base import DecodeResult, Decoder, validate_syndrome_batch
from .correction import primitive_edge_parities

__all__ = ["SlidingWindowDecoder"]

#: Default capacity of the per-decoder window-solve memo (distinct active
#: sets per experiment are heavily repeated across shots and streams).
DEFAULT_EDGE_CACHE = 4096


class SlidingWindowDecoder(Decoder):
    """Streaming MWPM over overlapping windows of detector layers.

    Args:
        gwt: Global Weight Table of the full experiment.
        graph: The decoding graph (for path expansion).
        experiment: The memory experiment (provides the layer structure).
        window: Layers decoded together per step (>= 2); must not exceed
            the experiment's layer count (a longer window could never
            fill, so such a syndrome stream is rejected up front).
        commit: Layers committed (and slid past) per step; must be below
            ``window`` so later layers provide lookahead.
        edge_cache: Capacity of the window-solve memo (0 disables it).

    Raises:
        ValueError: On invalid window/commit geometry, on an experiment
            whose detector count disagrees with the graph, or on a window
            longer than the experiment's detector-layer count.
    """

    name = "Sliding-window MWPM"

    def __init__(
        self,
        gwt: GlobalWeightTable,
        graph: DecodingGraph,
        experiment: MemoryExperiment,
        *,
        window: int = 6,
        commit: int = 2,
        edge_cache: int = DEFAULT_EDGE_CACHE,
    ) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if not 1 <= commit < window:
            raise ValueError("commit must satisfy 1 <= commit < window")
        if edge_cache < 0:
            raise ValueError("edge_cache must be >= 0")
        self.gwt = gwt
        self.graph = graph
        self.window = window
        self.commit = commit
        layers = [t for (_x, _y, t) in experiment.detector_coords]
        if len(layers) != graph.num_detectors:
            raise ValueError("experiment and graph disagree on detector count")
        self._layer_of = np.array(layers, dtype=np.int64)
        self._num_layers = max(layers) + 1 if layers else 0
        if self._num_layers and window > self._num_layers:
            raise ValueError(
                f"window={window} spans more detector layers than the "
                f"experiment provides ({self._num_layers}); such a stream "
                "can never fill one window -- shrink the window (or decode "
                "the experiment as a single block)"
            )
        self._edge_parity = primitive_edge_parities(graph)
        self._boundary = graph.num_detectors
        self.syndrome_length = graph.num_detectors
        self._plan = self._build_plan()
        self._cache_capacity = edge_cache
        self._edge_cache: OrderedDict[tuple[int, ...], tuple] = OrderedDict()

    # ------------------------------------------------------------------
    # Window schedule
    # ------------------------------------------------------------------

    def _build_plan(self) -> tuple[tuple[int, int, int, bool], ...]:
        if self._num_layers == 0:
            return ()
        plan: list[tuple[int, int, int, bool]] = []
        start = 0
        while True:
            end = min(start + self.window, self._num_layers)
            final = end >= self._num_layers
            commit_end = self._num_layers if final else start + self.commit
            plan.append((start, end, commit_end, final))
            if final:
                break
            start += self.commit
        return tuple(plan)

    @property
    def num_layers(self) -> int:
        """Detector layers of the experiment this decoder was built for."""
        return self._num_layers

    def window_plan(self) -> tuple[tuple[int, int, int, bool], ...]:
        """The fixed window schedule: ``(start, end, commit_end, final)``.

        ``[start, end)`` is the decoded layer span of the step,
        ``[.., commit_end)`` the span whose corrections commit, and
        ``final`` marks the last step (which commits everything).  The
        streaming service replays exactly this schedule per stream.
        """
        return self._plan

    def layer_detectors(self, layer: int) -> np.ndarray:
        """Detector indices of one layer, in increasing order.

        The streaming service uses this to map a stream's per-round bit
        vectors onto the experiment's global detector indexing.
        """
        if not 0 <= layer < self._num_layers:
            raise ValueError(
                f"layer {layer} out of range [0, {self._num_layers})"
            )
        return np.nonzero(self._layer_of == layer)[0]

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Stream the syndrome through overlapping windows."""
        if not active:
            return DecodeResult(prediction=False)
        defects = np.zeros(self.graph.num_detectors, dtype=bool)
        defects[list(active)] = True
        prediction = False
        committed_edges: list[tuple[int, int]] = []
        for start, end, commit_end, _final in self._plan:
            window_active = self.window_active(defects, start, end)
            if window_active:
                edges = self.window_edges(window_active)
                flip, committed = self.commit_edges(edges, commit_end, defects)
                prediction ^= flip
                committed_edges.extend(committed)
        leftover = [int(i) for i in np.nonzero(defects)[0]]
        if leftover:
            raise AssertionError(
                f"sliding window left unresolved defects: {leftover}"
            )
        return DecodeResult(
            prediction=prediction,
            matching=self._present_matching(committed_edges),
            weight=float(len(committed_edges)),
            cycles=len(self._plan),
        )

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Run every shot through the window plan in lockstep.

        At each window step the non-trivial shots' active sets are solved
        together through :meth:`window_edges_batch` (one batched-kernel
        call per Hamming-weight bucket) instead of shot-at-a-time; the
        commit/residual bookkeeping is per shot and unchanged, so the
        results are bit-identical to :meth:`decode_active` row by row.
        """
        validated = validate_syndrome_batch(syndromes, self.syndrome_length)
        shots = validated.shape[0]
        defects = validated.copy()
        nontrivial = validated.any(axis=1)
        predictions = np.zeros(shots, dtype=bool)
        committed: list[list[tuple[int, int]]] = [[] for _ in range(shots)]
        for start, end, commit_end, _final in self._plan:
            span = (self._layer_of >= start) & (self._layer_of < end)
            rows = [
                int(i)
                for i in np.nonzero(nontrivial & (defects & span).any(axis=1))[0]
            ]
            if not rows:
                continue
            actives = [
                [int(j) for j in np.nonzero(defects[i] & span)[0]] for i in rows
            ]
            solved = self.window_edges_batch(actives)
            for i, edges in zip(rows, solved):
                flip, edges_committed = self.commit_edges(
                    edges, commit_end, defects[i]
                )
                predictions[i] ^= flip
                committed[i].extend(edges_committed)
        results: list[DecodeResult] = []
        for i in range(shots):
            if not nontrivial[i]:
                results.append(DecodeResult(prediction=False))
                continue
            leftover = [int(j) for j in np.nonzero(defects[i])[0]]
            if leftover:
                raise AssertionError(
                    f"sliding window left unresolved defects: {leftover}"
                )
            results.append(
                DecodeResult(
                    prediction=bool(predictions[i]),
                    matching=self._present_matching(committed[i]),
                    weight=float(len(committed[i])),
                    cycles=len(self._plan),
                )
            )
        return results

    # ------------------------------------------------------------------
    # Window-step primitives (shared with the streaming service)
    # ------------------------------------------------------------------

    def window_active(
        self, defects: np.ndarray, start: int, end: int
    ) -> list[int]:
        """Defect indices of ``defects`` within layer span ``[start, end)``."""
        in_window = (self._layer_of >= start) & (self._layer_of < end) & defects
        return [int(i) for i in np.nonzero(in_window)[0]]

    def window_edges(self, window_active: list[int]) -> list[tuple[int, int]]:
        """Exact MWPM of one window, expanded to primitive edges.

        Small problems (after virtual-boundary folding, at most
        :data:`~repro.matching.search.MAX_SEARCH_NODES` nodes) run the
        vectorized exhaustive search -- bit-identical to the batched
        kernel :meth:`window_edges_batch` routes through -- and larger
        ones fall back to blossom.  Results are memoised per active set.
        """
        key = tuple(window_active)
        cached = self._cache_get(key)
        if cached is not None:
            return list(cached)
        problem = MatchingProblem.from_syndrome(self.gwt, window_active)
        if problem.num_nodes <= MAX_SEARCH_NODES:
            pairs, _total, _accesses = vectorized_search(problem.weights)
        else:
            pairs = min_weight_perfect_matching(problem.weights)
        edges = self._expand_pairs(problem.active, problem.has_virtual, pairs)
        self._cache_put(key, tuple(edges))
        return edges

    def window_edges_batch(
        self, actives: list[list[int]]
    ) -> list[list[tuple[int, int]]]:
        """Solve many windows at once through the batched kernels.

        The active sets are bucketed by Hamming weight (the batched
        matching-problem constructor requires uniform weight), each
        bucket small enough for the exhaustive search runs as a single
        :func:`~repro.matching.search.batched_search` call, and oversized
        buckets fall back to the scalar path.  Every row's edge list is
        bit-identical to :meth:`window_edges` on that row.
        """
        out: list[list[tuple[int, int]] | None] = [None] * len(actives)
        buckets: dict[int, list[int]] = {}
        for i, window_active in enumerate(actives):
            cached = self._cache_get(tuple(window_active))
            if cached is not None:
                out[i] = list(cached)
            else:
                buckets.setdefault(len(window_active), []).append(i)
        for weight, rows in buckets.items():
            m = weight + (weight % 2)
            if weight == 0 or m > MAX_SEARCH_NODES or len(rows) == 1:
                for i in rows:
                    out[i] = self.window_edges(actives[i])
                continue
            batch = MatchingProblem.from_syndrome_batch(
                self.gwt,
                np.asarray([actives[i] for i in rows], dtype=np.intp),
            )
            pair_tensor, _totals, _preds = batched_search(
                batch.weights, batch.parities
            )
            pair_tensor = np.asarray(from_device(pair_tensor))
            for j, i in enumerate(rows):
                pairs = [(int(a), int(b)) for a, b in pair_tensor[j]]
                edges = self._expand_pairs(
                    batch.active_list(j), batch.has_virtual, pairs
                )
                self._cache_put(tuple(actives[i]), tuple(edges))
                out[i] = edges
        return [edges if edges is not None else [] for edges in out]

    def commit_edges(
        self,
        edges: list[tuple[int, int]],
        commit_end: int,
        defects: np.ndarray,
    ) -> tuple[bool, list[tuple[int, int]]]:
        """Commit the edges reaching into layers below ``commit_end``.

        Mutates ``defects``: every committed edge toggles its real
        endpoints, leaving the residual-defect state the next window
        decodes against.

        Returns:
            ``(flip, committed)`` -- the parity contribution of the
            committed edges and the edges themselves.
        """
        flip = False
        committed: list[tuple[int, int]] = []
        for u, v in edges:
            if not self._edge_committed(u, v, commit_end):
                continue
            key = self._edge_key(u, v)
            flip ^= self._edge_parity[key]
            committed.append((u, v))
            for vertex in (u, v):
                if vertex != BOUNDARY:
                    defects[vertex] = not defects[vertex]
        return flip, committed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _expand_pairs(
        self,
        active: list[int],
        has_virtual: bool,
        pairs: list[tuple[int, int]],
    ) -> list[tuple[int, int]]:
        """Expand local matching pairs to XOR-reduced primitive edges."""
        edges: dict[tuple[int, int], int] = {}
        virtual = len(active)
        for a, b in pairs:
            u = BOUNDARY if (has_virtual and a == virtual) else active[a]
            v = BOUNDARY if (has_virtual and b == virtual) else active[b]
            for x, y in self.graph.shortest_path(u, v):
                key = self._edge_key(x, y)
                edges[key] = edges.get(key, 0) + 1
        out: list[tuple[int, int]] = []
        for (x, y), count in sorted(edges.items()):
            if count % 2:
                out.append((x, BOUNDARY if y == self._boundary else y))
        return out

    def _window_edges(
        self, window_active: list[int]
    ) -> list[tuple[int, int]]:
        """Backwards-compatible alias of :meth:`window_edges`."""
        return self.window_edges(window_active)

    def _present_matching(
        self, committed_edges: list[tuple[int, int]]
    ) -> list[tuple[int, int]]:
        return sorted(
            (min(u, v), max(u, v)) if v != BOUNDARY else (u, BOUNDARY)
            for u, v in committed_edges
        )

    def _cache_get(self, key: tuple[int, ...]) -> tuple | None:
        if not self._cache_capacity:
            return None
        cached = self._edge_cache.get(key)
        if cached is not None:
            self._edge_cache.move_to_end(key)
        return cached

    def _cache_put(self, key: tuple[int, ...], edges: tuple) -> None:
        if not self._cache_capacity:
            return
        self._edge_cache[key] = edges
        self._edge_cache.move_to_end(key)
        while len(self._edge_cache) > self._cache_capacity:
            self._edge_cache.popitem(last=False)

    def _edge_key(self, u: int, v: int) -> tuple[int, int]:
        du = self._boundary if u == BOUNDARY else u
        dv = self._boundary if v == BOUNDARY else v
        return (min(du, dv), max(du, dv))

    def _edge_committed(self, u: int, v: int, commit_end: int) -> bool:
        """An edge commits when its earliest real endpoint is committed."""
        layers = [
            int(self._layer_of[x]) for x in (u, v) if x != BOUNDARY
        ]
        if not layers:
            return True  # boundary-boundary (cannot occur in practice)
        return min(layers) < commit_end
