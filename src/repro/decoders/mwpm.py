"""Software MWPM decoder -- the paper's gold-standard baseline.

This decoder plays the role of the BlossomV-based software MWPM the paper
uses as its accuracy baseline (section 3.3) and as the subject of Figure 3
(software decoding latencies).  By default it decodes through the sparse
exact-matching engine (:mod:`repro.matching.sparse`): syndromes decompose
into independent defect clusters, small clusters are solved by closed
forms or the vectorized exhaustive-search kernels, and cluster solutions
are memoized.  The engine falls back to one full dense blossom solve
(:mod:`repro.matching.blossom`) whenever its separation test cannot prove
the decomposition exact, so accuracy is that of exact MWPM either way;
``use_sparse=False`` selects the always-dense reference path.

Two configurations matter in the paper:

* *idealized MWPM*: full-precision weights (``GlobalWeightTable`` built
  with ``lsb=None``), the accuracy yardstick of Tables 4/9 and Figures
  12/14;
* *quantized MWPM*: the same algorithm reading the 8-bit GWT, useful to
  isolate quantization effects from search effects.

Latency is measured wall-clock (``latency_ns``), which the Figure 3 bench
uses to reproduce the observation that software MWPM misses the 1 us
real-time deadline for most non-trivial syndromes.  In
:meth:`MWPMDecoder.decode_batch`, per-bucket shared construction time is
amortized into each row's latency so batched and per-row stats compare.
"""

from __future__ import annotations

import math
import time
import warnings

import numpy as np

from ..graphs.weights import GlobalWeightTable
from ..matching.blossom import min_weight_perfect_matching
from ..matching.boundary import MatchingProblem
from ..matching.sparse import SparseEngineError, SparseMatchingEngine, SparseStats
from .base import (
    DecodeResult,
    Decoder,
    DecoderFallbackWarning,
    matching_to_detectors,
    validate_syndrome_batch,
)

__all__ = ["MWPMDecoder"]


class MWPMDecoder(Decoder):
    """Exact minimum-weight perfect-matching decoder.

    Args:
        gwt: Global Weight Table for the target code/noise configuration.
        measure_time: Record wall-clock decode time in ``latency_ns``
            (enabled by default; disable for slightly faster bulk decoding).
        use_sparse: Decode through the sparse cluster-decomposition engine
            (default).  ``False`` forces the dense blossom solve on every
            syndrome -- the reference the sparse engine is validated
            against.
        sparse_cache_size: LRU capacity of the sparse engine's cluster
            cache (ignored when ``use_sparse`` is False).
        structure: Pre-built neighbor structure for ``gwt`` (e.g. from the
            pipeline's artifact store), forwarded to the sparse engine so
            construction skips its radius/separability scan.
    """

    name = "MWPM"

    def __init__(
        self,
        gwt: GlobalWeightTable,
        *,
        measure_time: bool = True,
        use_sparse: bool = True,
        sparse_cache_size: int = 65536,
        structure=None,
    ):
        self.gwt = gwt
        self.syndrome_length = int(gwt.weights.shape[0])
        self.measure_time = measure_time
        self.use_sparse = use_sparse
        #: Sparse-engine anomalies recovered by re-decoding densely; the
        #: supervised experiment layer surfaces this count.
        self.fallback_events = 0
        self._engine = (
            SparseMatchingEngine(
                gwt, cache_size=sparse_cache_size, structure=structure
            )
            if use_sparse
            else None
        )

    @property
    def sparse_stats(self) -> SparseStats | None:
        """Counters of the sparse engine (None on the dense path)."""
        return self._engine.stats if self._engine is not None else None

    def _degrade(self, reason: str, detail: str) -> None:
        """Record a sparse-engine anomaly and warn that we decode densely."""
        self.fallback_events += 1
        warnings.warn(
            DecoderFallbackWarning(self.name, reason, detail), stacklevel=3
        )

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode by solving the exact MWPM of the active syndrome bits.

        Sparse-engine inconsistencies (:class:`SparseEngineError`, any
        unexpected internal failure, or a non-finite matching weight)
        degrade to the dense reference solve with a
        :class:`DecoderFallbackWarning` instead of aborting.
        """
        start = time.perf_counter() if self.measure_time else 0.0
        if self._engine is not None:
            try:
                pairs, weight, prediction = self._engine.solve(active)
                if not math.isfinite(weight):
                    raise SparseEngineError(
                        f"non-finite matching weight {weight!r}"
                    )
                result = DecodeResult(
                    prediction=prediction, matching=pairs, weight=weight
                )
            except Exception as exc:
                self._degrade(type(exc).__name__, str(exc))
                result = self._decode_dense(active)
        else:
            result = self._decode_dense(active)
        if self.measure_time:
            result.latency_ns = (time.perf_counter() - start) * 1e9
        return result

    def _decode_dense(self, active: list[int]) -> DecodeResult:
        """One dense blossom solve (the reference path)."""
        problem = MatchingProblem.from_syndrome(self.gwt, active)
        if problem.num_nodes == 0:
            pairs: list[tuple[int, int]] = []
        else:
            pairs = min_weight_perfect_matching(problem.weights)
        return DecodeResult(
            prediction=problem.prediction(pairs),
            matching=matching_to_detectors(pairs, problem.active, problem.has_virtual),
            weight=problem.total_weight(pairs),
        )

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        On the sparse path the active indices of all rows are extracted
        with one ``np.nonzero`` and each row runs through the cluster
        engine (whose memoization is what makes bulk decoding fast).  On
        the dense path syndromes are bucketed by Hamming weight so each
        bucket's matching problems are constructed with one GWT gather
        (:meth:`MatchingProblem.from_syndrome_batch`) instead of one per
        row.  Either way results are identical to per-row :meth:`decode`,
        and shared per-batch construction time is amortized into each
        row's ``latency_ns`` so latency stats stay comparable with the
        per-row path.
        """
        syndromes = validate_syndrome_batch(syndromes, self.syndrome_length)
        if self._engine is not None:
            return self._decode_batch_sparse(syndromes)
        return self._decode_batch_dense(syndromes)

    def _decode_batch_sparse(self, syndromes: np.ndarray) -> list[DecodeResult]:
        num = syndromes.shape[0]
        start = time.perf_counter() if self.measure_time else 0.0
        try:
            solved = self._engine.solve_batch(syndromes)
            bad = [w for _pairs, w, _pred in solved if not math.isfinite(w)]
            if bad:
                raise SparseEngineError(
                    f"non-finite matching weight {bad[0]!r} in batch"
                )
        except Exception as exc:
            self._degrade(type(exc).__name__, str(exc))
            return self._decode_batch_dense(syndromes)
        # Bucketed solving shares nearly all of its work across rows, so
        # the honest per-row latency is the amortized batch wall-clock.
        shared_ns = (
            (time.perf_counter() - start) * 1e9 / num
            if self.measure_time and num
            else 0.0
        )
        return [
            DecodeResult(
                prediction=prediction,
                matching=pairs,
                weight=weight,
                latency_ns=shared_ns,
            )
            for pairs, weight, prediction in solved
        ]

    def _decode_batch_dense(self, syndromes: np.ndarray) -> list[DecodeResult]:
        results: list[DecodeResult | None] = [None] * syndromes.shape[0]
        hw = syndromes.sum(axis=1)
        for w in np.unique(hw):
            start = time.perf_counter() if self.measure_time else 0.0
            rows = np.nonzero(hw == w)[0]
            active = np.nonzero(syndromes[rows])[1].reshape(len(rows), int(w))
            batch = MatchingProblem.from_syndrome_batch(self.gwt, active)
            shared_ns = (
                (time.perf_counter() - start) * 1e9 / len(rows)
                if self.measure_time
                else 0.0
            )
            for j, i in enumerate(rows):
                start = time.perf_counter() if self.measure_time else 0.0
                problem = batch.problem(j)
                if problem.num_nodes == 0:
                    pairs: list[tuple[int, int]] = []
                else:
                    pairs = min_weight_perfect_matching(problem.weights)
                result = DecodeResult(
                    prediction=problem.prediction(pairs),
                    matching=matching_to_detectors(
                        pairs, problem.active, problem.has_virtual
                    ),
                    weight=problem.total_weight(pairs),
                )
                if self.measure_time:
                    result.latency_ns = (
                        (time.perf_counter() - start) * 1e9 + shared_ns
                    )
                results[i] = result
        return results
