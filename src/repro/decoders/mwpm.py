"""Software MWPM decoder -- the paper's gold-standard baseline.

This decoder plays the role of the BlossomV-based software MWPM the paper
uses as its accuracy baseline (section 3.3) and as the subject of Figure 3
(software decoding latencies).  It solves each syndrome exactly with the
from-scratch blossom implementation in :mod:`repro.matching.blossom`.

Two configurations matter in the paper:

* *idealized MWPM*: full-precision weights (``GlobalWeightTable`` built
  with ``lsb=None``), the accuracy yardstick of Tables 4/9 and Figures
  12/14;
* *quantized MWPM*: the same algorithm reading the 8-bit GWT, useful to
  isolate quantization effects from search effects.

Latency is measured wall-clock (``latency_ns``), which the Figure 3 bench
uses to reproduce the observation that software MWPM misses the 1 us
real-time deadline for most non-trivial syndromes.
"""

from __future__ import annotations

import time

import numpy as np

from ..graphs.weights import GlobalWeightTable
from ..matching.blossom import min_weight_perfect_matching
from ..matching.boundary import MatchingProblem
from .base import DecodeResult, Decoder, matching_to_detectors

__all__ = ["MWPMDecoder"]


class MWPMDecoder(Decoder):
    """Exact minimum-weight perfect-matching decoder.

    Args:
        gwt: Global Weight Table for the target code/noise configuration.
        measure_time: Record wall-clock decode time in ``latency_ns``
            (enabled by default; disable for slightly faster bulk decoding).
    """

    name = "MWPM"

    def __init__(self, gwt: GlobalWeightTable, *, measure_time: bool = True):
        self.gwt = gwt
        self.measure_time = measure_time

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode by solving the exact MWPM of the active syndrome bits."""
        start = time.perf_counter() if self.measure_time else 0.0
        problem = MatchingProblem.from_syndrome(self.gwt, active)
        if problem.num_nodes == 0:
            pairs: list[tuple[int, int]] = []
        else:
            pairs = min_weight_perfect_matching(problem.weights)
        result = DecodeResult(
            prediction=problem.prediction(pairs),
            matching=matching_to_detectors(pairs, problem.active, problem.has_virtual),
            weight=problem.total_weight(pairs),
        )
        if self.measure_time:
            result.latency_ns = (time.perf_counter() - start) * 1e9
        return result

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        The blossom solve itself stays per-syndrome (its augmenting-path
        state is sequential), but syndromes are bucketed by Hamming weight
        so each bucket's matching problems are constructed with one GWT
        gather (:meth:`MatchingProblem.from_syndrome_batch`) instead of one
        per row.  Results are identical to per-row :meth:`decode`.
        """
        syndromes = np.asarray(syndromes).astype(bool, copy=False)
        if syndromes.ndim != 2:
            raise ValueError("decode_batch expects a (shots, detectors) matrix")
        results: list[DecodeResult | None] = [None] * syndromes.shape[0]
        hw = syndromes.sum(axis=1)
        for w in np.unique(hw):
            rows = np.nonzero(hw == w)[0]
            active = np.nonzero(syndromes[rows])[1].reshape(len(rows), int(w))
            batch = MatchingProblem.from_syndrome_batch(self.gwt, active)
            for j, i in enumerate(rows):
                start = time.perf_counter() if self.measure_time else 0.0
                problem = batch.problem(j)
                if problem.num_nodes == 0:
                    pairs: list[tuple[int, int]] = []
                else:
                    pairs = min_weight_perfect_matching(problem.weights)
                result = DecodeResult(
                    prediction=problem.prediction(pairs),
                    matching=matching_to_detectors(
                        pairs, problem.active, problem.has_virtual
                    ),
                    weight=problem.total_weight(pairs),
                )
                if self.measure_time:
                    result.latency_ns = (time.perf_counter() - start) * 1e9
                results[i] = result
        return results
