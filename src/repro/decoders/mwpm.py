"""Software MWPM decoder -- the paper's gold-standard baseline.

This decoder plays the role of the BlossomV-based software MWPM the paper
uses as its accuracy baseline (section 3.3) and as the subject of Figure 3
(software decoding latencies).  By default it decodes through the sparse
exact-matching engine (:mod:`repro.matching.sparse`): syndromes decompose
into independent defect clusters, small clusters are solved by closed
forms or the vectorized exhaustive-search kernels, and cluster solutions
are memoized.  Syndromes the table engine cannot certify (unsafe pairs)
and clusters too large for the search kernels route to the graph-local
sparse-blossom engine (:mod:`repro.matching.sparse_blossom`) when one is
attached; without one the engine raises and the decoder degrades to a
dense reference solve (:mod:`repro.matching.blossom`) with a warning, so
accuracy is that of exact MWPM either way.  ``use_sparse=False`` selects
the always-dense reference path.

Three constructions matter:

* *idealized MWPM*: full-precision weights (``GlobalWeightTable`` built
  with ``lsb=None``), the accuracy yardstick of Tables 4/9 and Figures
  12/14; pass ``graph=`` alongside to arm the graph-local escape;
* *quantized MWPM*: the same algorithm reading the 8-bit GWT, useful to
  isolate quantization effects from search effects (no graph engine --
  quantized tables do not agree with graph-local weights);
* *graph-only MWPM* (``gwt=None, graph=...``): every syndrome runs the
  sparse-blossom engine directly on decoding-graph adjacency, never
  materializing the O(N^2) weight table -- the d >= 15 configuration.

Latency is measured wall-clock (``latency_ns``), which the Figure 3 bench
uses to reproduce the observation that software MWPM misses the 1 us
real-time deadline for most non-trivial syndromes.  In
:meth:`MWPMDecoder.decode_batch`, per-bucket shared construction time is
amortized into each row's latency so batched and per-row stats compare.
"""

from __future__ import annotations

import math
import operator
import time

import numpy as np

from ..graphs.weights import GlobalWeightTable
from ..matching.blossom import min_weight_perfect_matching
from ..matching.boundary import MatchingProblem
from ..matching.sparse import SparseEngineError, SparseMatchingEngine, SparseStats
from ..matching.sparse_blossom import SparseBlossomEngine
from .base import (
    DecodeResult,
    Decoder,
    matching_to_detectors,
    validate_syndrome_batch,
)
from .cascade import EscalationPolicy

__all__ = ["MWPMDecoder"]


class MWPMDecoder(Decoder):
    """Exact minimum-weight perfect-matching decoder.

    Args:
        gwt: Global Weight Table for the target code/noise configuration,
            or None to decode purely on the decoding graph (``graph``
            required; no dense reference path exists then).
        graph: Optional :class:`~repro.graphs.decoding_graph.DecodingGraph`
            arming the graph-local sparse-blossom engine.  With a table it
            takes the table engine's escape routes (unsafe pairs,
            oversized clusters) -- exact only when ``gwt`` is the graph's
            *ideal* (unquantized) all-pairs table; without a table it is
            the sole engine.
        measure_time: Record wall-clock decode time in ``latency_ns``
            (enabled by default; disable for slightly faster bulk decoding).
        use_sparse: Decode through the sparse cluster-decomposition engine
            (default).  ``False`` forces the dense blossom solve on every
            syndrome -- the reference the sparse engine is validated
            against; requires a weight table.
        sparse_cache_size: LRU capacity of the sparse engines' cluster
            caches (ignored when ``use_sparse`` is False).
        structure: Pre-built neighbor structure for ``gwt`` (e.g. from the
            pipeline's artifact store), forwarded to the sparse engine so
            construction skips its radius/separability scan.
    """

    name = "MWPM"

    def __init__(
        self,
        gwt: GlobalWeightTable | None = None,
        *,
        graph=None,
        measure_time: bool = True,
        use_sparse: bool = True,
        sparse_cache_size: int = 65536,
        structure=None,
    ):
        if gwt is None and graph is None:
            raise ValueError(
                "MWPMDecoder needs a weight table (gwt), a decoding graph "
                "(graph=...), or both"
            )
        self.gwt = gwt
        self.measure_time = measure_time
        self.use_sparse = use_sparse
        # Sparse-engine anomalies escalate to the dense reference tier
        # through the cascade subsystem's policy; without a table there
        # is no dense tier and the policy tells _recover to re-raise.
        self._escalation = EscalationPolicy(
            self.name,
            tier="sparse",
            next_tier="dense" if gwt is not None else None,
        )
        self._graph_engine = (
            SparseBlossomEngine(graph, cache_size=sparse_cache_size)
            if graph is not None and use_sparse
            else None
        )
        if gwt is not None:
            self.syndrome_length = int(gwt.weights.shape[0])
            self._engine = (
                SparseMatchingEngine(
                    gwt,
                    cache_size=sparse_cache_size,
                    structure=structure,
                    graph_engine=self._graph_engine,
                )
                if use_sparse
                else None
            )
        else:
            if not use_sparse:
                raise ValueError(
                    "use_sparse=False (the dense reference path) requires "
                    "a weight table; a graph-only MWPMDecoder has none"
                )
            self.syndrome_length = int(graph.num_detectors)
            self._engine = self._graph_engine

    @property
    def sparse_stats(self) -> SparseStats | None:
        """Counters of the active sparse engine (None on the dense path).

        In graph-only mode these are the sparse-blossom engine's counters;
        otherwise the table engine's (see :attr:`graph_stats` for the
        attached graph engine's own counters).
        """
        return self._engine.stats if self._engine is not None else None

    @property
    def graph_stats(self) -> SparseStats | None:
        """Counters of the graph-local engine (None when not armed)."""
        return (
            self._graph_engine.stats if self._graph_engine is not None else None
        )

    @property
    def fallback_events(self) -> int:
        """Sparse-engine anomalies recovered by re-decoding densely (or,
        without a dense path, re-raised); the supervised experiment
        layer surfaces this count."""
        return self._escalation.escalations

    def _engine_error(self) -> None:
        """Count an unexpected engine failure in the engine's breakdown."""
        self._engine.stats.fallback_events["engine_error"] += 1

    def decode_active(self, active: list[int]) -> DecodeResult:
        """Decode by solving the exact MWPM of the active syndrome bits.

        Sparse-engine inconsistencies (:class:`SparseEngineError`, any
        unexpected internal failure, or a non-finite matching weight)
        degrade to the dense reference solve with a
        :class:`DecoderFallbackWarning` instead of aborting.  A graph-only
        decoder has no dense path: it records the event and re-raises.
        """
        start = time.perf_counter() if self.measure_time else 0.0
        if self._engine is not None:
            try:
                pairs, weight, prediction = self._engine.solve(active)
            except SparseEngineError as exc:
                # The engine classified this itself (unsafe_pair /
                # unsolvable) before raising.
                result = self._recover(exc, active)
            except Exception as exc:
                self._engine_error()
                result = self._recover(exc, active)
            else:
                if not math.isfinite(weight):
                    self._engine_error()
                    result = self._recover(
                        SparseEngineError(
                            f"non-finite matching weight {weight!r}"
                        ),
                        active,
                    )
                else:
                    result = DecodeResult(
                        prediction=prediction, matching=pairs, weight=weight
                    )
        else:
            result = self._decode_dense(active)
        if self.measure_time:
            result.latency_ns = (time.perf_counter() - start) * 1e9
        return result

    def _recover(self, exc: Exception, active: list[int]) -> DecodeResult:
        """Degrade one failed sparse solve to the dense reference path."""
        if not self._escalation.escalate(type(exc).__name__, str(exc)):
            raise exc
        return self._decode_dense(active)

    def _decode_dense(self, active: list[int]) -> DecodeResult:
        """One dense blossom solve (the reference path)."""
        problem = MatchingProblem.from_syndrome(self.gwt, active)
        if problem.num_nodes == 0:
            pairs: list[tuple[int, int]] = []
        else:
            pairs = min_weight_perfect_matching(problem.weights)
        return DecodeResult(
            prediction=problem.prediction(pairs),
            matching=matching_to_detectors(pairs, problem.active, problem.has_virtual),
            weight=problem.total_weight(pairs),
        )

    def decode_batch(self, syndromes: np.ndarray) -> list[DecodeResult]:
        """Decode a (shots, detectors) syndrome matrix in bulk.

        On the sparse path the active indices of all rows are extracted
        with one ``np.nonzero`` and each row runs through the cluster
        engine (whose memoization is what makes bulk decoding fast).  On
        the dense path syndromes are bucketed by Hamming weight so each
        bucket's matching problems are constructed with one GWT gather
        (:meth:`MatchingProblem.from_syndrome_batch`) instead of one per
        row.  Either way results are identical to per-row :meth:`decode`,
        and shared per-batch construction time is amortized into each
        row's ``latency_ns`` so latency stats stay comparable with the
        per-row path.
        """
        syndromes = validate_syndrome_batch(syndromes, self.syndrome_length)
        if self._engine is not None:
            return self._decode_batch_sparse(syndromes)
        return self._decode_batch_dense(syndromes)

    def _decode_batch_sparse(self, syndromes: np.ndarray) -> list[DecodeResult]:
        num = syndromes.shape[0]
        start = time.perf_counter() if self.measure_time else 0.0
        try:
            solved = self._engine.solve_batch(syndromes)
        except SparseEngineError as exc:
            return self._recover_batch(exc, syndromes)
        except Exception as exc:
            self._engine_error()
            return self._recover_batch(exc, syndromes)
        # A finite total certifies every summand is finite (inf/NaN would
        # poison the sum), so the per-row scan runs only on the bad path.
        if not math.isfinite(sum(map(operator.itemgetter(1), solved))):
            bad = next(
                w for _pairs, w, _pred in solved if not math.isfinite(w)
            )
            self._engine_error()
            return self._recover_batch(
                SparseEngineError(
                    f"non-finite matching weight {bad!r} in batch"
                ),
                syndromes,
            )
        # Bucketed solving shares nearly all of its work across rows, so
        # the honest per-row latency is the amortized batch wall-clock.
        shared_ns = (
            (time.perf_counter() - start) * 1e9 / num
            if self.measure_time and num
            else 0.0
        )
        return [
            DecodeResult(prediction, pairs, weight, 0, shared_ns)
            for pairs, weight, prediction in solved
        ]

    def _recover_batch(
        self, exc: Exception, syndromes: np.ndarray
    ) -> list[DecodeResult]:
        """Degrade one failed sparse batch to the dense reference path."""
        if not self._escalation.escalate(type(exc).__name__, str(exc)):
            raise exc
        return self._decode_batch_dense(syndromes)

    def _decode_batch_dense(self, syndromes: np.ndarray) -> list[DecodeResult]:
        results: list[DecodeResult | None] = [None] * syndromes.shape[0]
        hw = syndromes.sum(axis=1)
        for w in np.unique(hw):
            start = time.perf_counter() if self.measure_time else 0.0
            rows = np.nonzero(hw == w)[0]
            active = np.nonzero(syndromes[rows])[1].reshape(len(rows), int(w))
            batch = MatchingProblem.from_syndrome_batch(self.gwt, active)
            shared_ns = (
                (time.perf_counter() - start) * 1e9 / len(rows)
                if self.measure_time
                else 0.0
            )
            for j, i in enumerate(rows):
                start = time.perf_counter() if self.measure_time else 0.0
                problem = batch.problem(j)
                if problem.num_nodes == 0:
                    pairs: list[tuple[int, int]] = []
                else:
                    pairs = min_weight_perfect_matching(problem.weights)
                result = DecodeResult(
                    prediction=problem.prediction(pairs),
                    matching=matching_to_detectors(
                        pairs, problem.active, problem.has_virtual
                    ),
                    weight=problem.total_weight(pairs),
                )
                if self.measure_time:
                    result.latency_ns = (
                        (time.perf_counter() - start) * 1e9 + shared_ns
                    )
                results[i] = result
        return results
