"""Dependency-free atomic/checksummed IO primitives.

These primitives underpin every persisted artifact in the repository --
sweep CSVs and campaign checkpoints (:mod:`repro.experiments.io`) as well
as the content-addressed pipeline artifact store
(:mod:`repro.pipeline.artifacts`).  They live at the package root, below
both consumers, so the experiment and pipeline layers can share them
without importing each other:

* every file is written via temp-file + :func:`os.replace` (readers never
  observe a partial write, even across a crash mid-save);
* JSON records embed a record kind, a schema version and a SHA-256
  content checksum, and fail loading with a descriptive
  :class:`CorruptResultError` instead of a bare parse error.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "CorruptResultError",
    "JSON_RECORD_SCHEMA_VERSION",
    "atomic_write_bytes",
    "atomic_write_text",
    "read_json_record",
    "sha256_bytes",
    "sha256_text",
    "write_json_record",
]

#: Version of the generic checked-JSON record format.
JSON_RECORD_SCHEMA_VERSION = 1


class CorruptResultError(ValueError):
    """A persisted file failed validation.

    Raised when a sweep CSV, checked-JSON record or pipeline artifact is
    truncated, garbled, fails its embedded checksum, or carries an
    unexpected schema version.  Subclasses :class:`ValueError` so callers
    that predate the checked formats keep working.
    """


def sha256_text(text: str) -> str:
    """SHA-256 hex digest of a UTF-8 encoded string."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def sha256_bytes(data: bytes) -> str:
    """SHA-256 hex digest of a byte string."""
    return hashlib.sha256(data).hexdigest()


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    A reader concurrently opening ``path`` sees either the previous
    complete contents or the new complete contents, never a prefix --
    including when the writing process dies mid-write.

    Args:
        path: Destination file path.
        data: Full file contents.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with tmp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Args:
        path: Destination file path.
        text: Full file contents.
    """
    atomic_write_bytes(path, text.encode("utf-8"))


def write_json_record(path: str | Path, payload: Any, *, kind: str) -> None:
    """Persist a JSON payload atomically with schema + checksum framing.

    The on-disk shape is ``{"kind", "schema", "checksum", "payload"}``
    where ``checksum`` is the SHA-256 of the canonical (sorted-key,
    compact) JSON encoding of ``payload``.

    Args:
        path: Destination file path.
        payload: JSON-serialisable record body.
        kind: Record type tag, validated on read (e.g. ``"chunk"``).
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    record = {
        "kind": kind,
        "schema": JSON_RECORD_SCHEMA_VERSION,
        "checksum": sha256_text(body),
        "payload": payload,
    }
    atomic_write_text(path, json.dumps(record, sort_keys=True))


def read_json_record(path: str | Path, *, kind: str) -> Any:
    """Load and validate a record written by :func:`write_json_record`.

    Args:
        path: Source file path.
        kind: Expected record type tag.

    Returns:
        The validated payload.

    Raises:
        FileNotFoundError: When ``path`` does not exist.
        CorruptResultError: On truncated/garbled JSON, a wrong record
            type, an unknown schema version, or a checksum mismatch.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
        record = json.loads(text)
    except UnicodeDecodeError as exc:
        raise CorruptResultError(
            f"{path}: record is not valid UTF-8 ({exc})"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CorruptResultError(
            f"{path}: truncated or garbled JSON record ({exc})"
        ) from exc
    if not isinstance(record, dict) or "payload" not in record:
        raise CorruptResultError(f"{path}: not a checked JSON record")
    if record.get("kind") != kind:
        raise CorruptResultError(
            f"{path}: expected a {kind!r} record, found {record.get('kind')!r}"
        )
    if record.get("schema") != JSON_RECORD_SCHEMA_VERSION:
        raise CorruptResultError(
            f"{path}: unsupported schema version {record.get('schema')!r} "
            f"(this build reads version {JSON_RECORD_SCHEMA_VERSION})"
        )
    body = json.dumps(record["payload"], sort_keys=True, separators=(",", ":"))
    if sha256_text(body) != record.get("checksum"):
        raise CorruptResultError(
            f"{path}: checksum mismatch -- the payload was altered after it "
            "was written"
        )
    return record["payload"]
