"""Anatomy of one Astrea-G greedy search (paper section 7.1, Figure 11).

Takes a high-Hamming-weight syndrome, runs Astrea-G's Fetch/Sort/Commit
pipeline with tracing enabled, and prints the per-cycle state: queue
occupancy, completed matchings, and the weight in the MWPM register.  The
trace makes the paper's two claims visible:

* the register converges to (or near) the MWPM within the first few
  passes, because low-weight pairs are committed first;
* the queues drain quickly, so the worst case stays well inside the 1 us
  (250-cycle) budget.

Run:  python examples/pipeline_anatomy.py
"""

import os

import numpy as np

from repro import DecodingSetup, make_decoder

DISTANCE = 7
P = 2e-3


def main() -> None:
    setup = DecodingSetup.build(DISTANCE, P)
    # Sample until a heavy syndrome appears.
    from repro import PauliFrameSimulator

    sim = PauliFrameSimulator(setup.experiment.circuit, seed=21)
    sample = sim.sample(int(os.environ.get("REPRO_EXAMPLE_SHOTS", "30000")))
    hw = sample.detectors.sum(axis=1)
    shot = int(hw.argmax())
    active = [int(i) for i in np.nonzero(sample.detectors[shot])[0]]
    print(f"d={DISTANCE}, p={P}: decoding a Hamming-weight-{len(active)} syndrome\n")

    decoder = make_decoder(
        "astrea-g", setup, weight_threshold=7.0, exhaustive_cutoff=6
    )
    result, trace = decoder.decode_with_trace(active)
    if not trace:
        print("syndrome was light enough for the exact Astrea datapath; "
              "raise REPRO_EXAMPLE_SHOTS to catch a heavier one")
        return
    optimum = make_decoder("mwpm", setup, quantized=True).decode_active(active)

    print(f"{'pass':>4} {'queues':>8} {'completions':>11} {'register weight':>15}")
    for snap in trace:
        register = "--" if snap.best_weight == float("inf") else f"{snap.best_weight:.2f}"
        print(
            f"{snap.iteration:>4} {str(list(snap.queue_sizes)):>8} "
            f"{snap.completions:>11} {register:>15}"
        )

    print(f"\npipeline result : weight {result.weight:.2f} "
          f"({result.cycles} cycles = {result.latency_ns:.0f} ns)")
    print(f"true MWPM       : weight {optimum.weight:.2f}")
    gap = result.weight - optimum.weight
    print(
        "greedy search found the exact MWPM"
        if gap < 1e-9
        else f"greedy search is {gap:.2f} above the MWPM (a filtered branch)"
    )
    converged_at = next(
        (s.iteration for s in trace if abs(s.best_weight - result.weight) < 1e-9),
        None,
    )
    print(f"register reached its final value at pass {converged_at} "
          f"of {trace[-1].iteration}")


if __name__ == "__main__":
    main()
