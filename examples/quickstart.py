"""Quickstart: decode one surface-code syndrome end to end.

Builds the full decoding stack for a distance-5 rotated surface code under
the paper's circuit-level noise model, samples a noisy memory experiment,
decodes one syndrome with Astrea, and then estimates the logical error
rate over a few thousand Monte-Carlo trials.

Run:  python examples/quickstart.py
"""

import os

import numpy as np

from repro import (
    DecodingSetup,
    PauliFrameSimulator,
    make_decoder,
    run_memory_experiment,
)


def main() -> None:
    # 1. Build the stack: memory circuit, detector error model, decoding
    #    graph and (8-bit quantized) Global Weight Table.
    setup = DecodingSetup.build(distance=5, physical_error_rate=2e-3)
    print(f"code distance           : {setup.distance}")
    print(f"physical error rate     : {setup.physical_error_rate}")
    print(f"syndrome vector length  : {setup.gwt.length}")
    print(f"fault mechanisms in DEM : {len(setup.dem)}")
    print(f"GWT on-chip footprint   : {setup.gwt.storage_bytes()} bytes")

    # 2. Sample one noisy shot and decode its syndrome with Astrea.
    sampler = PauliFrameSimulator(setup.experiment.circuit, seed=7)
    sample = sampler.sample(200)
    interesting = int(np.argmax(sample.detectors.sum(axis=1)))
    syndrome = sample.detectors[interesting]
    actual_flip = bool(sample.observables[interesting, 0])

    decoder = make_decoder("astrea", setup)
    result = decoder.decode(syndrome)
    print(f"\nsyndrome Hamming weight : {int(syndrome.sum())}")
    print(f"matched pairs           : {result.matching}")
    print(f"matching weight         : {result.weight:.2f}")
    print(f"predicted logical flip  : {result.prediction}")
    print(f"actual logical flip     : {actual_flip}")
    print(f"decode latency (model)  : {result.latency_ns:.0f} ns "
          f"({result.cycles} cycles at 250 MHz)")

    # 3. Estimate the logical error rate over many trials.
    run = run_memory_experiment(
        setup.experiment, decoder,
        shots=int(os.environ.get("REPRO_EXAMPLE_SHOTS", "20000")), seed=1,
    )
    low, high = run.confidence_interval
    print(f"\nlogical error rate      : {run.logical_error_rate:.2e} "
          f"(95% CI [{low:.2e}, {high:.2e}], {run.shots} trials)")
    print(f"mean decode latency     : {run.mean_latency_ns:.2f} ns")
    print(f"worst-case latency      : {run.max_latency_ns:.0f} ns "
          f"(real-time budget: 1000 ns)")


if __name__ == "__main__":
    main()
