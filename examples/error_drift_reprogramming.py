"""Reprogramming the Global Weight Table under noise drift (section 8.2).

The paper argues that Astrea, unlike prior real-time decoders, natively
handles non-uniform error rates and drift: the GWT is just memory, so its
weights can be re-derived from the current device calibration and
re-uploaded.  This example demonstrates why that matters.

A device drifts into a *measurement-heavy* noise profile (readout errors
8x the gate errors).  Decoding with the stale GWT -- built for the uniform
profile -- misprices time-like edges relative to space-like ones and loses
accuracy; rebuilding the GWT from the drifted noise model recovers it.

Run:  python examples/error_drift_reprogramming.py
"""

import os

from repro import (
    DecodingSetup,
    NoiseParams,
    build_detector_error_model,
    build_memory_circuit,
    make_decoder,
    run_memory_experiment,
)
from repro.graphs.decoding_graph import DecodingGraph
from repro.graphs.weights import GlobalWeightTable

DISTANCE = 5
SHOTS = int(os.environ.get("REPRO_EXAMPLE_SHOTS", "60000"))

#: What the decoder was calibrated for: the uniform model at p = 1e-3.
CALIBRATED = NoiseParams.uniform(1e-3)

#: What the device actually does after drift: readout noise dominates.
DRIFTED = NoiseParams(
    data_depolarization=1e-3,
    gate2_depolarization=1e-3,
    gate1_depolarization=1e-3,
    measurement_flip=8e-3,
    reset_flip=1e-3,
)


def gwt_for(noise: NoiseParams) -> GlobalWeightTable:
    experiment = build_memory_circuit(DISTANCE, noise)
    dem = build_detector_error_model(experiment.circuit)
    return GlobalWeightTable.from_graph(DecodingGraph.from_dem(dem))


def main() -> None:
    # The device runs the drifted noise; both decoders see its syndromes.
    drifted_experiment = build_memory_circuit(DISTANCE, DRIFTED)

    # The GWT is just memory: the registry's ``gwt=`` override swaps in
    # whichever table the current calibration produced.
    setup = DecodingSetup.build(DISTANCE, 1e-3)
    stale = make_decoder("mwpm", setup, gwt=gwt_for(CALIBRATED))
    reprogrammed = make_decoder("mwpm", setup, gwt=gwt_for(DRIFTED))

    r_stale = run_memory_experiment(drifted_experiment, stale, SHOTS, seed=17)
    r_fresh = run_memory_experiment(drifted_experiment, reprogrammed, SHOTS, seed=17)

    print(f"d={DISTANCE}, drifted noise (measurement flips at 8e-3), {SHOTS} trials\n")
    print(f"stale GWT (uniform calibration) : LER {r_stale.logical_error_rate:.2e}")
    print(f"reprogrammed GWT (drift-aware)  : LER {r_fresh.logical_error_rate:.2e}")
    if r_fresh.errors < r_stale.errors:
        gain = r_stale.errors / max(r_fresh.errors, 1)
        print(f"\nreprogramming the weight table cut logical errors by {gain:.2f}x")
    else:
        print("\n(no measurable gain at this trial count; raise SHOTS)")


if __name__ == "__main__":
    main()
