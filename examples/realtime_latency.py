"""Latency anatomy of real-time decoding (paper Figures 3 and 9).

Profiles the three decoding regimes on a shared distance-7 workload:

* software MWPM -- exact but orders of magnitude over the 1 us budget;
* Astrea -- exact for Hamming weight <= 10, 0-456 ns by cycle model;
* Astrea-G -- greedy above weight 10, bounded by the 1 us budget.

Also breaks Astrea's latency down by Hamming weight, reproducing the
structure behind Figure 9 (trivial syndromes dominate, hence the ~1 ns
mean).

Run:  python examples/realtime_latency.py
"""

import os

from collections import defaultdict

import numpy as np

from repro import DecodingSetup, PauliFrameSimulator, make_decoder

DISTANCE = 7
P = 1e-3
SHOTS = int(os.environ.get("REPRO_EXAMPLE_SHOTS", "2000"))


def main() -> None:
    setup = DecodingSetup.build(DISTANCE, P)
    sampler = PauliFrameSimulator(setup.experiment.circuit, seed=3)
    sample = sampler.sample(SHOTS)
    syndromes = [det for det in sample.detectors]

    mwpm = make_decoder("mwpm", setup, measure_time=True)
    astrea = make_decoder("astrea", setup)
    astrea_g = make_decoder("astrea-g", setup, weight_threshold=7.0)

    print(f"d={DISTANCE}, p={P}, {SHOTS} syndromes\n")
    for name, decoder in (
        ("software MWPM", mwpm),
        ("Astrea", astrea),
        ("Astrea-G", astrea_g),
    ):
        latencies = []
        declined = 0
        for det in syndromes:
            result = decoder.decode(det)
            if not result.decoded:
                declined += 1
                continue
            latencies.append(result.latency_ns)
        arr = np.array(latencies)
        over = float((arr > 1000.0).mean())
        print(
            f"{name:14s} mean {arr.mean():>10.1f} ns   "
            f"max {arr.max():>11.1f} ns   >1us {over:>6.1%}   "
            f"declined {declined}"
        )

    # Astrea's latency by Hamming weight (the Figure 9 structure).
    by_hw: dict[int, float] = defaultdict(float)
    counts: dict[int, int] = defaultdict(int)
    for det in syndromes:
        hw = int(det.sum())
        if hw > 10:
            continue
        result = astrea.decode(det)
        by_hw[hw] += result.latency_ns
        counts[hw] += 1
    print("\nAstrea latency by Hamming weight:")
    print(f"{'HW':>3} {'count':>6} {'latency':>8}")
    for hw in sorted(by_hw):
        print(f"{hw:>3} {counts[hw]:>6} {by_hw[hw] / counts[hw]:>6.0f} ns")


if __name__ == "__main__":
    main()
