"""Compare every decoder in the repository on the same workload.

Reproduces the spirit of paper Table 4: on a shared Monte-Carlo sample,
MWPM, Astrea and LILLIPUT agree exactly, Clique+MWPM trails slightly, and
the Union-Find (AFS) decoder is clearly less accurate -- while only the
hardware designs (Astrea, Astrea-G, LILLIPUT) meet the 1 us deadline.

Run:  python examples/decoder_comparison.py
"""

import os

from repro import DecodingSetup, make_decoder, run_memory_experiment

DISTANCE = 3
P = 2e-3
SHOTS = int(os.environ.get("REPRO_EXAMPLE_SHOTS", "40000"))


def main() -> None:
    setup = DecodingSetup.build(DISTANCE, P)
    decoders = {
        "MWPM (software)": make_decoder("mwpm", setup, measure_time=True),
        "Astrea": make_decoder("astrea", setup),
        "Astrea-G": make_decoder("astrea-g", setup, weight_threshold=7.0),
        "LILLIPUT": make_decoder("lilliput", setup),
        "Clique+MWPM": make_decoder("clique", setup),
        "Union-Find (AFS)": make_decoder("union-find", setup),
    }
    print(f"d={DISTANCE}, p={P}, shots={SHOTS}\n")
    print(f"{'decoder':18s} {'LER':>10s} {'mean lat':>10s} {'max lat':>10s} {'real-time':>9s}")
    for name, decoder in decoders.items():
        run = run_memory_experiment(setup.experiment, decoder, SHOTS, seed=11)
        realtime = "yes" if run.max_latency_ns <= 1000.0 else "NO"
        print(
            f"{name:18s} {run.logical_error_rate:>10.2e} "
            f"{run.mean_latency_ns:>8.1f}ns {run.max_latency_ns:>8.0f}ns "
            f"{realtime:>9s}"
        )
    print(
        "\nNote: software MWPM latency is measured Python wall-clock; the "
        "hardware decoders report modeled FPGA cycles (250 MHz)."
    )


if __name__ == "__main__":
    main()
