"""Ablation: Astrea-G's weight threshold and search parameters.

Sweeps the three design knobs of Astrea-G's greedy pipeline on a shared
distance-7 workload and reports the fraction of syndromes decoded to the
true MWPM optimum (a trial-count-free proxy for the relative logical error
rate of paper Figure 13):

* the weight threshold ``W_th`` (section 7.3);
* the fetch width ``F`` (default 2);
* the priority-queue capacity ``E`` (default 8).

The pipeline is forced onto every syndrome above Hamming weight 6
(``exhaustive_cutoff=6``) so the greedy search itself is what's measured.

Run:  python examples/weight_threshold_ablation.py
"""

import os

import numpy as np

from repro import DecodingSetup, PauliFrameSimulator, make_decoder

DISTANCE = 7
P = 2e-3
SHOTS = int(os.environ.get("REPRO_EXAMPLE_SHOTS", "4000"))


def optimal_fraction(setup, syndromes, optima, **kwargs) -> float:
    decoder = make_decoder("astrea-g", setup, exhaustive_cutoff=6, **kwargs)
    hits = 0
    for active, best in zip(syndromes, optima):
        result = decoder.decode_active(active)
        hits += int(result.weight <= best + 1e-9)
    return hits / len(syndromes)


def main() -> None:
    setup = DecodingSetup.build(DISTANCE, P)
    sampler = PauliFrameSimulator(setup.experiment.circuit, seed=5)
    sample = sampler.sample(SHOTS)
    mwpm = make_decoder("mwpm", setup, quantized=True)
    syndromes = []
    optima = []
    for det in sample.detectors:
        active = [int(i) for i in np.nonzero(det)[0]]
        if len(active) <= 6:
            continue  # exact even in the ablation configuration
        syndromes.append(active)
        optima.append(mwpm.decode_active(active).weight)
    print(
        f"d={DISTANCE}, p={P}: {len(syndromes)} syndromes above the "
        "HW6Decoder cutoff\n"
    )

    print("W_th sweep (F=2, E=8):")
    for wth in (3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0):
        frac = optimal_fraction(setup, syndromes, optima, weight_threshold=wth)
        print(f"  W_th={wth:5.1f}  optimal on {frac:6.1%}")

    print("\nfetch width sweep (W_th=7, E=8):")
    for fetch in (1, 2, 3, 4):
        frac = optimal_fraction(
            setup, syndromes, optima, weight_threshold=7.0, fetch_width=fetch
        )
        print(f"  F={fetch}      optimal on {frac:6.1%}")

    print("\nqueue capacity sweep (W_th=7, F=2):")
    for capacity in (1, 2, 4, 8, 16):
        frac = optimal_fraction(
            setup, syndromes, optima, weight_threshold=7.0, queue_capacity=capacity
        )
        print(f"  E={capacity:<3}    optimal on {frac:6.1%}")

    print(
        "\nPaper section 7.1: 'a fetch width of F = 2 and priority queue "
        "sizes of E = 8 are sufficient' -- larger values buy little."
    )


if __name__ == "__main__":
    main()
