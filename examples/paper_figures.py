"""Text renderings of the paper's key figures, at laptop scale.

Prints ASCII versions of:

* the distance-5 code lattice (paper Figure 2a);
* one sampled syndrome layer;
* the Hamming-weight distribution, model vs experiment (Figure 6);
* the GWT pair-weight regions Astrea-G filters on (Figure 10a);
* the decoder LER comparison (Figure 4 / Table 4).

Run:  python examples/paper_figures.py
"""

import os

import numpy as np

from repro import (
    DecodingSetup,
    PauliFrameSimulator,
    hamming_weight_census,
    make_decoder,
    render_lattice,
    render_series,
    render_syndrome_layer,
    run_memory_experiment,
)
from repro.analysis.hamming_model import hamming_weight_upper_bound


def show_lattice(setup) -> None:
    print("== the distance-5 rotated surface code (Figure 2a) ==")
    print("   o data   x/z plaquettes   Z/X/* logical supports\n")
    print(render_lattice(setup.experiment.code))


def show_syndrome(setup) -> None:
    sim = PauliFrameSimulator(setup.experiment.circuit, seed=11)
    sample = sim.sample(64)
    shot = int(np.argmax(sample.detectors.sum(axis=1)))
    coords = setup.experiment.detector_coords
    layers = [t for _x, _y, t in coords]
    fired_layers = [layers[k] for k in np.nonzero(sample.detectors[shot])[0]]
    layer = max(set(fired_layers), key=fired_layers.count) if fired_layers else 0
    fired = [
        (x, y)
        for k, (x, y, t) in enumerate(coords)
        if t == layer and sample.detectors[shot, k]
    ]
    print("\n== one sampled syndrome layer (! = fired check) ==\n")
    print(render_syndrome_layer(setup.experiment.code, fired))


def show_hamming(setup) -> None:
    print("\n== Hamming-weight distribution (Figure 6) ==")
    census = hamming_weight_census(
        setup.experiment,
        int(os.environ.get("REPRO_EXAMPLE_SHOTS", "50000")),
        seed=12,
    )
    rows = []
    for h in range(0, 11, 2):
        observed = census.probability(h) + census.probability(h + 1)
        rows.append((f"HW {h}-{h+1}", observed))
    print("\nobserved:")
    print(render_series(rows))
    model_rows = [
        (
            f"HW {h}-{h+1}",
            hamming_weight_upper_bound(setup.distance, setup.physical_error_rate, h),
        )
        for h in range(0, 11, 2)
    ]
    print("\nEq. 1 upper bound:")
    print(render_series(model_rows))


def show_weight_regions(setup) -> None:
    print("\n== GWT pair-weight regions (Figure 10a) ==")
    weights = setup.gwt.weights[np.triu_indices(setup.gwt.length, k=1)]
    rows = [
        ("w <= 7", float((weights <= 7).mean())),
        ("7 < w <= 9", float(((weights > 7) & (weights <= 9)).mean())),
        ("w > 9", float((weights > 9).mean())),
    ]
    print(render_series(rows, log=False))


def show_decoder_gap(setup) -> None:
    print("\n== decoder accuracy gap (Figure 4) ==")
    shots = int(os.environ.get("REPRO_EXAMPLE_SHOTS", "20000"))
    mwpm = run_memory_experiment(
        setup.experiment, make_decoder("mwpm", setup), shots, seed=13,
    )
    uf = run_memory_experiment(
        setup.experiment, make_decoder("union-find", setup), shots, seed=13
    )
    print(
        render_series(
            [
                ("MWPM", mwpm.logical_error_rate),
                ("Union-Find", uf.logical_error_rate),
            ]
        )
    )


def main() -> None:
    setup = DecodingSetup.build(5, 2e-3)
    show_lattice(setup)
    show_syndrome(setup)
    show_hamming(setup)
    show_weight_regions(setup)
    show_decoder_gap(setup)


if __name__ == "__main__":
    main()
