"""Extension bench: graph-local sparse-blossom engine equivalence smoke.

Two independent MWPM stacks are built at d = 7: the full-precision
table stack (``dense_weights=True``, ideal all-pairs weight table, the
accuracy-experiment configuration) and the graph-only stack
(``dense_weights=False``, adjacency-only decoding graph, every syndrome
solved by the sparse-blossom engine's region growth on the graph).  Both
derive from the same detector error model, so exact MWPM must produce
identical matching weights (to float tolerance -- the table holds the
same Dijkstra distances the engine discovers during growth) and
identical logical predictions on every sampled shot.

This is the CI smoke for the sparse-blossom core: it proves the
table-free path is not an approximation, then records its throughput.
The companion d = 15 construction smoke lives in
``bench_table9_large_distance.py::test_table9_d15_graph_only`` (no
all-pairs table is ever materialised there).
"""

import json
import time

import numpy as np

from repro.experiments.setup import DecodingSetup
from repro.sim.pauli_frame import PauliFrameSimulator

from _util import RESULTS_DIR, build_decoder, emit, seed, trials

P = 1e-3
DISTANCE = 7


def test_ext_sparse_blossom_equivalence(benchmark):
    table_setup = DecodingSetup.build(DISTANCE, P)
    graph_setup = DecodingSetup.build(DISTANCE, P, dense_weights=False)
    table = build_decoder("mwpm", table_setup)
    graph_only = build_decoder("mwpm", graph_setup)

    shots = trials(4_000)
    sim = PauliFrameSimulator(
        table_setup.experiment.circuit, seed=seed(90 + DISTANCE)
    )
    sampled = sim.sample(shots)
    detectors = sampled.detectors

    record = {
        "bench": "ext_sparse_blossom",
        "distance": DISTANCE,
        "p": P,
        "shots": shots,
    }

    def run():
        expected = table.decode_batch(detectors)
        start = time.perf_counter()
        got = graph_only.decode_batch(detectors)
        elapsed = time.perf_counter() - start
        record["throughput_shots_per_sec"] = {
            "mwpm_graph_only": shots / elapsed if elapsed > 0 else float("inf")
        }
        weight_gap = 0.0
        for e, g in zip(expected, got):
            assert e.prediction == g.prediction
            weight_gap = max(weight_gap, abs(e.weight - g.weight))
        assert weight_gap <= 1e-6
        record["max_weight_gap"] = weight_gap
        return got

    got = benchmark.pedantic(run, rounds=1, iterations=1)
    actual = sampled.observables[:, 0].astype(bool)
    predicted = np.array([r.prediction for r in got], dtype=bool)
    record["logical_errors"] = int(np.count_nonzero(actual != predicted))
    stats = graph_only.sparse_stats
    record["engine_stats"] = stats.as_dict()
    assert stats.total_fallbacks == 0

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / f"ext_sparse_blossom_d{DISTANCE}.json"
    json_path.write_text(json.dumps(record, indent=2) + "\n")
    throughput = record["throughput_shots_per_sec"]["mwpm_graph_only"]
    emit(
        f"ext_sparse_blossom_d{DISTANCE}",
        [
            f"d={DISTANCE}, p={P}, shots={shots}",
            f"graph-only MWPM    : {throughput:10.0f} shots/s",
            f"max weight gap     : {record['max_weight_gap']:.2e}"
            " (vs full-precision table stack)",
            "predictions        : identical on every shot",
            f"logical errors     : {record['logical_errors']}/{shots}",
            f"blossom clusters   : {stats.blossom_clusters}"
            f" (of {stats.clusters} clusters,"
            f" {stats.nodes_settled} nodes settled)",
        ],
    )
