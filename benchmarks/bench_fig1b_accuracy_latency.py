"""Paper Figure 1(b): the accuracy-vs-latency landscape of decoders.

Figure 1(b) frames the paper's goal: prior designs either decode in real
time with poor accuracy (Clique, AFS, NISQ+) or accurately but too slowly
(software MWPM); Astrea/Astrea-G are the first to sit in the
accurate-and-real-time corner.  This bench measures both axes for every
decoder in the repository on one shared d = 5 workload and verifies the
quadrant placement.
"""

from repro.decoders.lilliput import lut_size_bytes
from repro.experiments.memory import run_memory_experiment
from repro.experiments.setup import DecodingSetup

from _util import build_decoder, emit, fmt, seed, trials

DISTANCE = 5
P = 2e-3
BUDGET_NS = 1000.0


def test_fig1b_accuracy_latency_landscape(benchmark):
    setup = DecodingSetup.build(DISTANCE, P)
    shots = trials(30_000)
    decoders = {
        "MWPM (software)": build_decoder("mwpm", setup, measure_time=True),
        "Astrea": build_decoder("astrea", setup),
        "Astrea-G": build_decoder("astrea-g", setup, weight_threshold=7.0),
        "Clique+MWPM": build_decoder("clique", setup),
        "AFS (UF)": build_decoder("union-find", setup),
    }
    results = {}

    def run():
        for name, decoder in decoders.items():
            results[name] = run_memory_experiment(
                setup.experiment, decoder, shots, seed=seed(1)
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"d={DISTANCE}, p={P}, shots={shots}",
        f"{'decoder':>16} {'LER':>10} {'worst lat':>12} {'real-time':>9}",
    ]
    for name, r in results.items():
        realtime = "yes" if r.max_latency_ns <= BUDGET_NS and not r.timed_out else "NO"
        lines.append(
            f"{name:>16} {fmt(r.logical_error_rate):>10} "
            f"{r.max_latency_ns:>10.0f}ns {realtime:>9}"
        )
    lines.append(
        f"(LILLIPUT at this d needs a {fmt(lut_size_bytes(DISTANCE))}-byte LUT: "
        "absent from the real-time corner by memory, not latency)"
    )
    emit("fig1b_accuracy_latency", lines)

    # Quadrant placement (the figure's whole point):
    mwpm = results["MWPM (software)"]
    astrea = results["Astrea"]
    astrea_g = results["Astrea-G"]
    uf = results["AFS (UF)"]
    # Software MWPM: accurate but not real-time.
    assert mwpm.max_latency_ns > BUDGET_NS
    # Astrea/Astrea-G: real-time AND as accurate as MWPM (within declines).
    for hw in (astrea, astrea_g):
        assert hw.max_latency_ns <= BUDGET_NS
        assert hw.errors <= 1.5 * mwpm.errors + max(5, hw.declined)
    # UF: real-time but clearly less accurate.
    assert uf.errors > 2 * mwpm.errors
