"""Extension bench: array-backend seam throughput and bit-identity.

Activates every *importable* array backend (always numpy and the
portable ``numpy_generic`` shim; CuPy / torch / array-api-strict when
their libraries exist) and, per backend:

* asserts the golden contract -- corrections and logical-error counts
  of full Union-Find decode runs at d = 3/5/7 are bit-identical to the
  plain numpy path, and
* measures packed frame-sampling and ``decode_batch`` throughput, so
  the trajectory ledger tracks what the seam costs (the generic path
  trades the uint64 popcount kernels for portable two-level reductions)
  and what an accelerator buys when present.
"""

import json
import time

import numpy as np

from repro.backend import available_backends, from_device, use_backend
from repro.decoders.union_find import UnionFindDecoder
from repro.experiments.setup import DecodingSetup
from repro.sim.pauli_frame import PauliFrameSimulator

from _util import RESULTS_DIR, emit, seed, trials

P = 2e-3
#: Golden bit-identity distances; the largest also provides the timing
#: workload.
DISTANCES = (3, 5, 7)


def test_ext_backend_matrix(benchmark):
    backends = [
        name
        for name, importable in available_backends().items()
        if importable and name != "numpy"
    ]
    shots = trials(4_000)
    stacks = {}
    for distance in DISTANCES:
        setup = DecodingSetup.build(distance, P)
        sim = PauliFrameSimulator(
            setup.experiment.circuit, seed=seed(70 + distance)
        )
        sample = sim.sample(shots)
        decoder = UnionFindDecoder(setup.graph)
        golden = decoder.decode_batch(sample.detectors)
        stacks[distance] = (setup, sample, golden)

    record = {
        "bench": "ext_backend",
        "p": P,
        "shots": shots,
        "distances": list(DISTANCES),
        "backends_verified": ["numpy"],
    }
    throughput = {}
    lines = [f"p={P}, shots={shots}, distances={DISTANCES}"]

    def run():
        d_timing = DISTANCES[-1]
        setup, sample, _golden = stacks[d_timing]
        # numpy reference timings.
        sampling_t = _best_of(
            3,
            lambda: PauliFrameSimulator(
                setup.experiment.circuit, seed=seed(70 + d_timing)
            ).sample(shots),
        )
        decode_t = _best_of(
            3,
            lambda: UnionFindDecoder(setup.graph).decode_batch(
                sample.detectors
            ),
        )
        throughput["sampling_numpy"] = shots / sampling_t
        throughput["uf_batch_numpy"] = shots / decode_t
        for name in backends:
            with use_backend(name):
                for distance in DISTANCES:
                    b_setup, b_sample, golden = stacks[distance]
                    got = UnionFindDecoder(b_setup.graph).decode_batch(
                        b_sample.detectors
                    )
                    errors = 0
                    golden_errors = 0
                    actual = b_sample.observables[:, 0].astype(bool)
                    for i, (g, r) in enumerate(zip(golden, got)):
                        assert r.prediction == g.prediction
                        assert r.matching == g.matching
                        errors += r.prediction != actual[i]
                        golden_errors += g.prediction != actual[i]
                    assert errors == golden_errors
                tag = name.replace("-", "_")
                sampling_t = _best_of(
                    3,
                    lambda: PauliFrameSimulator(
                        setup.experiment.circuit, seed=seed(70 + d_timing)
                    ).sample(shots),
                )
                decode_t = _best_of(
                    3,
                    lambda: UnionFindDecoder(setup.graph).decode_batch(
                        sample.detectors
                    ),
                )
                throughput[f"sampling_{tag}"] = shots / sampling_t
                throughput[f"uf_batch_{tag}"] = shots / decode_t
            record["backends_verified"].append(name)
        record["throughput_shots_per_sec"] = throughput
        return throughput

    benchmark.pedantic(run, rounds=1, iterations=1)
    for name, value in sorted(throughput.items()):
        lines.append(f"{name:>28} : {value:,.0f} shots/s")
    lines.append(
        "bit-identical backends   : " + ", ".join(record["backends_verified"])
    )
    emit("ext_backend", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ext_backend.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    # The portable shim must always be importable and verified.
    assert "numpy_generic" in record["backends_verified"]


def _best_of(n, fn):
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        # Force any device arrays home so timing includes materialisation.
        if hasattr(result, "detectors"):
            np.asarray(from_device(result.detectors))
        best = min(best, time.perf_counter() - start)
    return best
