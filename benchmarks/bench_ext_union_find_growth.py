"""Extension bench: weighted vs unweighted Union-Find growth.

AFS builds on *weighted* Union-Find: clusters grow across likely (cheap)
edges before unlikely ones.  This ablation compares it against the
original unweighted formulation on the same circuit-level decoding graph,
where edge probabilities span an order of magnitude -- quantifying how
much of AFS's remaining accuracy depends on weight awareness.

``test_ext_union_find_batch_speedup`` additionally gates the vectorized
``decode_batch`` growth path: at d = 7 / 20k shots the default weighted
growth must beat the scalar per-shot loop by >= 5x (measured ~7-8x)
while producing bit-identical results.  Both growth flavours are
measured and recorded; unweighted growth grows clusters blindly across
every incident edge, so its grown-edge set (and the batch peel/union
work that scales with it) is ~2x the weighted one's -- it gates at a
conservative 3.5x floor (measured ~4.5-5x) and is ledgered separately.
"""

import json
import time

import numpy as np

from repro.experiments.memory import run_memory_experiment
from repro.experiments.setup import DecodingSetup

from _util import RESULTS_DIR, build_decoder, emit, fmt, seed, trials

DISTANCE = 5
P = 2e-3


def test_ext_union_find_growth_ablation(benchmark):
    setup = DecodingSetup.build(DISTANCE, P)
    shots = trials(40_000)
    results = {}

    def run():
        decoders = {
            "mwpm": build_decoder("mwpm", setup),
            "uf-weighted": build_decoder(
                "union-find", setup, growth_resolution=2.0
            ),
            "uf-fine": build_decoder("union-find", setup, growth_resolution=8.0),
            "uf-unweighted": build_decoder(
                "union-find", setup, growth_resolution=0.0
            ),
        }
        for name, decoder in decoders.items():
            results[name] = run_memory_experiment(
                setup.experiment, decoder, shots, seed=seed(55)
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"d={DISTANCE}, p={P}, shots={shots}"]
    for name, r in results.items():
        lines.append(
            f"{name:>14} LER={fmt(r.logical_error_rate):>9}  errors={r.errors}"
        )
    emit("ext_union_find_growth", lines)

    # Weighted growth must not be worse than unweighted, and neither
    # reaches MWPM.
    assert results["uf-weighted"].errors <= results["uf-unweighted"].errors + 5
    assert results["uf-weighted"].errors > results["mwpm"].errors


BATCH_DISTANCE = 7
BATCH_P = 2e-3
BATCH_SHOTS = 20_000


def test_ext_union_find_batch_speedup(benchmark):
    """Vectorized frontier growth vs the scalar per-shot decode loop.

    Timing protocol: the scalar loop and ``decode_batch`` are both taken
    as best-of-3 on the same syndrome matrix (shared runners show +-20%
    wall noise; the min is the least-polluted estimate for either side).
    Bit-identity of every per-shot result is asserted before any timing
    claim is made.  The >=5x (weighted default) / >=3.5x (unweighted)
    acceptance gates apply to the full-scale configuration only (d = 7,
    20k shots) so ``REPRO_TRIALS``-scaled smoke runs stay
    assertion-free.
    """
    from repro.sim.pauli_frame import PauliFrameSimulator

    setup = DecodingSetup.build(BATCH_DISTANCE, BATCH_P)
    shots = trials(BATCH_SHOTS)
    sim = PauliFrameSimulator(setup.experiment.circuit, seed=seed(61))
    detectors = sim.sample(shots).detectors
    record = {
        "bench": "ext_union_find_batch",
        "distance": BATCH_DISTANCE,
        "p": BATCH_P,
        "shots": shots,
    }
    speedups = {}

    def run():
        for key, resolution in (("unweighted", 0.0), ("weighted", 2.0)):
            decoder = build_decoder(
                "union-find", setup, growth_resolution=resolution
            )
            scalar, scalar_time = _timed(
                lambda: [decoder.decode(row) for row in detectors]
            )
            batch, batch_time = _timed(lambda: decoder.decode_batch(detectors))
            for _ in range(2):
                scalar_time = min(
                    scalar_time,
                    _timed(
                        lambda: [decoder.decode(row) for row in detectors]
                    )[1],
                )
                batch_time = min(
                    batch_time, _timed(lambda: decoder.decode_batch(detectors))[1]
                )
            for s, b in zip(scalar, batch):
                assert s.prediction == b.prediction
                assert s.matching == b.matching
                assert s.weight == b.weight
                assert s.cycles == b.cycles
            speedups[key] = scalar_time / batch_time
            record[f"throughput_uf_{key}"] = {
                "scalar": shots / scalar_time,
                "batch": shots / batch_time,
            }
        record["throughput_shots_per_sec"] = {
            "uf_batch_unweighted": record["throughput_uf_unweighted"]["batch"],
            "uf_batch_weighted": record["throughput_uf_weighted"]["batch"],
            "uf_scalar_unweighted": record["throughput_uf_unweighted"][
                "scalar"
            ],
        }
        record["uf_batch_speedup"] = speedups["unweighted"]
        record["uf_batch_speedup_weighted"] = speedups["weighted"]
        return speedups

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_union_find_batch",
        [
            f"d={BATCH_DISTANCE}, p={BATCH_P}, shots={shots}",
            f"unweighted batch speedup: {speedups['unweighted']:.1f}x",
            f"weighted   batch speedup: {speedups['weighted']:.1f}x",
        ],
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ext_union_find_batch.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    # Acceptance gates at full scale only.
    if BATCH_DISTANCE == 7 and shots >= 20_000:
        assert speedups["weighted"] >= 5.0
        assert speedups["unweighted"] >= 3.5


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start
