"""Extension bench: weighted vs unweighted Union-Find growth.

AFS builds on *weighted* Union-Find: clusters grow across likely (cheap)
edges before unlikely ones.  This ablation compares it against the
original unweighted formulation on the same circuit-level decoding graph,
where edge probabilities span an order of magnitude -- quantifying how
much of AFS's remaining accuracy depends on weight awareness.
"""

from repro.experiments.memory import run_memory_experiment
from repro.experiments.setup import DecodingSetup

from _util import build_decoder, emit, fmt, seed, trials

DISTANCE = 5
P = 2e-3


def test_ext_union_find_growth_ablation(benchmark):
    setup = DecodingSetup.build(DISTANCE, P)
    shots = trials(40_000)
    results = {}

    def run():
        decoders = {
            "mwpm": build_decoder("mwpm", setup),
            "uf-weighted": build_decoder(
                "union-find", setup, growth_resolution=2.0
            ),
            "uf-fine": build_decoder("union-find", setup, growth_resolution=8.0),
            "uf-unweighted": build_decoder(
                "union-find", setup, growth_resolution=0.0
            ),
        }
        for name, decoder in decoders.items():
            results[name] = run_memory_experiment(
                setup.experiment, decoder, shots, seed=seed(55)
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"d={DISTANCE}, p={P}, shots={shots}"]
    for name, r in results.items():
        lines.append(
            f"{name:>14} LER={fmt(r.logical_error_rate):>9}  errors={r.errors}"
        )
    emit("ext_union_find_growth", lines)

    # Weighted growth must not be worse than unweighted, and neither
    # reaches MWPM.
    assert results["uf-weighted"].errors <= results["uf-unweighted"].errors + 5
    assert results["uf-weighted"].errors > results["mwpm"].errors
