"""Paper Table 2: syndrome-vector probability by Hamming weight (p = 1e-4).

Samples the Hamming-weight census for d = 3, 5, 7 at p = 1e-4 and prints
the same buckets as the paper.  The deep-tail buckets (probability below
~1/trials) print as 0 at default scale; raise REPRO_TRIALS to resolve them.
"""

import pytest

from repro.experiments.hamming import hamming_weight_census
from repro.experiments.setup import DecodingSetup

from _util import emit, fmt, seed, trials

#: Paper Table 2 rows (probability by bucket, then logical error rate).
PAPER = {
    3: ["0.99", "1.1e-2", "4.2e-5", "6.5e-8", "0", "0"],
    5: ["0.95", "0.05", "1.26e-5", "1.9e-5", "1.9e-7", "0"],
    7: ["0.86", "0.13", "9.5e-3", "4.4e-4", "1.6e-5", "4e-6"],
}


@pytest.mark.parametrize("distance", [3, 5, 7])
def test_table2_hamming_census(distance, benchmark):
    setup = DecodingSetup.build(distance, 1e-4)
    shots = trials(300_000 if distance == 3 else 150_000)

    def run():
        return hamming_weight_census(setup.experiment, shots, seed=seed(distance))

    census = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"d={distance}, p=1e-4, shots={shots}", "bucket  measured   paper"]
    for (label, prob), paper in zip(census.table_rows(), PAPER[distance]):
        lines.append(f"{label:>6}  {fmt(prob):>9}  {paper:>8}")
    emit(f"table2_hamming_census_d{distance}", lines)
    # Shape assertions: weight-0 dominates and the tail decays.
    assert census.probability(0) > 0.8
    assert census.bucket_probability(1, 2) > census.bucket_probability(3, 4)
