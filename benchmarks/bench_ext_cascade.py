"""Extension bench: SLO-aware decoder cascade vs always-terminal MWPM.

The :class:`repro.decoders.cascade.CascadeDecoder` routes each syndrome
through an ordered tier ladder by cheap features (Hamming weight,
structural cluster locality): a vectorized closed-form front tier
absorbs the low-weight bulk of the census, the residual escalates to
the sparse cluster engine, and the engine's own anomaly path escalates
to the terminal rung of the ladder -- the dense exact-MWPM reference
tier (``EscalationPolicy(next_tier="dense")``).  Because every rung is
exact on the rows it accepts, the cascade is bit-identical to running
the terminal tier on every row -- the speedup is free of accuracy loss
by construction, and this bench asserts exactly that on every sampled
row at every trial scale.

The bench tunes a routing table from a census
(:func:`repro.decoders.cascade.cascade_tune`, the ``cascade-tune`` CLI's
engine), decodes identical sampled batches at d in {5, 7}, p = 1e-3
through three configurations -- the full cascade, the sparse mid tier
alone, and the always-terminal dense tier -- and writes a JSON record to
``benchmarks/results/ext_cascade_d<d>.json``.  The perf gate is >= 2x
cascade-over-always-terminal mean decode throughput at d = 7 (asserted
only at full trial scale, where timing noise is negligible) with zero
prediction mismatches against either reference.  The cascade-over-
sparse-mid ratio is recorded unguarded: the sparse engine is itself a
tiered solver (closed forms -> vectorized search -> blossom), so the
front tier's marginal win over it is structurally small -- the ladder's
headline value is keeping the dense terminal off the hot path.
"""

import json
import time

import pytest

from repro.decoders.cascade import cascade_tune
from repro.decoders.mwpm import MWPMDecoder
from repro.experiments.setup import DecodingSetup
from repro.sim.pauli_frame import PauliFrameSimulator

from _util import RESULTS_DIR, build_decoder, emit, seed, trials

P = 1e-3

#: Cascade-over-always-terminal speedup gate at d = 7 (full scale only).
SPEEDUP_GATE = 2.0

#: Timed rounds averaged for the cascade / sparse-mid passes.
ROUNDS = 3


def _shots_per_sec(decode, num_shots: int, rounds: int = 1) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        decode()
    elapsed = (time.perf_counter() - start) / rounds
    return num_shots / elapsed if elapsed > 0 else float("inf")


@pytest.mark.parametrize("distance", [5, 7])
def test_ext_cascade(distance, benchmark):
    setup = DecodingSetup.build(distance, P)
    shots = trials(20_000)
    sim = PauliFrameSimulator(setup.experiment.circuit, seed=seed(90 + distance))
    detectors = sim.sample(shots).detectors

    table = cascade_tune(
        setup, shots=min(shots, trials(10_000)), seed=seed(190 + distance)
    )
    cascade = build_decoder("cascade", setup, options={"routing_table": table})
    sparse_mid = build_decoder("mwpm", setup)
    # The ladder's terminal rung on every row: the dense exact-MWPM
    # reference path, i.e. what the sparse engine's anomaly escalation
    # (EscalationPolicy next_tier="dense") falls back to.
    terminal = MWPMDecoder(
        setup.ideal_gwt, use_sparse=False, measure_time=False
    )

    # Zero-accuracy-loss gate before any timing: the cascade must
    # reproduce the terminal tier's prediction and weight on EVERY row,
    # at every trial scale (this is the structural-routing contract, not
    # a statistical property).  The sparse mid tier is held to the same
    # identity.
    cascade_check = cascade.decode_batch(detectors)
    mid_check = sparse_mid.decode_batch(detectors)
    terminal_check = terminal.decode_batch(detectors)
    mismatches = sum(
        1
        for c, t in zip(cascade_check, terminal_check)
        if c.prediction != t.prediction or abs(c.weight - t.weight) > 1e-6
    )
    mid_mismatches = sum(
        1
        for m, t in zip(mid_check, terminal_check)
        if m.prediction != t.prediction or abs(m.weight - t.weight) > 1e-6
    )
    assert mismatches == 0
    assert mid_mismatches == 0

    front = cascade.stats.tiers["closed-form"]
    local_fraction = front.solved / front.routed if front.routed else 0.0
    record = {
        "bench": "ext_cascade",
        "distance": distance,
        "p": P,
        "shots": shots,
        "routing_table": table.as_dict(),
        "prediction_mismatches": mismatches,
        "cascade_local_fraction": local_fraction,
        "cascade_escalation_rate": cascade.escalation_rate,
        "throughput_shots_per_sec": {},
    }

    def run():
        throughput = record["throughput_shots_per_sec"]
        throughput["always_terminal"] = _shots_per_sec(
            lambda: terminal.decode_batch(detectors), shots
        )
        throughput["sparse_mid"] = _shots_per_sec(
            lambda: sparse_mid.decode_batch(detectors), shots, rounds=ROUNDS
        )
        throughput["cascade"] = _shots_per_sec(
            lambda: cascade.decode_batch(detectors), shots, rounds=ROUNDS
        )
        return throughput

    throughput = benchmark.pedantic(run, rounds=1, iterations=1)
    record["cascade_speedup"] = (
        throughput["cascade"] / throughput["always_terminal"]
    )
    record["cascade_vs_sparse_mid"] = (
        throughput["cascade"] / throughput["sparse_mid"]
    )
    record["tier_stats"] = cascade.stats.as_dict()

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / f"ext_cascade_d{distance}.json"
    json_path.write_text(json.dumps(record, indent=2) + "\n")

    lines = [
        f"d={distance}, p={P}, shots={shots}",
        f"routing table       : max local weight "
        f"{table.max_local_weight}, tuned local fraction "
        f"{table.local_fraction:.4f}",
        f"always terminal     : "
        f"{throughput['always_terminal']:12.0f} shots/s",
        f"sparse mid tier     : {throughput['sparse_mid']:12.0f} shots/s",
        f"cascade             : {throughput['cascade']:12.0f} shots/s",
        f"cascade speedup     : {record['cascade_speedup']:.1f}x "
        f"over always-terminal "
        f"({record['cascade_vs_sparse_mid']:.2f}x over sparse mid)",
        f"front-tier solved   : {local_fraction:.2%} of routed rows",
        f"escalation rate     : {cascade.escalation_rate:.2%}",
        f"prediction mismatch : {mismatches} (mid: {mid_mismatches})",
    ]
    emit(f"ext_cascade_d{distance}", lines)

    assert throughput["cascade"] > 0
    # The >= 2x acceptance gate -- only meaningful at full trial counts
    # (tiny smoke batches are dominated by fixed per-call overheads).
    if distance == 7 and shots >= 20_000:
        assert record["cascade_speedup"] >= SPEEDUP_GATE
