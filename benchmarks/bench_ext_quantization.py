"""Extension bench: GWT 8-bit quantization ablation (section 5.1).

Astrea stores weights as 8-bit fixed-point values.  The design claim
implicit in Table 4 -- quantization does not measurably hurt accuracy --
is verified here by sweeping the fixed-point step (LSB) and comparing the
logical error rate against the unquantized (idealized MWPM) table on a
shared sample.  Coarse steps eventually tie too many matchings and the
error rate drifts up; the default LSB = 0.25 is indistinguishable from
ideal.
"""

from repro.experiments.memory import run_memory_experiment
from repro.experiments.setup import DecodingSetup
from repro.graphs.weights import GlobalWeightTable

from _util import build_decoder, emit, fmt, seed, trials

DISTANCE = 5
P = 2e-3
LSBS = (2.0, 1.0, 0.5, 0.25, 0.125)


def test_ext_quantization_ablation(benchmark):
    setup = DecodingSetup.build(DISTANCE, P)
    shots = trials(40_000)
    results = {}

    def run():
        ideal = build_decoder("mwpm", setup)
        results["ideal"] = run_memory_experiment(
            setup.experiment, ideal, shots, seed=seed(81)
        )
        for lsb in LSBS:
            gwt = GlobalWeightTable.from_graph(setup.graph, lsb=lsb)
            decoder = build_decoder("mwpm", setup, gwt=gwt)
            results[lsb] = run_memory_experiment(
                setup.experiment, decoder, shots, seed=seed(81)
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    base = results["ideal"].logical_error_rate
    lines = [
        f"d={DISTANCE}, p={P}, shots={shots}, ideal (float) LER={fmt(base)}",
        f"{'LSB':>6} {'LER':>10} {'errors':>7}",
    ]
    for lsb in LSBS:
        lines.append(
            f"{lsb:>6} {fmt(results[lsb].logical_error_rate):>10} "
            f"{results[lsb].errors:>7}"
        )
    lines.append("claim: 8-bit weights at LSB 0.25 match idealized MWPM")
    emit("ext_quantization", lines)

    # The default quantization is statistically indistinguishable from
    # the idealized table; very coarse steps may drift.
    assert results[0.25].errors <= 1.3 * results["ideal"].errors + 5
    assert results[0.125].errors <= 1.3 * results["ideal"].errors + 5
