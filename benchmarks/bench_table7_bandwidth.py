"""Paper Table 7: syndrome bandwidth requirements for Astrea-G at d = 9.

Time spent transmitting the 80 syndrome bits of a d = 9 round eats into
the 1 us decode budget.  This bench re-runs Astrea-G with the residual
budgets of the paper's bandwidth points (unlimited down to 20 MBps) on a
shared sample and reports the LER relative to the unlimited-bandwidth
row -- flat near 1.0x until transmission consumes about half the round.
"""

from repro.experiments.memory import run_memory_experiment
from repro.experiments.setup import DecodingSetup
from repro.hw.bandwidth import BandwidthModel
from repro.hw.latency import FpgaTiming

from _util import build_decoder, emit, fmt, seed, trials

DISTANCE = 9
P = 1.5e-3
#: Paper Table 7 transmission times (ns) and relative LERs.
PAPER = [(0, 1.0), (100, 1.0), (200, 1.0), (300, 1.01), (400, 1.08), (500, 1.33)]


def test_table7_bandwidth(benchmark):
    setup = DecodingSetup.build(DISTANCE, P)
    model = BandwidthModel(DISTANCE)
    shots = trials(8_000)
    results = {}

    def run():
        for transmission_ns, _paper_rel in PAPER:
            budget = 1000.0 - transmission_ns
            timing = FpgaTiming(realtime_budget_ns=budget)
            dec = build_decoder(
                "astrea-g", setup, weight_threshold=7.0, timing=timing
            )
            results[transmission_ns] = run_memory_experiment(
                setup.experiment, dec, shots, seed=seed(7)
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    base = results[0].logical_error_rate
    lines = [
        f"d={DISTANCE}, p={P}, shots={shots}",
        f"{'tx(ns)':>7} {'MBps':>9} {'LER':>10} {'rel':>6} {'paper rel':>9} {'timeouts':>8}",
    ]
    for transmission_ns, paper_rel in PAPER:
        mbps = (
            float("inf")
            if transmission_ns == 0
            else model.bandwidth_for_transmission(transmission_ns)
        )
        r = results[transmission_ns]
        rel = r.logical_error_rate / base if base else float("nan")
        lines.append(
            f"{transmission_ns:>7} {mbps:>9.0f} {fmt(r.logical_error_rate):>10} "
            f"{rel:>6.2f} {paper_rel:>9.2f} {r.timed_out:>8}"
        )
    emit("table7_bandwidth", lines)

    # Shape: short transmissions cost nothing; the LER never *improves*
    # (beyond noise) as the budget shrinks.
    assert results[100].errors <= results[0].errors + 3
    assert results[500].errors >= results[0].errors - 3
