"""Extension bench: circuit-level threshold of the reproduction stack.

The paper's premise (section 3.2) is that near-term devices run at
physical error rates "up to an order of magnitude lower than the surface
code thresholds", i.e. p = 1e-3..1e-4 against a threshold near 1e-2 for
circuit-level depolarizing noise.  This bench measures that threshold on
our stack as the crossing of the d = 3 and d = 5 MWPM LER curves --
a strong end-to-end consistency check of the simulator + decoder chain.
"""

from repro.analysis.threshold import estimate_crossing, log_spaced

from _util import build_decoder, emit, fmt, seed, trials


def test_ext_threshold(benchmark):
    grid = log_spaced(2e-3, 3e-2, 5)
    shots = trials(15_000)

    def run():
        return estimate_crossing(
            3,
            5,
            lambda setup: build_decoder("mwpm", setup),
            grid=grid,
            shots=shots,
            seed=seed(90),
        )

    estimate = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"MWPM, d=3 vs d=5, {shots} shots/point",
        f"{'p':>10} {'LER d=3':>10} {'LER d=5':>10}",
    ]
    for p, s, l in zip(estimate.grid, estimate.ler_small, estimate.ler_large):
        lines.append(f"{p:>10.2e} {fmt(s):>10} {fmt(l):>10}")
    lines.append(
        f"estimated threshold: {fmt(estimate.crossing) if estimate.found else 'not bracketed'}"
        "  (circuit-level depolarizing, expected ~0.5-1.5e-2)"
    )
    emit("ext_threshold", lines)
    assert estimate.found
    assert 2e-3 < estimate.crossing < 3e-2
