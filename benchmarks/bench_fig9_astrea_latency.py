"""Paper Figure 9: Astrea decoding latency for d = 3, 5, 7 at p = 1e-4.

Reproduces the three series: mean over all syndromes (~0-1 ns, dominated by
trivial weights), mean over Hamming weight > 2 only, and the worst case
(32 ns at d = 3, 80 ns at d = 5, 456 ns at d = 7).
"""

import pytest

from repro.experiments.memory import run_memory_experiment
from repro.experiments.setup import DecodingSetup

from _util import build_decoder, emit, seed, trials

#: Paper Figure 9 worst-case latencies (ns).
PAPER_MAX = {3: 32.0, 5: 80.0, 7: 456.0}


@pytest.mark.parametrize("distance", [3, 5, 7])
def test_fig9_astrea_latency(distance, benchmark):
    setup = DecodingSetup.build(distance, 1e-4)
    decoder = build_decoder("astrea", setup)
    shots = trials(120_000 if distance == 3 else 60_000)

    def run():
        return run_memory_experiment(
            setup.experiment, decoder, shots, seed=seed(9 + distance)
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"d={distance}, p=1e-4, shots={shots}",
        f"mean latency           : {result.mean_latency_ns:.3f} ns (paper: ~1 ns)",
        f"mean latency (HW > 2)  : {result.mean_latency_nontrivial_ns:.1f} ns",
        f"max latency            : {result.max_latency_ns:.0f} ns "
        f"(paper: {PAPER_MAX[distance]:.0f} ns)",
        f"declined (HW > 10)     : {result.declined}",
    ]
    emit(f"fig9_astrea_latency_d{distance}", lines)
    assert result.mean_latency_ns < 10.0
    assert result.max_latency_ns <= PAPER_MAX[distance]
    # Real-time: everything fits in the 1 us budget by construction.
    assert result.max_latency_ns <= 1000.0
