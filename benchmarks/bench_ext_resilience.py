"""Extension bench: supervision overhead and fault-recovery cost.

The supervised runner (``repro.experiments.resilient``) wraps the parallel
Monte-Carlo pipeline in per-chunk process supervision, checkpointing and
retry.  That safety must be close to free when nothing goes wrong --
otherwise nobody runs long campaigns under it and the resilience is
theoretical.  This bench measures, at d = 5, p = 1e-3:

1. **Overhead** -- wall-clock of the supervised runner vs the unsupervised
   runner on an identical in-process campaign (``workers=1``, where both
   runners execute the same chunks in the same process and the only
   difference is the supervision machinery).  Gate: < 5% overhead,
   asserted only at full trial scale (REPRO_TRIALS >= 1).  The
   multiprocess comparison is also reported, but informationally: with
   ``workers`` processes time-sliced over however many cores the machine
   happens to have, its A/B delta measures the OS scheduler, not the
   supervisor.
2. **Checkpoint cost** -- the same supervised campaign writing verified
   chunk checkpoints, and the cost of resuming it (all chunks verified
   and skipped, only the decode phase re-runs).
3. **Recovery cost** -- the campaign with two injected worker crashes and
   one injected hang, which must still produce the bit-identical result.

Every configuration is checked bit-identical to the unsupervised baseline
(deterministic: block-seeded sampling + ``measure_time=False``), and a
JSON record is appended to ``benchmarks/results/ext_resilience.json``.
"""

import json
import os
import time

from repro.experiments.parallel import run_memory_experiment_parallel
from repro.experiments.resilient import run_memory_experiment_resilient
from repro.experiments.setup import DecodingSetup
from repro.testing.faults import FaultInjector

from _util import RESULTS_DIR, build_decoder, emit, seed, trials

DISTANCE = 5
P = 1e-3
WORKERS = 2

#: Supervision overhead gate vs the unsupervised runner (full scale only).
OVERHEAD_GATE = 0.05


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; report the best (min) wall-clock.

    The overhead gate compares two ~1 s campaigns, where single-run noise
    on a shared machine exceeds the 5% threshold; min-of-N isolates the
    intrinsic cost from transient load.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_ext_resilience(tmp_path):
    setup = DecodingSetup.build(DISTANCE, P)
    shots = trials(300_000)
    # Keep >= 8 blocks (so all 4 chunks exist) at any REPRO_TRIALS scale.
    block_shots = max(64, shots // 8)
    base_seed = seed(90)
    kwargs = dict(
        seed=base_seed, workers=WORKERS, chunks_per_worker=2,
        block_shots=block_shots,
    )
    # In-process variant: same chunk partition and samples (the census
    # depends only on shots/seed/block_shots), no process scheduling.
    serial_kwargs = dict(kwargs, workers=1, chunks_per_worker=2 * WORKERS)

    # A fresh decoder per timed configuration: the sparse engine's cluster
    # cache grows as it decodes, and pickling a warmed cache to workers
    # would penalise whichever configuration runs later.
    def fresh_decoder():
        return build_decoder("mwpm", setup)

    # Untimed warm-up: fork-pool spawn, import and allocator effects land
    # here, not on whichever timed configuration happens to run first.
    run_memory_experiment_parallel(
        setup.experiment, fresh_decoder(), shots, **kwargs
    )

    # Gated pair -- paired A/B rounds.  Each round times the two runners
    # back-to-back and contributes one overhead *ratio*; the gate takes
    # the min ratio over rounds.  Background load on a shared machine
    # inflates both halves of a round roughly alike and cancels in the
    # ratio, where unpaired min-of-N times would not cancel load that
    # spans all of one runner's repeats.  Both sides run in-process, so
    # the surviving delta is the supervision machinery alone.
    t_base = t_sup = ratio = float("inf")
    baseline = supervised = None
    for _ in range(5):
        baseline, round_base = _timed(
            lambda: run_memory_experiment_parallel(
                setup.experiment, fresh_decoder(), shots, **serial_kwargs
            )
        )
        supervised, round_sup = _timed(
            lambda: run_memory_experiment_resilient(
                setup.experiment, fresh_decoder(), shots, **serial_kwargs
            )
        )
        if round_sup / round_base < ratio:
            ratio = round_sup / round_base
            t_base, t_sup = round_base, round_sup
    assert supervised.result == baseline

    # Multiprocess pair (informational): scheduler-dependent on small
    # machines, so reported but never gated.
    mp_base, t_mp_base = _timed(
        lambda: run_memory_experiment_parallel(
            setup.experiment, fresh_decoder(), shots, **kwargs
        )
    )
    assert mp_base == baseline
    mp_sup, t_mp_sup = _timed(
        lambda: run_memory_experiment_resilient(
            setup.experiment, fresh_decoder(), shots, **kwargs
        )
    )
    assert mp_sup.result == baseline

    ckpt_dir = tmp_path / "ckpt"
    checkpointed, t_ckpt = _timed(
        lambda: run_memory_experiment_resilient(
            setup.experiment, fresh_decoder(), shots,
            checkpoint_dir=ckpt_dir, **kwargs,
        )
    )
    assert checkpointed.result == baseline
    resumed, t_resume = _timed(
        lambda: run_memory_experiment_resilient(
            setup.experiment, fresh_decoder(), shots,
            checkpoint_dir=ckpt_dir, resume=True, **kwargs,
        )
    )
    assert resumed.result == baseline
    assert resumed.recovery.chunks_resumed == resumed.recovery.chunks_total

    injector = FaultInjector(
        crashes={("sample", 0): 1, ("decode", 1): 1},
        hangs={("sample", 2): 1},
        hang_seconds=60.0,
    )
    recovered, t_fault = _timed(
        lambda: run_memory_experiment_resilient(
            setup.experiment, fresh_decoder(), shots,
            fault_injector=injector, chunk_timeout=2.0, **kwargs,
        )
    )
    assert recovered.result == baseline
    assert recovered.recovery.crashes == 2
    assert recovered.recovery.hangs == 1

    overhead = ratio - 1.0 if t_base > 0 else 0.0
    mp_overhead = (t_mp_sup - t_mp_base) / t_mp_base if t_mp_base > 0 else 0.0
    lines = [
        f"d={DISTANCE} p={P} shots={shots} workers={WORKERS} "
        f"block_shots={block_shots} cpus={os.cpu_count()}",
        f"{'configuration':<28} {'wall(s)':>8} {'vs base':>8}",
        f"{'unsupervised (in-process)':<28} {t_base:>8.2f} {'1.00x':>8}",
        f"{'supervised (in-process)':<28} {t_sup:>8.2f} "
        f"{t_sup / t_base:>7.2f}x",
        f"{'unsupervised parallel':<28} {t_mp_base:>8.2f} "
        f"{t_mp_base / t_base:>7.2f}x",
        f"{'supervised parallel':<28} {t_mp_sup:>8.2f} "
        f"{t_mp_sup / t_base:>7.2f}x",
        f"{'supervised + checkpoints':<28} {t_ckpt:>8.2f} "
        f"{t_ckpt / t_base:>7.2f}x",
        f"{'resume (all chunks cached)':<28} {t_resume:>8.2f} "
        f"{t_resume / t_base:>7.2f}x",
        f"{'2 crashes + 1 hang':<28} {t_fault:>8.2f} "
        f"{t_fault / t_base:>7.2f}x",
        f"supervision overhead: {overhead * 100:+.1f}% in-process (gate < "
        f"{OVERHEAD_GATE * 100:.0f}% at full scale), "
        f"{mp_overhead * 100:+.1f}% multiprocess (informational)",
        f"recovery stats under faults: {recovered.recovery.as_dict()}",
        "all supervised results bit-identical to the unsupervised baseline",
    ]
    emit("ext_resilience", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "bench": "ext_resilience",
        "distance": DISTANCE,
        "p": P,
        "shots": shots,
        "workers": WORKERS,
        "cpus": os.cpu_count(),
        "seconds": {
            "baseline": t_base,
            "supervised": t_sup,
            "baseline_parallel": t_mp_base,
            "supervised_parallel": t_mp_sup,
            "checkpointed": t_ckpt,
            "resumed": t_resume,
            "faulted": t_fault,
        },
        "overhead_fraction": overhead,
        "overhead_fraction_parallel": mp_overhead,
        "recovery": recovered.recovery.as_dict(),
        "bit_identical": True,
    }
    with open(RESULTS_DIR / "ext_resilience.json", "a") as handle:
        handle.write(json.dumps(record) + "\n")

    full_scale = float(os.environ.get("REPRO_TRIALS", "1.0")) >= 1.0
    if full_scale:
        assert overhead < OVERHEAD_GATE, (
            f"supervision overhead {overhead * 100:.1f}% exceeds the "
            f"{OVERHEAD_GATE * 100:.0f}% gate"
        )
