"""Extension bench: sparse vs dense exact-MWPM throughput.

The gold-standard software MWPM baseline bounds the wall-clock of every
accuracy reproduction (Table 4, Figures 4/12/14, threshold sweeps).  This
bench measures the decode throughput of the sparse cluster-decomposition
engine (registry option ``use_sparse=True``, the default) against the
dense per-syndrome blossom reference (``use_sparse=False``) on identical raw
sampled syndrome batches at d in {3, 5, 7}, p = 1e-3, using the idealized
(full-precision) weight table -- the configuration the accuracy
experiments actually run.

Two sparse passes are timed: a *cold* pass (all cluster caches cleared,
every distinct cluster solved from scratch -- the number comparable with
the historical baseline records) and a *steady-state* pass over the same
batch (warm caches, the regime of long accuracy campaigns where millions
of shots stream through one decoder).  Alongside throughput it records
the engine's cluster-cache hit rate and fallback breakdown (unsafe-pair /
unsolvable / engine-error), asserts sparse-vs-dense agreement on a
fixed-seed subset (weights exact to float tolerance, predictions equal),
and writes a JSON record to
``benchmarks/results/ext_mwpm_sparse_d<d>.json``.  The perf gate is
>= 5x sparse-over-dense at d = 7 (asserted only at full trial scale,
where timing noise is negligible); the pre-sparse-blossom engine
recorded 2.3x on this gate.
"""

import json
import time

import pytest

from repro.experiments.setup import DecodingSetup
from repro.sim.pauli_frame import PauliFrameSimulator

from _util import RESULTS_DIR, build_decoder, emit, seed, trials

P = 1e-3

#: Sparse-over-dense speedup gate at d = 7 (full trial scale only).
SPEEDUP_GATE = 5.0


def _shots_per_sec(decode, num_shots: int) -> float:
    start = time.perf_counter()
    decode()
    elapsed = time.perf_counter() - start
    return num_shots / elapsed if elapsed > 0 else float("inf")


@pytest.mark.parametrize("distance", [3, 5, 7])
def test_ext_mwpm_sparse(distance, benchmark):
    setup = DecodingSetup.build(distance, P)
    shots = trials(20_000)
    sim = PauliFrameSimulator(setup.experiment.circuit, seed=seed(80 + distance))
    detectors = sim.sample(shots).detectors
    # The dense reference (per-row Python blossom) gets a subset, normalised
    # to shots/sec, so the bench stays laptop-scale at d = 7.
    dense_rows = detectors[: max(1, min(shots, trials(2_000)))]

    sparse = build_decoder("mwpm", setup, use_sparse=True)
    dense = build_decoder("mwpm", setup, use_sparse=False)

    # Fixed-seed agreement check before any timing: the sparse engine must
    # reproduce the dense solve on every subset row.
    sparse_check = sparse.decode_batch(dense_rows)
    dense_check = dense.decode_batch(dense_rows)
    for s, d in zip(sparse_check, dense_check):
        assert s.prediction == d.prediction
        assert abs(s.weight - d.weight) <= 1e-6

    def clear_caches():
        sparse._engine.clear_cache()
        if sparse._graph_engine is not None:
            sparse._graph_engine.clear_cache()

    clear_caches()

    record = {
        "bench": "ext_mwpm_sparse",
        "distance": distance,
        "p": P,
        "shots": shots,
        "dense_shots": len(dense_rows),
        "throughput_shots_per_sec": {},
    }

    def run():
        throughput = record["throughput_shots_per_sec"]
        throughput["mwpm_dense"] = _shots_per_sec(
            lambda: dense.decode_batch(dense_rows), len(dense_rows)
        )
        # Cold pass: every distinct cluster solved from scratch (the
        # baseline-comparable number), then steady state on warm caches.
        clear_caches()
        throughput["mwpm_sparse"] = _shots_per_sec(
            lambda: sparse.decode_batch(detectors), shots
        )
        throughput["mwpm_sparse_steady"] = _shots_per_sec(
            lambda: sparse.decode_batch(detectors), shots
        )
        return throughput

    throughput = benchmark.pedantic(run, rounds=1, iterations=1)
    record["sparse_speedup"] = (
        throughput["mwpm_sparse"] / throughput["mwpm_dense"]
    )
    record["sparse_speedup_steady"] = (
        throughput["mwpm_sparse_steady"] / throughput["mwpm_dense"]
    )
    stats = sparse.sparse_stats
    record["sparse_stats"] = stats.as_dict()
    if sparse.graph_stats is not None:
        record["graph_stats"] = sparse.graph_stats.as_dict()

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / f"ext_mwpm_sparse_d{distance}.json"
    json_path.write_text(json.dumps(record, indent=2) + "\n")

    breakdown = ", ".join(
        f"{reason}: {count}"
        for reason, count in sorted(stats.fallback_events.items())
        if count
    ) or "none"
    lines = [
        f"d={distance}, p={P}, shots={shots} (dense subset {len(dense_rows)})",
        f"mwpm_dense        : {throughput['mwpm_dense']:12.0f} shots/s",
        f"mwpm_sparse (cold): {throughput['mwpm_sparse']:12.0f} shots/s",
        f"mwpm_sparse steady: {throughput['mwpm_sparse_steady']:12.0f} shots/s",
        f"sparse vs dense speedup: {record['sparse_speedup']:.1f}x cold, "
        f"{record['sparse_speedup_steady']:.1f}x steady",
        f"cluster-cache hit rate : {stats.hit_rate:.1%} "
        f"({stats.cache_hits}/{stats.cache_hits + stats.cache_misses})",
        f"fallback fraction      : {stats.fallback_rate:.2%} "
        f"({stats.total_fallbacks}/{stats.syndromes}; {breakdown})",
    ]
    emit(f"ext_mwpm_sparse_d{distance}", lines)

    assert throughput["mwpm_sparse"] > 0
    # The >= 5x acceptance gate -- only meaningful at full trial counts
    # (tiny smoke batches are dominated by fixed per-call overheads).
    if distance == 7 and shots >= 20_000:
        assert record["sparse_speedup"] >= SPEEDUP_GATE
