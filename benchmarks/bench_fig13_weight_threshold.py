"""Paper Figure 13: Astrea-G's relative LER vs the weight threshold W_th.

At d = 7, p = 1e-3 the paper varies W_th from 4 to 8 and shows the logical
error rate relative to idealized MWPM falling from ~1.7x to ~1.0x as the
threshold loosens.  Two series are measured on a shared syndrome sample:

* the full combined design (exact Astrea datapath for HW <= 10, greedy
  pipeline above) -- the paper's configuration;
* a greedy-only ablation (``exhaustive_cutoff=6``) that pushes every
  mid-weight syndrome through the filtered pipeline, which isolates the
  threshold's effect and makes the Figure 13 slope visible with far fewer
  trials.
"""

from repro.experiments.memory import run_memory_experiment
from repro.experiments.setup import DecodingSetup

from _util import build_decoder, emit, fmt, seed, trials

DISTANCE = 7
P = 2e-3
THRESHOLDS = (4.0, 5.0, 6.0, 7.0, 8.0)


def test_fig13_weight_threshold_sweep(benchmark):
    setup = DecodingSetup.build(DISTANCE, P)
    shots = trials(20_000)
    results = {}

    def run():
        mwpm = build_decoder("mwpm", setup)
        results["mwpm"] = run_memory_experiment(
            setup.experiment, mwpm, shots, seed=seed(13)
        )
        for wth in THRESHOLDS:
            full = build_decoder("astrea-g", setup, weight_threshold=wth)
            greedy = build_decoder(
                "astrea-g", setup, weight_threshold=wth, exhaustive_cutoff=6
            )
            results[("full", wth)] = run_memory_experiment(
                setup.experiment, full, shots, seed=seed(13)
            )
            results[("greedy", wth)] = run_memory_experiment(
                setup.experiment, greedy, shots, seed=seed(13)
            )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    base = results["mwpm"].logical_error_rate
    lines = [
        f"d={DISTANCE}, p={P}, shots={shots}, MWPM LER={fmt(base)}",
        f"{'W_th':>5} {'full LER':>10} {'rel':>6} {'greedy LER':>11} {'rel':>6}",
    ]
    for wth in THRESHOLDS:
        full = results[("full", wth)].logical_error_rate
        greedy = results[("greedy", wth)].logical_error_rate
        lines.append(
            f"{wth:5.1f} {fmt(full):>10} {full / base if base else 0:6.2f} "
            f"{fmt(greedy):>11} {greedy / base if base else 0:6.2f}"
        )
    lines.append("paper (full design): ~1.7x at W_th=4 falling to ~1.0x by W_th=7")
    emit("fig13_weight_threshold", lines)

    # Shape: loosening the threshold never hurts, and the loosest full-
    # design point sits close to MWPM.
    assert (
        results[("full", THRESHOLDS[0])].errors
        >= results[("full", THRESHOLDS[-1])].errors
    )
    assert (
        results[("greedy", THRESHOLDS[0])].errors
        >= results[("greedy", THRESHOLDS[-1])].errors
    )
    assert results[("full", 8.0)].errors <= 1.6 * results["mwpm"].errors + 5
    # The greedy-only ablation is never better than the full design.
    assert (
        results[("greedy", 4.0)].errors >= results[("full", 4.0)].errors
    )