"""Extension bench: why decoders must consume all d rounds (sections 2.2, 2.3.3).

Two measurements on one d = 5 workload:

1. **Round-window criticality.** A NISQ+-style time-blind decoder (each
   detector layer decoded independently) versus full-history MWPM: the
   paper attributes NISQ+/QECOOL/QULATIS's accuracy loss to exactly this
   truncation, and the gap here is orders of magnitude.
2. **Per-round error rates across experiment lengths.** Running the
   memory experiment for 1..2d rounds and converting each block LER to a
   per-round rate: with a full-history decoder the per-round rate is
   *stable in the experiment length* (the fidelity-decay law holds),
   which is exactly the property the time-blind designs above lose.
"""

from repro.analysis.per_round import logical_error_per_round
from repro.experiments.memory import run_memory_experiment
from repro.experiments.setup import DecodingSetup

from _util import build_decoder, emit, fmt, seed, trials

DISTANCE = 5
P = 1.5e-3


def test_ext_time_blind_decoder_gap(benchmark):
    setup = DecodingSetup.build(DISTANCE, P)
    shots = trials(30_000)
    results = {}

    def run():
        results["mwpm"] = run_memory_experiment(
            setup.experiment,
            build_decoder("mwpm", setup),
            shots,
            seed=seed(60),
        )
        results["single-round"] = run_memory_experiment(
            setup.experiment,
            build_decoder("single-round", setup),
            shots,
            seed=seed(60),
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    gap = results["single-round"].errors / max(results["mwpm"].errors, 1)
    lines = [
        f"d={DISTANCE}, p={P}, shots={shots}",
        f"full-history MWPM : {fmt(results['mwpm'].logical_error_rate)}",
        f"time-blind (1 rnd): {fmt(results['single-round'].logical_error_rate)}",
        f"gap: {gap:.0f}x  (paper: NISQ+-class designs are 100-1000x off MWPM)",
    ]
    emit("ext_time_blind_gap", lines)
    assert results["single-round"].errors > 10 * results["mwpm"].errors


def test_ext_per_round_rate_stabilises(benchmark):
    rows = {}
    shots = trials(30_000)

    def run():
        for rounds in (1, 2, 5, 10):
            setup = DecodingSetup.build(DISTANCE, P, rounds=rounds)
            decoder = build_decoder("mwpm", setup)
            result = run_memory_experiment(
                setup.experiment, decoder, shots, seed=seed(61)
            )
            rows[rounds] = result
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"d={DISTANCE}, p={P}, shots={shots}",
        f"{'rounds':>6} {'block LER':>10} {'per-round':>10}",
    ]
    per_round = {}
    for rounds, result in rows.items():
        eps = logical_error_per_round(result.logical_error_rate, rounds)
        per_round[rounds] = eps
        lines.append(
            f"{rounds:>6} {fmt(result.logical_error_rate):>10} {fmt(eps):>10}"
        )
    lines.append("per-round rate is stable across experiment lengths")
    emit("ext_per_round", lines)
    # Fidelity-decay consistency: per-round rates of all experiment
    # lengths agree within Monte-Carlo error (here: a factor of ~3).
    resolved = [eps for eps in per_round.values() if eps > 0]
    assert len(resolved) >= 3, "raise REPRO_TRIALS to resolve the rates"
    assert max(resolved) <= 3 * min(resolved)
    # And the block LER grows with length, as the decay law demands.
    assert rows[10].errors > rows[1].errors
