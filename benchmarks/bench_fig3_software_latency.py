"""Paper Figure 3: software MWPM decoding latencies vs the 1 us deadline.

The paper measured BlossomV (C++): 96% of non-zero d = 7 syndromes missed
the 1 us real-time budget.  This bench measures our from-scratch Python
blossom on the same workload.  Absolute numbers are incomparable (Python
vs C++), but the qualitative claim -- software MWPM latency is orders of
magnitude above the deadline and heavy-tailed -- reproduces directly.
"""

import numpy as np

from repro.experiments.setup import DecodingSetup
from repro.sim.pauli_frame import PauliFrameSimulator

from _util import build_decoder, emit, fmt, seed, trials

DISTANCE = 7
P = 1e-3
BUDGET_NS = 1000.0


def test_fig3_software_mwpm_latency(benchmark):
    setup = DecodingSetup.build(DISTANCE, P)
    sim = PauliFrameSimulator(setup.experiment.circuit, seed=seed(3))
    sample = sim.sample(trials(3000))
    decoder = build_decoder("mwpm", setup, measure_time=True)
    nonzero = [det for det in sample.detectors if det.any()]

    def run():
        return [decoder.decode(det).latency_ns for det in nonzero]

    latencies = np.array(benchmark.pedantic(run, rounds=1, iterations=1))
    over = float((latencies > BUDGET_NS).mean())
    lines = [
        f"d={DISTANCE}, p={P}, nonzero syndromes={len(nonzero)} (Python blossom)",
        f"mean latency   : {fmt(latencies.mean())} ns",
        f"median latency : {fmt(float(np.median(latencies)))} ns",
        f"p99 latency    : {fmt(float(np.percentile(latencies, 99)))} ns",
        f"max latency    : {fmt(latencies.max())} ns",
        f"missing 1us deadline: {over:.1%}  (paper: 96% with BlossomV)",
    ]
    emit("fig3_software_latency", lines)
    # Software decoding is not real-time: the majority misses the budget.
    assert over > 0.5
    assert latencies.max() > 10 * BUDGET_NS
